"""Scenario: tracking a job-postings site's market indicators.

The paper's motivating example: the number of active postings on a site
like Monster.com is a real-time economic indicator, and a rapid rise of
the average offered salary for one skill signals market expansion — but
the site only exposes a faceted search form returning 50 results per
query, and rate-limits clients.

This script simulates such a site, injects a mid-simulation demand shock
for one skill (more postings, higher salaries), and shows an RS-ESTIMATOR
client detecting both movements through the restrictive interface.

Run:  python examples/job_market_tracker.py
"""

import random

from repro import (
    Attribute,
    HiddenDatabase,
    RsEstimator,
    Schema,
    TopKInterface,
    avg_measure,
    count_all,
    count_where,
)
from repro.data import FreshTupleSchedule, SyntheticSource, zipf_weights

ROUNDS = 14
SHOCK_ROUND = 8  # demand shock for the watched skill starts here
BUDGET_PER_ROUND = 300
K = 50

SKILLS = ("java", "python", "sql", "golang", "rust", "cobol", "php", "swift")


def build_site(seed: int) -> tuple[HiddenDatabase, SyntheticSource]:
    schema = Schema(
        [
            Attribute("skill", SKILLS),
            Attribute("seniority", ("junior", "mid", "senior", "staff")),
            Attribute("remote", ("onsite", "hybrid", "remote")),
            Attribute("region", tuple(f"region_{i}" for i in range(12))),
            Attribute("industry", tuple(f"industry_{i}" for i in range(10))),
            Attribute("contract", ("permanent", "contract", "internship")),
        ],
        measures=("salary",),
    )
    weights = [zipf_weights(a.size, 0.5) for a in schema.attributes]

    def salary(rng: random.Random) -> tuple[float]:
        return (round(rng.gauss(95_000, 20_000), 2),)

    source = SyntheticSource(schema, weights, measure_sampler=salary, seed=seed)
    db = HiddenDatabase(schema)
    for values, measures in source.batch(15_000):
        db.insert(values, measures)
    return db, source


def main() -> None:
    db, source = build_site(seed=11)
    schema = db.schema
    java = schema.attributes[0].index_of("java")

    # Normal churn: postings expire and appear at similar rates.
    base_churn = FreshTupleSchedule(
        source, inserts_per_round=150, deletes_per_round=150
    )

    interface = TopKInterface(db, k=K)
    specs = [
        count_all("all_postings"),
        count_where(schema, {"skill": "java"}, name="java_postings"),
        avg_measure(schema, "salary", where={"skill": "java"},
                    name="java_salary"),
    ]
    tracker = RsEstimator(
        interface, specs, budget_per_round=BUDGET_PER_ROUND, seed=3
    )

    rng = random.Random(99)
    print(f"{'round':>5} {'postings~':>10} {'java~':>8} {'java salary~':>13}"
          f"   (true java count / salary)")
    for round_number in range(1, ROUNDS + 1):
        if round_number > 1:
            for mutation in base_churn.plan(db, rng):
                mutation()
            if round_number >= SHOCK_ROUND:
                # Demand shock: a wave of java postings at a premium.
                for _ in range(220):
                    values, _ = source.one(rng)
                    values = bytes([java]) + values[1:]
                    db.insert(values, (round(rng.gauss(120_000, 15_000), 2),))
            db.advance_round()
        report = tracker.run_round()
        true_java = sum(1 for t in db.tuples() if t.values[0] == java)
        true_salary = (
            sum(t.measures[0] for t in db.tuples() if t.values[0] == java)
            / max(true_java, 1)
        )
        marker = "  <-- shock" if round_number == SHOCK_ROUND else ""
        print(
            f"{round_number:>5} {report.estimates['all_postings']:>10.0f} "
            f"{report.estimates['java_postings']:>8.0f} "
            f"{report.estimates['java_salary']:>13,.0f}   "
            f"({true_java} / {true_salary:,.0f}){marker}"
        )
    print(
        "\nAfter the shock round the tracked java posting count and average "
        "salary\nboth climb — detected purely through top-50 search queries "
        f"at {BUDGET_PER_ROUND}/round."
    )


if __name__ == "__main__":
    main()
