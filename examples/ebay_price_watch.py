"""Scenario: hourly price monitoring of a live auction marketplace.

Reproduces the paper's eBay live experiment on the local surrogate: track
the average current price of Buy-It-Now (FIX) and bidding (BID) women's
wrist watches, hourly, with 250 queries per hour per tracker — and, since
the surrogate owns ground truth, score every estimate.

Run:  python examples/ebay_price_watch.py
"""

import random

from repro import RsEstimator, TopKInterface, avg_measure
from repro.data import apply_round
from repro.experiments import GroundTruthTracker, render_chart
from repro.marketplace import ebay_watch_env

HOURS = 8
BUDGET_PER_HOUR = 250
K = 100


def main() -> None:
    db, schedule = ebay_watch_env(seed=31, catalog_size=10_000)
    schema = db.schema
    interface = TopKInterface(db, k=K)

    specs = {
        "FIX": avg_measure(schema, "price", where={"format": "FIX"},
                           name="avg_fix"),
        "BID": avg_measure(schema, "price", where={"format": "BID"},
                           name="avg_bid"),
    }
    # One tracker per listing format, as in the paper's live run; the
    # selection predicate is pushed into each tracker's query tree.
    trackers = {
        label: RsEstimator(interface, [spec], budget_per_round=BUDGET_PER_HOUR,
                           seed=8)
        for label, spec in specs.items()
    }
    truth = GroundTruthTracker(db, list(specs.values()))

    rng = random.Random(17)
    series: dict[str, list[float]] = {
        "FIX est": [], "FIX true": [], "BID est": [], "BID true": [],
    }
    print(f"{'hour':>4} {'FIX est':>9} {'FIX true':>9} "
          f"{'BID est':>9} {'BID true':>9}")
    for hour in range(1, HOURS + 1):
        if hour > 1:
            apply_round(db, schedule, rng)
            db.advance_round()
        snapshot = truth.record_round(db.current_round)
        row = [hour]
        for label, tracker in trackers.items():
            report = tracker.run_round()
            estimate = report.estimates[specs[label].name]
            exact = snapshot[specs[label].name]
            series[f"{label} est"].append(estimate)
            series[f"{label} true"].append(exact)
            row += [estimate, exact]
        print(f"{row[0]:>4} {row[1]:>9.2f} {row[2]:>9.2f} "
              f"{row[3]:>9.2f} {row[4]:>9.2f}")

    print()
    print(render_chart(series, y_label="average price ($)", x_label="hour"))
    print(
        "\nBuy-It-Now prices sit far above bid snapshots, and the bid "
        "average climbs\nthrough the day as auctions heat up — the same "
        "two observations the paper\nmade against the real eBay "
        "(Figure 21), here verified against exact truth."
    )


if __name__ == "__main__":
    main()
