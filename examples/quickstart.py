"""Quickstart: track COUNT(*) of a changing hidden database for 12 rounds.

Builds a scaled Yahoo!-Autos-like hidden database behind a top-100 search
interface, lets it churn every round, and compares the paper's three
estimators under a 200-queries-per-round budget.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    HiddenDatabase,
    ReissueEstimator,
    RestartEstimator,
    RsEstimator,
    TopKInterface,
    count_all,
)
from repro.data import SnapshotPoolSchedule, apply_round, autos_snapshot

ROUNDS = 12
BUDGET_PER_ROUND = 300
K = 100


def main() -> None:
    # --- the hidden database (simulator side; estimators never touch it) ---
    schema, payloads = autos_snapshot(total=20_000, seed=7)
    db = HiddenDatabase(schema)
    for values, measures in payloads[:18_000]:
        db.insert(values, measures)
    schedule = SnapshotPoolSchedule(
        payloads[18_000:], inserts_per_round=60, delete_fraction=0.001
    )

    # --- the clients: three estimators sharing one restrictive interface ---
    interface = TopKInterface(db, k=K)
    estimators = {
        cls.name: cls(interface, [count_all()], budget_per_round=BUDGET_PER_ROUND,
                      seed=5)
        for cls in (RestartEstimator, ReissueEstimator, RsEstimator)
    }

    rng = random.Random(42)
    print(f"{'round':>5} {'truth':>7}", *(f"{n:>18}" for n in estimators))
    for round_number in range(1, ROUNDS + 1):
        if round_number > 1:
            apply_round(db, schedule, rng)
            db.advance_round()
        cells = []
        for estimator in estimators.values():
            report = estimator.run_round()
            estimate = report.estimates["count"]
            error = abs(estimate / len(db) - 1)
            cells.append(f"{estimate:9.0f} ({error:5.1%})")
        print(f"{round_number:>5} {len(db):>7}", *(f"{c:>18}" for c in cells))
    print(
        "\nEach cell is 'estimate (relative error)'.  REISSUE and RS reuse "
        "historic\nquery answers, so their errors shrink round after round "
        "while RESTART's\ndo not — the paper's core result."
    )


if __name__ == "__main__":
    main()
