"""Scenario: independently auditing an app store's published growth numbers.

App stores advertise their catalog sizes, but (as the paper notes) those
numbers are self-reported and hard to verify.  This script simulates an
app store that *claims* steady growth while actually shrinking mid-way,
and shows a third party catching the divergence by tracking the
trans-round aggregate |D_i| - |D_{i-1}| through the search interface.

The trans-round comparison is the point: RESTART must difference two
independent noisy estimates (useless for small changes), while REISSUE's
per-drill-down deltas nail the change directly.

Run:  python examples/app_store_census.py
"""

import random

from repro import (
    Attribute,
    HiddenDatabase,
    ReissueEstimator,
    RestartEstimator,
    Schema,
    TopKInterface,
    count_all,
    size_change,
)
from repro.data import FreshTupleSchedule, SyntheticSource, zipf_weights

ROUNDS = 12
SHRINK_FROM = 7  # the store starts quietly purging apps here
BUDGET_PER_ROUND = 400
K = 100


def build_store(seed: int) -> tuple[HiddenDatabase, SyntheticSource]:
    schema = Schema(
        [
            Attribute("category", tuple(f"cat_{i}" for i in range(30))),
            Attribute("pricing", ("free", "paid", "subscription")),
            Attribute("rating_band", ("1", "2", "3", "4", "5")),
            Attribute("platform", ("phone", "tablet", "both")),
            Attribute("age_band", ("4+", "9+", "12+", "17+")),
            Attribute("size_band", tuple(f"mb_{i}" for i in range(10))),
            Attribute("language", tuple(f"lang_{i}" for i in range(12))),
        ],
        measures=(),
    )
    weights = [zipf_weights(a.size, 0.7) for a in schema.attributes]
    source = SyntheticSource(schema, weights, seed=seed)
    db = HiddenDatabase(schema)
    for values, measures in source.batch(25_000):
        db.insert(values, measures)
    return db, source


def main() -> None:
    db, source = build_store(seed=21)
    growth = FreshTupleSchedule(source, inserts_per_round=400)
    purge = FreshTupleSchedule(
        source, inserts_per_round=150, deletes_per_round=600
    )

    interface = TopKInterface(db, k=K)
    count = count_all("apps")
    specs = [count, size_change(count, name="growth")]
    trackers = {
        cls.name: cls(interface, specs, budget_per_round=BUDGET_PER_ROUND,
                      seed=5)
        for cls in (RestartEstimator, ReissueEstimator)
    }

    rng = random.Random(13)
    previous_size = len(db)
    print(f"{'round':>5} {'true growth':>12} {'REISSUE~':>10} "
          f"{'RESTART~':>10}   claimed")
    for round_number in range(1, ROUNDS + 1):
        if round_number > 1:
            schedule = purge if round_number >= SHRINK_FROM else growth
            for mutation in schedule.plan(db, rng):
                mutation()
            db.advance_round()
        true_growth = len(db) - previous_size
        previous_size = len(db)
        reports = {
            name: tracker.run_round() for name, tracker in trackers.items()
        }
        claimed = "+400 apps/round (press release)"
        print(
            f"{round_number:>5} {true_growth:>+12d} "
            f"{reports['REISSUE'].estimates['growth']:>+10.0f} "
            f"{reports['RESTART'].estimates['growth']:>+10.0f}   {claimed}"
        )
    print(
        "\nFrom round "
        f"{SHRINK_FROM} the store actually shrinks by ~450 apps/round.  "
        "REISSUE's\nper-drill-down deltas flag the reversal within a round "
        "or two; RESTART's\ndifferenced estimates are noise at this change "
        "magnitude (paper Figs. 15-17)."
    )


if __name__ == "__main__":
    main()
