"""Scenario: answering analytics questions you didn't think to ask in time.

A tracker has been monitoring a used-car marketplace's COUNT(*) for a
week.  On day 6 an analyst asks: "what was the average price of certified
cars back on day 2, and how much did the total inventory value change
between days 2 and 5?"  Nobody tracked those — but every page the
drill-downs ever retrieved was archived, so the ad-hoc query model of the
paper's §5.1 answers both retroactively, with zero additional queries
against the rate-limited interface.

Also demonstrates the §8 future-work extension: when the site displays
"N results found", COUNT aggregates become exact at one query per round.

Run:  python examples/retroactive_analytics.py
"""

import random

from repro import (
    HiddenDatabase,
    RsEstimator,
    TopKInterface,
    avg_measure,
    count_all,
    sum_measure,
)
from repro.data import SnapshotPoolSchedule, apply_round, autos_snapshot
from repro.extensions import CountAssistedEstimator, CountRevealingInterface

DAYS = 6
BUDGET_PER_DAY = 400
K = 100


def main() -> None:
    schema, payloads = autos_snapshot(total=16_000, seed=23)
    db = HiddenDatabase(schema)
    for values, measures in payloads[:14_000]:
        db.insert(values, measures)
    schedule = SnapshotPoolSchedule(
        payloads[14_000:], inserts_per_round=150, delete_fraction=0.004
    )
    interface = TopKInterface(db, k=K)

    # The stream tracker only watches COUNT(*) — but archives everything.
    tracker = RsEstimator(
        interface, [count_all()], budget_per_round=BUDGET_PER_DAY, seed=6
    )
    archive = tracker.attach_archive()

    rng = random.Random(3)
    day_truth = {}
    for day in range(1, DAYS + 1):
        if day > 1:
            apply_round(db, schedule, rng)
            db.advance_round()
        report = tracker.run_round()
        day_truth[day] = {
            "avg_cert": avg_measure(
                schema, "price", where={"certified": "certified_0"}
            ).ground_truth(db),
            "inventory": sum_measure(schema, "price").ground_truth(db),
        }
        print(f"day {day}: tracked COUNT(*) ~ "
              f"{report.estimates['count']:,.0f} (truth {len(db):,})")

    print("\n--- day 6: the analyst's retroactive questions ---")
    avg_cert = avg_measure(
        schema, "price", where={"certified": "certified_0"},
        name="avg_certified_price",
    )
    estimate = archive.estimate(avg_cert, round_index=2)
    print(
        f"AVG price of certified cars on day 2: ~${estimate.value:,.0f} "
        f"(truth was ${day_truth[2]['avg_cert']:,.0f}; "
        f"from {estimate.drilldowns} archived drill-downs, 0 new queries)"
    )
    inventory = sum_measure(schema, "price", name="inventory_value")
    change = archive.estimate_change(inventory, from_round=2, to_round=5)
    true_change = day_truth[5]["inventory"] - day_truth[2]["inventory"]
    print(
        f"Inventory value change, day 2 -> 5: ~${change.value:,.0f} "
        f"(truth ${true_change:,.0f}, i.e. "
        f"{true_change / day_truth[2]['inventory']:+.1%} of the total)"
    )
    print(
        "  ^ asked late, the change must be differenced from two "
        "independent estimates,\n    so a ~2% movement drowns in noise — "
        "exactly why the stream model's\n    per-drill-down deltas "
        "(paper Figs. 15-17) matter when you know the\n    question in "
        "advance."
    )

    print("\n--- bonus: if the site revealed result counts (§8 ext.) ---")
    assisted = CountAssistedEstimator(
        CountRevealingInterface(interface),
        [count_all("exact_count"), sum_measure(schema, "price",
                                               name="sum_price")],
        budget_per_round=BUDGET_PER_DAY,
        seed=6,
    )
    report = assisted.run_round()
    print(
        f"COUNT(*) from one query, exact: {report.estimates['exact_count']:,.0f} "
        f"(truth {len(db):,})\n"
        f"SUM(price) via count-weighted drill-downs: "
        f"~${report.estimates['sum_price']:,.0f} "
        f"(truth ${day_truth[6]['inventory']:,.0f})"
    )


if __name__ == "__main__":
    main()
