#!/usr/bin/env python3
"""Docs consistency gate: broken links and drifted CLI flags fail CI.

Two checks, both over the repo's markdown tree (``README.md``,
``docs/*.md``, ``ROADMAP.md``, ``CHANGES.md``):

1. **Intra-repo links.**  Every relative markdown link target
   (``[text](path)``) must exist on disk, resolved against the linking
   file.  External links (``http(s)://``, ``mailto:``), pure anchors
   (``#section``), and GitHub-web-relative links that escape the repo
   root (the README's ``../../actions/...`` badge) are skipped.

2. **CLI flag sync.**  ``docs/operations.md`` documents the
   ``repro-serve`` command line; every ``--flag`` it mentions must exist
   in :func:`repro.service.cli.build_parser`, and every parser flag must
   be mentioned in the doc — so the operations guide cannot drift from
   the binary in either direction.

3. **Metric catalog sync.**  ``docs/observability.md`` documents the
   ``repro.obs`` metric catalog; every backticked ``repro_*`` name it
   mentions must exist in :data:`repro.obs.CATALOG` and every catalog
   name must be documented — both directions, like the flag check.

Usage::

    python tools/check_docs.py          # exit 0 clean, 1 with findings
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OPERATIONS_DOC = REPO_ROOT / "docs" / "operations.md"
OBSERVABILITY_DOC = REPO_ROOT / "docs" / "observability.md"

# [text](target) — target captured up to the closing paren; images share
# the same syntax with a leading "!", which the pattern also matches.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FLAG = re.compile(r"(--[a-z][a-z0-9-]*)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _markdown_files() -> list[Path]:
    files = [
        path for path in (REPO_ROOT / "docs").glob("*.md")
    ] + [
        REPO_ROOT / name
        for name in ("README.md", "ROADMAP.md", "CHANGES.md")
        if (REPO_ROOT / name).exists()
    ]
    return sorted(files)


def check_links(files: list[Path]) -> list[str]:
    problems: list[str] = []
    for path in files:
        text = path.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.is_relative_to(REPO_ROOT):
                continue  # GitHub-web-relative (badge links etc.)
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}: broken link "
                    f"-> {target}"
                )
    return problems


def _parser_flags() -> set[str]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.service.cli import build_parser

    flags: set[str] = set()
    for action in build_parser()._actions:  # noqa: SLF001 - introspection
        flags.update(
            opt for opt in action.option_strings if opt.startswith("--")
        )
    flags.discard("--help")
    return flags


def check_flags() -> list[str]:
    if not OPERATIONS_DOC.exists():
        return [f"missing {OPERATIONS_DOC.relative_to(REPO_ROOT)}"]
    documented = set(
        _FLAG.findall(OPERATIONS_DOC.read_text(encoding="utf-8"))
    )
    actual = _parser_flags()
    problems = [
        f"docs/operations.md documents unknown repro-serve flag: {flag}"
        for flag in sorted(documented - actual)
    ] + [
        f"repro-serve flag missing from docs/operations.md: {flag}"
        for flag in sorted(actual - documented)
    ]
    return problems


def check_metrics() -> list[str]:
    if not OBSERVABILITY_DOC.exists():
        return [f"missing {OBSERVABILITY_DOC.relative_to(REPO_ROOT)}"]
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs import CATALOG

    text = OBSERVABILITY_DOC.read_text(encoding="utf-8")
    documented = set(re.findall(r"`(repro_[a-z0-9_]+)`", text))
    actual = set(CATALOG)
    problems = [
        "docs/observability.md documents unknown metric: " + name
        for name in sorted(documented - actual)
    ] + [
        "catalog metric missing from docs/observability.md: " + name
        for name in sorted(actual - documented)
    ]
    return problems


def main() -> int:
    files = _markdown_files()
    problems = check_links(files) + check_flags() + check_metrics()
    for problem in problems:
        print(f"check_docs: {problem}")
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        return 1
    print(
        f"check_docs: {len(files)} markdown files clean "
        f"(links resolve, repro-serve flags and metric catalog in sync)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
