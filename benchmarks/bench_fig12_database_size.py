"""Figure 12: scalability in |D1| (m=50).  RESTART's error grows with the
database; REISSUE/RS stay flat, so the gap widens."""

from repro.experiments.figures import run_fig12


def test_fig12(figure_bench):
    figure = figure_bench(
        run_fig12, trials=2, rounds=8, budget=500,
        sizes=(10_000, 100_000, 300_000), k=100,
    )
    restart = figure.series["RESTART"]
    rs = figure.series["RS"]
    # The RS/RESTART advantage must not shrink as the database grows.
    small_gap = restart[0] / max(rs[0], 1e-9)
    large_gap = restart[-1] / max(rs[-1], 1e-9)
    assert large_gap > small_gap * 0.5
    assert rs[-1] < restart[-1] * 1.15, "RS must stay at/below RESTART"
