"""Figure 9: more per-round budget => lower error; RS best throughout."""

from conftest import BENCH_SCALE

from repro.experiments.figures import run_fig09


def test_fig09(figure_bench):
    figure = figure_bench(
        run_fig09, scale=BENCH_SCALE, trials=2, rounds=15,
        budgets=(100, 300, 600),
    )
    # REISSUE's tail is frozen-signature luck; assert monotonicity only
    # for the statistically stable series.
    for estimator in ("RESTART", "RS"):
        errors = figure.series[estimator]
        assert errors[-1] < errors[0], (
            f"{estimator}: error should fall with budget"
        )
    # RS no worse than the baseline at every budget point.
    for position in range(len(figure.xs)):
        assert figure.series["RS"][position] < (
            figure.series["RESTART"][position] * 1.2
        )
