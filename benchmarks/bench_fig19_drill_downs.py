"""Figure 19: drill-downs obtained per query spent.  Reissuing converts
the same cumulative budget into several times more drill-downs."""

from conftest import BENCH_SCALE

from repro.experiments.figures import run_fig19


def test_fig19(figure_bench):
    figure = figure_bench(
        run_fig19, scale=BENCH_SCALE, trials=2, rounds=40, budget=500,
    )
    restart_total = figure.series["RESTART"][-1]
    reissue_total = figure.series["REISSUE"][-1]
    rs_total = figure.series["RS"][-1]
    assert reissue_total > 1.5 * restart_total
    assert rs_total > 1.5 * restart_total
    # All cumulative series must be nondecreasing.
    for values in figure.series.values():
        assert values == sorted(values)
