"""Ablation B: a within-round client answer cache helps RESTART (shared
shallow queries become free) but cannot substitute for cross-round reuse."""

from conftest import BENCH_SCALE, BENCH_TRIALS

from repro.experiments.figures import run_ablation_client_cache


def test_ablation_client_cache(figure_bench, tail):
    figure = figure_bench(
        run_ablation_client_cache, scale=BENCH_SCALE,
        trials=max(BENCH_TRIALS, 3), rounds=20, budget=500,
    )
    plain = tail(figure, "RESTART", tail=8)
    cached = tail(figure, "RESTART-cache", tail=8)
    reissue = tail(figure, "REISSUE", tail=8)
    assert cached < plain * 1.1, "the cache should not hurt RESTART"
    # REISSUE's level is its frozen set's luck; it must beat the
    # *uncached* baseline, and stay in the cached baseline's ballpark.
    assert reissue < plain * 1.2
    assert reissue < cached * 2.5
