"""Figure 18: per-round budget needed to reach a target relative error.
REISSUE/RS need a fraction of RESTART's budget for the same accuracy."""

import math

from conftest import BENCH_SCALE

from repro.experiments.figures import run_fig18


def test_fig18(figure_bench):
    figure = figure_bench(
        run_fig18, scale=BENCH_SCALE, trials=2, rounds=12,
        targets=(0.28, 0.21, 0.14),
        budget_grid=(40, 80, 120, 180, 260, 360, 480, 620),
    )
    for position in range(len(figure.xs)):
        restart = figure.series["RESTART"][position]
        rs = figure.series["RS"][position]
        if math.isnan(rs):
            continue  # target unreachable at this scale for anyone
        # RS never needs more budget than RESTART for the same target.
        assert math.isnan(restart) or rs <= restart
