"""Figure 4: intra-round (constant-update) execution tracks the clean
round-boundary model closely for both REISSUE and RS."""

from conftest import BENCH_SCALE

from repro.experiments.figures import run_fig04


def test_fig04(figure_bench, tail):
    figure = figure_bench(
        run_fig04, scale=BENCH_SCALE, trials=1, rounds=25, budget=500,
    )
    for estimator in ("REISSUE", "RS"):
        clean = tail(figure, estimator)
        intra = tail(figure, f"{estimator}(intra)")
        # The paper's claim: spreading updates inside the round barely
        # hurts.  Allow a generous factor; the two series must be the
        # same order of magnitude.
        assert intra < max(3.0 * clean, clean + 0.15), (
            f"{estimator} intra-round accuracy collapsed"
        )
