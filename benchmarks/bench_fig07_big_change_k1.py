"""Figure 7: big change with k=1 — the regime where the Theorem 3.2 bound
exceeds 1 and RESTART becomes competitive or better."""

from conftest import BENCH_SCALE, BENCH_TRIALS

from repro.experiments.figures import run_fig07


def test_fig07(figure_bench, tail):
    figure = figure_bench(
        run_fig07, scale=BENCH_SCALE, trials=max(BENCH_TRIALS, 3),
        rounds=15, budget=500,
    )
    restart = tail(figure, "RESTART")
    reissue = tail(figure, "REISSUE")
    # The point of the figure is that reissuing LOSES its usual large
    # advantage: with k=1 heavy churn forces long roll-ups, so RESTART is
    # at least competitive (the paper shows it winning outright).
    assert restart < reissue * 1.5, (
        "with k=1 and heavy churn RESTART should be competitive"
    )
