"""Figure 6: big change (+10k and -5% per round, scaled).  Reissuing still
beats restarting (Theorem 3.2 holds with k large)."""

from conftest import BENCH_SCALE, BENCH_TRIALS

from repro.experiments.figures import run_fig06


def test_fig06(figure_bench, tail):
    figure = figure_bench(
        run_fig06, scale=BENCH_SCALE, trials=max(BENCH_TRIALS, 3),
        rounds=10, budget=500,
    )
    restart = tail(figure, "RESTART", tail=6)
    reissue = tail(figure, "REISSUE", tail=6)
    rs = tail(figure, "RS", tail=6)
    # Under heavy churn the three converge (paper Fig. 6 still shows a
    # gap at full scale; at bench scale the margins are within noise, so
    # we assert "no worse than RESTART" with generous slack).
    assert reissue < restart * 1.4
    assert rs < restart * 1.4
