"""Figure 20: Amazon watches over Thanksgiving week (simulated).  The
tracked average price dips during the promotion window and recovers;
composition shares barely move."""

from repro.experiments.figures import run_fig20


def test_fig20(figure_bench):
    figure = figure_bench(
        run_fig20, trials=2, rounds=7, budget=1000, catalog_size=10_000,
    )
    estimated = figure.series["avg_price(RS)"]
    truth = figure.series["avg_price(truth)"]
    promo_days = (1, 2)  # 0-based positions of rounds 2-3
    normal_days = (0, 4, 5, 6)
    promo_price = sum(estimated[d] for d in promo_days) / len(promo_days)
    normal_price = sum(estimated[d] for d in normal_days) / len(normal_days)
    assert promo_price < normal_price * 0.95, "promotion dip not detected"
    # Tracking accuracy against ground truth (which the paper lacked).
    for est, tru in zip(estimated, truth):
        assert abs(est - tru) / tru < 0.25
    # Composition shares stay within a narrow band.
    shares = figure.series["share_wrist%(RS)"][2:]
    assert max(shares) - min(shares) < 15.0
