"""Figure 11: the attribute count m has no material effect (flat lines)."""

from conftest import BENCH_SCALE

from repro.experiments.figures import run_fig11


def test_fig11(figure_bench):
    figure = figure_bench(
        run_fig11, scale=BENCH_SCALE, trials=2, rounds=15, budget=500,
        attribute_counts=(34, 36, 38),
    )
    for estimator in ("RESTART", "REISSUE", "RS"):
        errors = figure.series[estimator]
        spread = max(errors) - min(errors)
        # Flat within noise: no point may dwarf the series mean.
        assert spread < 3 * (sum(errors) / len(errors)) + 0.05, (
            f"{estimator}: error should be independent of m"
        )
