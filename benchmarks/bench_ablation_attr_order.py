"""Ablation D: drill-down attribute order.  Large-domain-first trees are
shallower (cheaper drill-downs); both orders must track correctly."""

from conftest import BENCH_SCALE, BENCH_TRIALS

from repro.experiments.figures import run_ablation_attr_order


def test_ablation_attr_order(figure_bench, tail):
    figure = figure_bench(
        run_ablation_attr_order, scale=BENCH_SCALE,
        trials=max(BENCH_TRIALS, 3), rounds=15, budget=500,
    )
    small_first = tail(figure, "REISSUE-small-first", tail=6)
    large_first = tail(figure, "REISSUE-large-first", tail=6)
    assert small_first < 0.6
    assert large_first < 0.6
    # The drill-count comparison lives in the notes; assert it rendered.
    assert "drills/round" in figure.notes
