"""Figure 14: running-average COUNT over windows of 2/3/4 rounds.  REISSUE
and RS far ahead of RESTART for every window."""

from conftest import BENCH_SCALE

from repro.experiments.figures import run_fig14


def test_fig14(figure_bench):
    figure = figure_bench(
        run_fig14, scale=BENCH_SCALE, trials=3, rounds=20, budget=500,
        windows=(2, 3, 4),
    )
    # The robust paper shape: RS best for every window.  (REISSUE's
    # frozen-set luck and RESTART's independence bonus — averaging w
    # independent estimates — make the REISSUE/RESTART margin noisy at
    # bench scale, so it is reported but not asserted.)
    for position in range(len(figure.xs)):
        restart = figure.series["RESTART"][position]
        assert figure.series["RS"][position] < restart
        assert figure.series["RS"][position] < (
            figure.series["REISSUE"][position]
        )
