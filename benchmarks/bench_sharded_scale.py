"""Sharded-store scale benchmark: fig12-shaped workload at n >= 1M.

Runs the same seeded multi-tenant estimation workload (bulk load, heavy
round churn, three estimator tenants — the fig12 shape, scaled up) twice
through the :class:`repro.api.Engine` facade:

* **single_shard** — ``backend="sharded"`` with one shard, sequential
  rounds: the degenerate configuration whose costs equal a monolithic
  store plus dispatch overhead.
* **sharded_parallel** — 8 shards with parallel per-shard bulk dispatch
  and ``run_round(parallel=4)``.

Estimates must be *bit-identical* between the two configurations (shard
count and worker count are operational knobs, never statistical ones);
the figure reports per-phase wall times and the end-to-end speedup.  The
schema is narrow enough (m=12) that keys pack into int64 runs — the
configuration where per-shard numpy sorts release the GIL and actually
overlap.  Wide-key sharding is exercised by the test suite instead
(``tests/test_backends.py``).

Environment knobs::

    REPRO_BENCH_SHARDED_N            tuples to load (default 1_000_000)
    REPRO_BENCH_SHARDED_ROUNDS       churn/estimation rounds (default 5)
    REPRO_BENCH_SHARDED_MIN_SPEEDUP  speedup floor the test asserts
                                     (default 0.9 — shared CI runners and
                                     single-core hosts cannot promise the
                                     multi-core target; on a dedicated
                                     >=4-core box set it to 1.5)
"""

from __future__ import annotations

import os
import random
import time

from repro.api import Engine, EngineConfig, EstimationTask
from repro.core.aggregates import count_all
from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.experiments.figures.common import FigureResult

ALGORITHMS = ("RESTART", "REISSUE", "RS")

SHARDED_N = int(os.environ.get("REPRO_BENCH_SHARDED_N", "1000000"))
SHARDED_ROUNDS = int(os.environ.get("REPRO_BENCH_SHARDED_ROUNDS", "5"))
MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_SHARDED_MIN_SPEEDUP", "0.9")
)


def _run_config(
    label: str,
    n: int,
    rounds: int,
    budget: int,
    seed: int,
    shards: int,
    parallelism: int,
):
    """One full workload pass; returns (per-round walls, load wall,
    estimate trace) for the given sharding configuration."""
    domain_sizes = [2 + (i % 5) for i in range(12)]
    source = skewed_source(domain_sizes, exponent=0.4, seed=seed)
    engine = Engine(
        EngineConfig(
            backend="sharded",
            shards=shards,
            parallelism=parallelism,
            k=100,
            budget_per_round=budget,
            seed=seed,
        ),
        schema=source.schema,
    )
    load_started = time.perf_counter()
    engine.load(source.batch_columns(n))
    load_seconds = time.perf_counter() - load_started
    schedule = FreshTupleSchedule(
        source,
        inserts_per_round=max(1, n // 50),
        delete_fraction=0.01,
    )
    specs = [count_all()]
    for index, algorithm in enumerate(ALGORITHMS):
        engine.submit(EstimationTask(
            algorithm, specs, algorithm, seed=seed + 17 + index,
        ))
    rng = random.Random(seed + 5)
    round_walls: list[float] = []
    trace: list[dict] = []
    for position in range(rounds):
        round_started = time.perf_counter()
        if position:
            engine.apply_updates(lambda db: apply_round(db, schedule, rng))
            engine.advance_round()
        reports = engine.run_round()
        round_walls.append(time.perf_counter() - round_started)
        trace.append({
            name: (report.estimates, report.queries_used)
            for name, report in sorted(reports.items())
        })
    return round_walls, load_seconds, trace


def run_sharded_scale(
    n: int = SHARDED_N,
    rounds: int = SHARDED_ROUNDS,
    budget: int = 300,
    seed: int = 0,
) -> FigureResult:
    configs = {
        "single_shard": dict(shards=1, parallelism=1),
        "sharded_parallel": dict(shards=8, parallelism=4),
    }
    walls: dict[str, list[float]] = {}
    loads: dict[str, float] = {}
    traces: dict[str, list] = {}
    for label, knobs in configs.items():
        walls[label], loads[label], traces[label] = _run_config(
            label, n, rounds, budget, seed, **knobs
        )
    assert traces["single_shard"] == traces["sharded_parallel"], (
        "sharding/parallelism changed the estimates — they are operational "
        "knobs and must be bit-identical"
    )
    totals = {
        label: loads[label] + sum(walls[label]) for label in configs
    }
    speedup = (
        totals["single_shard"] / totals["sharded_parallel"]
        if totals["sharded_parallel"] > 0
        else float("inf")
    )
    return FigureResult(
        "sharded_scale",
        f"fig12-shaped workload, n={n}, sharded scale-up",
        x_label="round",
        y_label="wall seconds",
        xs=list(range(1, rounds + 1)),
        series={label: walls[label] for label in configs},
        notes=(
            f"load: single={loads['single_shard']:.2f}s "
            f"sharded={loads['sharded_parallel']:.2f}s; "
            f"end-to-end speedup x{speedup:.2f}"
        ),
        meta={
            "n": n,
            "backend": "sharded",  # pinned via EngineConfig, whatever the
                                   # process default says
            "configs": configs,
            "load_seconds": loads,
            "total_seconds": totals,
            "speedup": speedup,
            "estimates_identical": True,
        },
    )


def test_sharded_scale(figure_bench):
    figure = figure_bench(run_sharded_scale)
    # Estimates already proven identical inside the builder; here gate on
    # the speedup floor.  The default floor only rejects net slowdowns —
    # shared CI runners and single-core hosts cannot promise the
    # multi-core target; raise REPRO_BENCH_SHARDED_MIN_SPEEDUP to 1.5 on
    # a dedicated >=4-core machine to enforce the scaling goal itself.
    assert figure.meta["estimates_identical"]
    assert figure.meta["speedup"] > MIN_SPEEDUP, figure.meta
