"""Figure 17: size change under big churn.  REISSUE and RS converge to the
same behaviour (paper §4.2) and both beat RESTART."""

from conftest import BENCH_SCALE, BENCH_TRIALS

from repro.experiments.figures import run_fig17


def test_fig17(figure_bench, tail):
    figure = figure_bench(
        run_fig17, scale=BENCH_SCALE, trials=max(BENCH_TRIALS, 3),
        rounds=8, budget=500,
    )
    restart = tail(figure, "RESTART", tail=5)
    reissue = tail(figure, "REISSUE", tail=5)
    rs = tail(figure, "RS", tail=5)
    assert reissue < restart
    assert rs < restart
    # Convergence: RS and REISSUE within a small factor of each other.
    assert min(rs, reissue) > 0
    assert max(rs, reissue) / min(rs, reissue) < 4.0
