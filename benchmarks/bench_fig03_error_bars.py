"""Figure 3: raw estimates stay centred on truth (unbiasedness) and RS has
the tightest across-trial spread."""

from conftest import BENCH_SCALE

from repro.experiments.figures import run_fig03


def test_fig03(figure_bench):
    figure = figure_bench(
        run_fig03, scale=BENCH_SCALE, trials=4, rounds=30, budget=500,
    )
    # Centre series (relative size) must hover around 1.0 for everyone.
    for estimator in ("RESTART", "REISSUE", "RS"):
        centre = figure.series[estimator]
        late = sum(centre[-5:]) / 5
        assert 0.7 < late < 1.3, f"{estimator} drifted from truth"
    # RS's error bars (spread between +sd and -sd) end narrowest.
    def late_spread(name):
        plus = figure.series[f"{name}+sd"][-5:]
        minus = figure.series[f"{name}-sd"][-5:]
        return sum(p - m for p, m in zip(plus, minus)) / 5

    assert late_spread("RS") <= late_spread("RESTART")
