"""Extension benchmark (paper §8 future work 1): COUNT metadata.

When the interface reveals result totals, COUNT(*) becomes exact at one
query per round and count-proportional drill-downs cut SUM estimation
error by a large factor versus uniform drill-downs on the same budget.
"""

from conftest import BENCH_SCALE

from repro import HiddenDatabase, RestartEstimator, TopKInterface, sum_measure
from repro.data import autos_snapshot
from repro.experiments import render_table
from repro.extensions import CountAssistedEstimator, CountRevealingInterface


def test_count_metadata_extension(benchmark):
    def run():
        schema, payloads = autos_snapshot(
            total=max(2000, int(188_917 * BENCH_SCALE * 0.5)), seed=3
        )
        db = HiddenDatabase(schema)
        for values, measures in payloads:
            db.insert(values, measures)
        interface = TopKInterface(db, k=100)
        spec = sum_measure(schema, "price")
        truth = spec.ground_truth(db)
        uniform_errors, assisted_errors = [], []
        for seed in range(5):
            uniform = RestartEstimator(
                interface, [spec], budget_per_round=400, seed=seed
            )
            assisted = CountAssistedEstimator(
                CountRevealingInterface(interface), [spec],
                budget_per_round=400, seed=seed,
            )
            uniform_errors.append(
                abs(uniform.run_round().estimates[spec.name] / truth - 1)
            )
            assisted_errors.append(
                abs(assisted.run_round().estimates[spec.name] / truth - 1)
            )
        return (
            sum(uniform_errors) / len(uniform_errors),
            sum(assisted_errors) / len(assisted_errors),
        )

    uniform_error, assisted_error = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print("\n" + render_table(
        ["method", "mean SUM(price) rel. error"],
        [["uniform drill-downs", uniform_error],
         ["count-proportional drill-downs", assisted_error]],
    ))
    assert assisted_error < uniform_error / 2, (
        "count metadata should cut SUM error at least in half"
    )
