"""Observability-plane overhead gate on the fig12 facade workload.

Runs :func:`bench_engine_fig12.run_engine_fig12` with the ``repro.obs``
plane disabled and enabled, *interleaved* (off/on pairs) so frequency
scaling and cache warm-up bias neither mode, then asserts

* the estimates are **bit-identical** — instrumentation is counters and
  timers only, it never touches estimator RNG streams; and
* the enabled/disabled wall-time ratio stays under
  ``REPRO_OBS_MAX_OVERHEAD`` (default 1.10 — the target is ~3%, the gate
  leaves head-room for runner jitter).

Drops ``BENCH_obs_overhead.json`` with both timings and the measured
ratio for the perf-gate trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from bench_engine_fig12 import run_engine_fig12
from conftest import BENCH_SCALE

from repro.obs import OBS

#: Enabled/disabled wall ratio the gate tolerates.
MAX_OVERHEAD = float(os.environ.get("REPRO_OBS_MAX_OVERHEAD", "1.10"))

#: off/on pairs timed; the minimum of each mode is compared.
PAIRS = int(os.environ.get("REPRO_OBS_OVERHEAD_PAIRS", "3"))


def _run_once(enabled: bool):
    OBS.reset()
    if enabled:
        OBS.enable()
    else:
        OBS.disable()
    try:
        started = time.perf_counter()
        figure = run_engine_fig12(
            n=max(2_000, int(100_000 * BENCH_SCALE)), rounds=6, budget=400
        )
        return figure, time.perf_counter() - started
    finally:
        OBS.disable()


def test_obs_overhead():
    walls: dict[bool, list[float]] = {False: [], True: []}
    figures: dict[bool, object] = {}
    started = time.perf_counter()
    for _ in range(PAIRS):
        for enabled in (False, True):
            figure, wall = _run_once(enabled)
            figures[enabled] = figure
            walls[enabled].append(wall)
    total_wall = time.perf_counter() - started

    # Bit-identity: same xs, same per-round error series, same ledger.
    off, on = figures[False], figures[True]
    assert off.xs == on.xs
    assert off.series == on.series, "observability changed the estimates"
    assert off.meta["budget_ledger"] == on.meta["budget_ledger"]

    best_off = min(walls[False])
    best_on = min(walls[True])
    ratio = best_on / best_off if best_off > 0 else 1.0
    payload = {
        "name": "obs_overhead",
        "test": "test_obs_overhead",
        "figure_id": None,
        "scale": BENCH_SCALE,
        "pairs": PAIRS,
        "wall_seconds": round(total_wall, 3),
        "wall_seconds_disabled": [round(w, 4) for w in walls[False]],
        "wall_seconds_enabled": [round(w, 4) for w in walls[True]],
        "overhead_ratio": round(ratio, 4),
        "max_overhead": MAX_OVERHEAD,
        "bit_identical": True,
    }
    path = Path.cwd() / "BENCH_obs_overhead.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nobs overhead: off={best_off:.3f}s on={best_on:.3f}s "
        f"ratio={ratio:.3f} (gate {MAX_OVERHEAD})"
    )
    assert ratio <= MAX_OVERHEAD, (
        f"observability overhead {ratio:.3f}x exceeds {MAX_OVERHEAD}x"
    )
