"""Figure 13: SUM(price) with 0-3 pushdown selection predicates.  More
selective aggregates drill a smaller subtree and get more accurate; RS and
REISSUE beat RESTART in every case."""

from conftest import BENCH_SCALE

from repro.experiments.figures import run_fig13


def test_fig13(figure_bench):
    figure = figure_bench(
        run_fig13, scale=BENCH_SCALE, trials=2, rounds=25, budget=500,
    )
    # Selectivity helps: 3 predicates beats 0 predicates for our methods.
    assert figure.series["RS"][-1] < figure.series["RS"][0] * 1.2
    for position in range(len(figure.xs)):
        assert figure.series["RS"][position] < (
            figure.series["RESTART"][position] * 1.2
        )
