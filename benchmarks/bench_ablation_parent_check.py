"""Ablation A: strict vs lazy reissue parent checking under heavy
deletions.  The lazy (Algorithm-1 verbatim) walk saves a query per stable
drill-down but accepts stale top-nodes, so it must not be *better* — and
the strict walk must stay accurate."""

from conftest import BENCH_SCALE, BENCH_TRIALS

from repro.experiments.figures import run_ablation_parent_check


def test_ablation_parent_check(figure_bench, tail):
    figure = figure_bench(
        run_ablation_parent_check, scale=BENCH_SCALE,
        trials=max(BENCH_TRIALS, 3), rounds=20, budget=500,
    )
    strict = tail(figure, "REISSUE-strict", tail=8)
    lazy = tail(figure, "REISSUE-lazy", tail=8)
    assert strict < 0.5, "strict walk should track a shrinking database"
    # Lazy may be equal (when no parent flips happen) but not clearly
    # better — it spends strictly fewer queries for the same information
    # only when it is also mis-pricing some drill-downs.
    assert strict < lazy * 1.5
