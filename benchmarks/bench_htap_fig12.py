"""HTAP overlap benchmark: fig12-shaped workload with churn/read overlap.

Runs the same seeded multi-tenant estimation workload (bulk load, heavy
round churn, three estimator tenants — the fig12 shape, scaled up) twice
through the :class:`repro.api.Engine` facade:

* **sequential** — ``overlap=False``: each round applies its churn, flips
  the round barrier, then runs the estimators.  Churn and estimation
  serialize behind the round lock — the PR 7 execution model.
* **overlapped** — ``overlap=True``: estimators read the published
  (immutable) epoch while the *next* round's churn lands on the live
  store from a writer thread; ``advance_round()`` is the atomic publish
  flip.  Round wall approaches ``max(churn, estimation)`` instead of
  their sum.

Both drivers present every round with exactly the same data (round *i*
always reads the store after *i* churn batches), so the estimate traces
must be *bit-identical* — overlap is an operational knob, never a
statistical one.  The figure reports per-round wall times and the
end-to-end round-phase speedup.

Environment knobs::

    REPRO_BENCH_HTAP_N            tuples to load (default 1_000_000)
    REPRO_BENCH_HTAP_ROUNDS       churn/estimation rounds (default 5)
    REPRO_BENCH_HTAP_MIN_SPEEDUP  speedup floor the test asserts
                                  (default 0.6 — a single-core host
                                  *cannot* overlap anything and still
                                  pays the HTAP tax: publish flips plus
                                  copy-on-write privatization of churned
                                  heap blocks, ~0.7x there.  On a
                                  dedicated >=2-core box set it to 1.5
                                  to enforce the overlap goal itself)
"""

from __future__ import annotations

import os
import random
import threading
import time

from repro.api import Engine, EngineConfig, EstimationTask
from repro.core.aggregates import count_all
from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.experiments.figures.common import FigureResult

ALGORITHMS = ("RESTART", "REISSUE", "RS")

HTAP_N = int(os.environ.get("REPRO_BENCH_HTAP_N", "1000000"))
HTAP_ROUNDS = int(os.environ.get("REPRO_BENCH_HTAP_ROUNDS", "5"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_HTAP_MIN_SPEEDUP", "0.6"))


def _build_engine(n: int, budget: int, seed: int, overlap: bool):
    """Load one engine + schedule + tenants for a workload pass."""
    domain_sizes = [2 + (i % 5) for i in range(12)]
    source = skewed_source(domain_sizes, exponent=0.4, seed=seed)
    engine = Engine(
        EngineConfig(
            backend="sharded",
            shards=4,
            overlap=overlap,
            k=100,
            budget_per_round=budget,
            seed=seed,
        ),
        schema=source.schema,
    )
    load_started = time.perf_counter()
    engine.load(source.batch_columns(n))
    load_seconds = time.perf_counter() - load_started
    schedule = FreshTupleSchedule(
        source,
        inserts_per_round=max(1, n // 50),
        delete_fraction=0.01,
    )
    for index, algorithm in enumerate(ALGORITHMS):
        engine.submit(EstimationTask(
            algorithm, [count_all()], algorithm, seed=seed + 17 + index,
        ))
    return engine, schedule, load_seconds


def _snapshot(reports) -> dict:
    return {
        name: (report.estimates, report.queries_used)
        for name, report in sorted(reports.items())
    }


def _run_sequential(n: int, rounds: int, budget: int, seed: int):
    """Churn → flip → estimate, all behind the round barrier."""
    engine, schedule, load_seconds = _build_engine(
        n, budget, seed, overlap=False
    )
    rng = random.Random(seed + 5)
    round_walls: list[float] = []
    trace: list[dict] = []
    for position in range(rounds):
        round_started = time.perf_counter()
        if position:
            engine.apply_updates(lambda db: apply_round(db, schedule, rng))
            engine.advance_round()
        trace.append(_snapshot(engine.run_round()))
        round_walls.append(time.perf_counter() - round_started)
    return round_walls, load_seconds, trace


def _run_overlapped(n: int, rounds: int, budget: int, seed: int):
    """Round *i*'s estimators (pinned to the published epoch) overlap
    round *i+1*'s churn on the live store; the advance after the join is
    the publish flip.  Round *i* therefore reads exactly the same store
    state as in the sequential driver."""
    engine, schedule, load_seconds = _build_engine(
        n, budget, seed, overlap=True
    )
    rng = random.Random(seed + 5)
    # Publish the first epoch before any writer thread exists, so churn
    # can never race the lazy first-read publish into round 0's view.
    engine.db.publish_epoch()
    round_walls: list[float] = []
    trace: list[dict] = []
    for position in range(rounds):
        round_started = time.perf_counter()
        writer = None
        if position < rounds - 1:
            writer = threading.Thread(
                target=lambda: engine.apply_updates(
                    lambda db: apply_round(db, schedule, rng)
                ),
                name="repro-churn",
            )
            writer.start()
        trace.append(_snapshot(engine.run_round()))
        if writer is not None:
            writer.join()
            engine.advance_round()
        round_walls.append(time.perf_counter() - round_started)
    return round_walls, load_seconds, trace


def run_htap_fig12(
    n: int = HTAP_N,
    rounds: int = HTAP_ROUNDS,
    budget: int = 2000,
    seed: int = 0,
) -> FigureResult:
    walls: dict[str, list[float]] = {}
    loads: dict[str, float] = {}
    traces: dict[str, list] = {}
    walls["sequential"], loads["sequential"], traces["sequential"] = (
        _run_sequential(n, rounds, budget, seed)
    )
    walls["overlapped"], loads["overlapped"], traces["overlapped"] = (
        _run_overlapped(n, rounds, budget, seed)
    )
    assert traces["sequential"] == traces["overlapped"], (
        "churn/read overlap changed the estimates — overlap is an "
        "operational knob and must be bit-identical"
    )
    totals = {label: sum(series) for label, series in walls.items()}
    speedup = (
        totals["sequential"] / totals["overlapped"]
        if totals["overlapped"] > 0
        else float("inf")
    )
    return FigureResult(
        "htap_fig12",
        f"fig12-shaped workload, n={n}, churn/read overlap",
        x_label="round",
        y_label="wall seconds",
        xs=list(range(1, rounds + 1)),
        series={label: walls[label] for label in walls},
        notes=(
            f"load: sequential={loads['sequential']:.2f}s "
            f"overlapped={loads['overlapped']:.2f}s; "
            f"round-phase speedup x{speedup:.2f}"
        ),
        meta={
            "n": n,
            "backend": "sharded",  # pinned via EngineConfig, whatever the
                                   # process default says
            "rounds": rounds,
            "budget": budget,
            "load_seconds": loads,
            "round_seconds": totals,
            "speedup": speedup,
            "estimates_identical": True,
        },
    )


def test_htap_fig12(figure_bench):
    figure = figure_bench(run_htap_fig12)
    # Estimates already proven identical inside the builder; here gate on
    # the speedup floor.  The default floor only rejects pathological
    # slowdowns — a single-core host cannot overlap anything yet still
    # pays the publish + copy-on-write HTAP tax (~0.7x); raise
    # REPRO_BENCH_HTAP_MIN_SPEEDUP to 1.5 on a dedicated >=2-core
    # machine to enforce the overlap goal itself.
    assert figure.meta["estimates_identical"]
    assert figure.meta["speedup"] > MIN_SPEEDUP, figure.meta
