"""Shared helpers for the per-figure benchmarks.

Every benchmark regenerates one figure of the paper at a reduced (but
representative) scale, prints its table and ASCII chart into the captured
output, and asserts the figure's qualitative *shape* — who wins, the
direction of trends — with deliberately loose tolerances (the absolute
numbers depend on the scale and on simulator randomness).

Environment knobs:

* ``REPRO_BENCH_SCALE``   — fraction of the paper's dataset size (default 0.05)
* ``REPRO_BENCH_TRIALS``  — trials to average per experiment (default 2)
* ``REPRO_BENCH_BACKEND`` — storage backend for every simulated database
  (``blocked`` | ``packed``; default: the package default, ``blocked``)
* ``REPRO_DATA_PLANE``    — data plane for bulk loads *and* query
  evaluation (``vectorized`` | ``scalar``; default ``vectorized``).  The
  vectorized setting selects the columnar query plane (vector candidate
  gather + ``np.argpartition`` page selection, deferred materialization);
  ``scalar`` is the per-tuple reference path.  CI times both so the two
  stay comparable across commits (the perf gate reads
  ``benchmarks/baselines.json``).

Each run additionally drops a machine-readable ``BENCH_<figure>.json``
next to the working directory (wall time, backend, query counts, series)
so the performance trajectory can be compared across commits and backends.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.hiddendb.backends import get_default_backend, set_default_backend
from repro.hiddendb.store import get_data_plane
from repro.obs import OBS

#: Fraction of the paper's dataset sizes used by default.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

#: Trials averaged per experiment by default.
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "2"))

#: Storage backend used for every database the benchmarks build.
BENCH_BACKEND = os.environ.get("REPRO_BENCH_BACKEND")
if BENCH_BACKEND:
    set_default_backend(BENCH_BACKEND)


def tail_mean(figure, series_name: str, tail: int = 5) -> float:
    """Mean of the last ``tail`` finite values of one series."""
    values = [
        v for v in figure.series[series_name][-tail:]
        if v is not None and math.isfinite(v)
    ]
    if not values:
        return math.nan
    return sum(values) / len(values)


def _json_safe(value):
    """Recursively replace non-finite floats (JSON has no NaN/Infinity)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _write_bench_json(request, figure, wall_seconds: float) -> None:
    """Persist one benchmark's result as ``BENCH_<figure>.json``."""
    module = request.node.module.__name__
    stem = module[len("bench_"):] if module.startswith("bench_") else module
    payload = {
        "name": stem,
        "test": request.node.name,
        "figure_id": getattr(figure, "figure_id", None),
        "backend": get_default_backend(),
        "data_plane": get_data_plane(),
        "scale": BENCH_SCALE,
        "trials": BENCH_TRIALS,
        "wall_seconds": round(wall_seconds, 3),
        "xs": _json_safe(list(figure.xs)),
        "series": _json_safe(figure.series),
        "meta": _json_safe(getattr(figure, "meta", {})),
        "metrics": _json_safe({
            "summary": OBS.summary(),
            "registry": OBS.snapshot(),
        }),
    }
    path = Path.cwd() / f"BENCH_{stem}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


@pytest.fixture
def figure_bench(benchmark, request):
    """Run a figure builder once under pytest-benchmark and record it."""

    def _run(builder, **kwargs):
        # Fresh counters per figure run so each BENCH_*.json's "metrics"
        # block covers exactly that run (estimates are bit-identical with
        # the observability plane on — see bench_obs_overhead.py).
        OBS.reset()
        OBS.enable()
        try:
            started = time.perf_counter()
            figure = benchmark.pedantic(
                lambda: builder(**kwargs), rounds=1, iterations=1
            )
            wall_seconds = time.perf_counter() - started
        finally:
            OBS.disable()
        print("\n" + figure.to_text())
        _write_bench_json(request, figure, wall_seconds)
        return figure

    return _run


@pytest.fixture
def tail():
    return tail_mean
