"""Shared helpers for the per-figure benchmarks.

Every benchmark regenerates one figure of the paper at a reduced (but
representative) scale, prints its table and ASCII chart into the captured
output, and asserts the figure's qualitative *shape* — who wins, the
direction of trends — with deliberately loose tolerances (the absolute
numbers depend on the scale and on simulator randomness).

Environment knobs:

* ``REPRO_BENCH_SCALE``  — fraction of the paper's dataset size (default 0.05)
* ``REPRO_BENCH_TRIALS`` — trials to average per experiment (default 2)
"""

from __future__ import annotations

import math
import os

import pytest

#: Fraction of the paper's dataset sizes used by default.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

#: Trials averaged per experiment by default.
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "2"))


def tail_mean(figure, series_name: str, tail: int = 5) -> float:
    """Mean of the last ``tail`` finite values of one series."""
    values = [
        v for v in figure.series[series_name][-tail:]
        if v is not None and math.isfinite(v)
    ]
    if not values:
        return math.nan
    return sum(values) / len(values)


@pytest.fixture
def figure_bench(benchmark):
    """Run a figure builder once under pytest-benchmark and print it."""

    def _run(builder, **kwargs):
        figure = benchmark.pedantic(
            lambda: builder(**kwargs), rounds=1, iterations=1
        )
        print("\n" + figure.to_text())
        return figure

    return _run


@pytest.fixture
def tail():
    return tail_mean
