"""Service-plane load benchmark: hundreds of tenants through HTTP.

The scenario the service PR must hold up under: ~200 concurrent tenants
with a zipf-skewed arrival/polling pattern (a few hot tenants dominate
traffic — the realistic shape of a shared estimation endpoint) against
one sharded engine, entirely through the HTTP service.  Measures:

* **submit storm** — all tenants submitted concurrently from a thread
  pool (arrival order nondeterministic by construction);
* **governed rounds** — ``POST /v1/rounds`` with parallel execution,
  while zipf-skewed pollers hammer the observer endpoints
  (``/v1/ledger``, ``/v1/tasks/{name}/reports``, ``/v1/healthz``) and
  their latency is recorded — the lock-narrowing contract priced;
* **parity** — every estimate obtained over HTTP must be bit-identical
  to a direct ``Engine`` run of the same config (per-task seeds derive
  from task *names*, so the nondeterministic submission order must not
  matter).

Environment knobs::

    REPRO_BENCH_SERVICE_TENANTS   concurrent tenants  (default 200)
    REPRO_BENCH_SERVICE_N         tuples loaded       (default 20_000)
    REPRO_BENCH_SERVICE_ROUNDS    estimation rounds   (default 3)
    REPRO_BENCH_SERVICE_POLLERS   poller threads      (default 8)
"""

from __future__ import annotations

import asyncio
import os
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro import HiddenDatabase
from repro.api import Engine, EngineConfig, EstimationTask
from repro.core.aggregates import count_all, sum_measure
from repro.core.estimators.base import RoundReport
from repro.data.synthetic import skewed_source, zipf_weights
from repro.experiments.figures.common import FigureResult
from repro.service import ServiceApp, ServiceClient, ServiceServer

TENANTS = int(os.environ.get("REPRO_BENCH_SERVICE_TENANTS", "200"))
N_TUPLES = int(os.environ.get("REPRO_BENCH_SERVICE_N", "20000"))
ROUNDS = int(os.environ.get("REPRO_BENCH_SERVICE_ROUNDS", "3"))
POLLERS = int(os.environ.get("REPRO_BENCH_SERVICE_POLLERS", "8"))

SEED = 11
DOMAIN_SIZES = [12, 10, 12, 8, 6, 5]
SHARDS = 4
K = 20


def _engine() -> Engine:
    source = skewed_source(
        DOMAIN_SIZES,
        exponent=0.4,
        measures=("price",),
        measure_sampler=lambda rng: (rng.uniform(1.0, 100.0),),
        seed=SEED,
    )
    config = EngineConfig(
        backend="sharded",
        shards=SHARDS,
        parallelism=4,
        k=K,
        budget_per_round=20,
        seed=SEED,
    )
    db = HiddenDatabase(
        source.schema,
        backend=config.backend,
        block_size=config.block_size,
        backend_options=config.backend_factory_options(),
    )
    db.insert_many(source.batch_columns(N_TUPLES))
    return Engine(config, db=db)


def _tenant_plan(tenants: int):
    """(name, budget, wire_specs, direct_specs_builder) per tenant.

    Budgets vary with zipf rank so hot tenants are also the heavy ones.
    """
    weights = zipf_weights(tenants, 1.1)
    plan = []
    for index in range(tenants):
        name = f"tenant{index:04d}"
        budget = 8 + (index % 3) * 6  # 8 / 14 / 20 — small per-tenant G
        if index % 4 == 0:
            wire = [{"kind": "count"},
                    {"kind": "sum", "measure": "price"}]
            direct = lambda schema: [  # noqa: E731
                count_all(), sum_measure(schema, "price"),
            ]
        else:
            wire = [{"kind": "count"}]
            direct = lambda schema: [count_all()]  # noqa: E731
        plan.append((name, budget, wire, direct, weights[index]))
    return plan


def _direct_estimates(plan, rounds: int):
    """The ground truth: the same tenants driven straight at an Engine."""
    engine = _engine()
    for name, budget, _wire, direct, _w in plan:
        engine.submit(EstimationTask(
            name, direct(engine.db.schema), "RS", budget=budget,
        ))
    per_round = []
    for _position in range(rounds):
        reports = engine.run_round()
        per_round.append({
            name: (dict(r.estimates), dict(r.variances), r.queries_used)
            for name, r in reports.items()
        })
    return per_round


def run_service_load(
    tenants: int = TENANTS,
    rounds: int = ROUNDS,
    pollers: int = POLLERS,
) -> FigureResult:
    plan = _tenant_plan(tenants)
    direct = _direct_estimates(plan, rounds)

    app = ServiceApp(_engine())
    server = ServiceServer(app, port=0, heartbeat=1.0)
    ready = threading.Event()

    def serve() -> None:
        async def go():
            await server.start()
            ready.set()
            await server.serve_forever()

        asyncio.run(go())

    server_thread = threading.Thread(target=serve, daemon=True)
    server_thread.start()
    assert ready.wait(15), "service failed to start"
    client = ServiceClient("127.0.0.1", server.port, timeout=120)

    # ---- submit storm: concurrent, order nondeterministic -------------
    submit_started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=16) as pool:
        futures = [
            pool.submit(
                client.submit,
                name=name, estimator="RS", specs=wire, budget=budget,
            )
            for name, budget, wire, _direct, _w in plan
        ]
        for future in futures:
            future.result()
    submit_seconds = time.perf_counter() - submit_started

    # ---- governed rounds under zipf-skewed observer load --------------
    names = [name for name, *_ in plan]
    weights = [w for *_, w in plan]
    stop_polling = threading.Event()
    poll_latencies: list[float] = []
    poll_lock = threading.Lock()

    def poll(worker: int) -> None:
        rng = random.Random(SEED + worker)
        poller = ServiceClient("127.0.0.1", server.port, timeout=120)
        while not stop_polling.is_set():
            choice = rng.random()
            begin = time.perf_counter()
            if choice < 0.5:
                target = rng.choices(names, weights=weights, k=1)[0]
                poller.reports(target)
            elif choice < 0.8:
                poller.ledger()
            else:
                poller.health()
            with poll_lock:
                poll_latencies.append(time.perf_counter() - begin)
            time.sleep(0.002)

    poll_threads = [
        threading.Thread(target=poll, args=(worker,), daemon=True)
        for worker in range(pollers)
    ]
    for thread in poll_threads:
        thread.start()

    round_walls: list[float] = []
    served: list[dict] = []
    try:
        for _position in range(rounds):
            begin = time.perf_counter()
            response = client.run_rounds(rounds=1, parallel=4)
            round_walls.append(time.perf_counter() - begin)
            result = response["results"][0]
            served.append({
                outcome["task"]: outcome for outcome in result["outcomes"]
            })
    finally:
        stop_polling.set()
        for thread in poll_threads:
            thread.join(timeout=30)
        client.shutdown()
        server_thread.join(timeout=30)

    # ---- parity: bit-identical to the direct engine -------------------
    mismatches = 0
    for position in range(rounds):
        for name in names:
            outcome = served[position][name]
            assert outcome["status"] == "ok", outcome
            report = RoundReport.from_dict(outcome["report"])
            expected = direct[position][name]
            if (report.estimates, report.variances,
                    report.queries_used) != expected:
                mismatches += 1
    assert mismatches == 0, (
        f"{mismatches} HTTP reports differ from direct Engine use"
    )

    poll_latencies.sort()
    p50 = poll_latencies[len(poll_latencies) // 2] if poll_latencies else 0.0
    p99 = (
        poll_latencies[int(len(poll_latencies) * 0.99)]
        if poll_latencies else 0.0
    )
    return FigureResult(
        "service_load",
        f"{tenants} tenants through the HTTP service, sharded engine",
        x_label="round",
        y_label="wall seconds",
        xs=list(range(1, rounds + 1)),
        series={"round_wall": round_walls},
        notes=(
            f"submit storm {submit_seconds:.2f}s for {tenants} tenants; "
            f"{len(poll_latencies)} skewed polls during rounds, "
            f"p50 {p50 * 1000:.1f}ms / p99 {p99 * 1000:.1f}ms; "
            f"estimates bit-identical to direct Engine use"
        ),
        meta={
            "tenants": tenants,
            "n": N_TUPLES,
            "shards": SHARDS,
            "submit_seconds": submit_seconds,
            "polls": len(poll_latencies),
            "poll_p50_ms": p50 * 1000,
            "poll_p99_ms": p99 * 1000,
            "estimates_identical": True,
        },
    )


def test_service_load(figure_bench):
    figure = figure_bench(run_service_load)
    assert figure.meta["estimates_identical"]
    assert figure.meta["tenants"] >= 100
    # Observer latency must stay interactive while rounds run — the whole
    # point of the worker-thread + lock-narrowing design.  Generous bound:
    # shared CI runners jitter, but seconds-long stalls mean the event
    # loop blocked behind a round.
    assert figure.meta["poll_p99_ms"] < 5000, figure.meta
