"""Figure 8: larger interface page size k => lower error for everyone."""

from conftest import BENCH_SCALE

from repro.experiments.figures import run_fig08


def test_fig08(figure_bench):
    figure = figure_bench(
        run_fig08, scale=BENCH_SCALE, trials=2, rounds=15, budget=500,
        k_values=(200, 600, 1000),
    )
    # Monotone-ish decrease for the stable series (RESTART redraws every
    # round; RS accumulates).  REISSUE's tail is its frozen set's luck,
    # so only a very loose bound applies to it.
    for estimator in ("RESTART", "RS"):
        errors = figure.series[estimator]
        assert errors[-1] < errors[0] * 1.2, (
            f"{estimator}: error should fall as k grows"
        )
    assert figure.series["REISSUE"][-1] < figure.series["REISSUE"][0] * 6
    # Our algorithms beat the baseline at every k.
    for position in range(len(figure.xs)):
        assert figure.series["RS"][position] < (
            figure.series["RESTART"][position] * 1.2
        )
