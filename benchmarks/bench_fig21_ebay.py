"""Figure 21: eBay women's wrist watches (simulated): FIX prices sit far
above BID snapshots; our estimators track FIX more tightly than RESTART."""

from repro.experiments.figures import run_fig21


def test_fig21(figure_bench):
    figure = figure_bench(
        run_fig21, trials=2, rounds=8, budget=250, catalog_size=10_000,
    )
    fix_truth = figure.series["truth-FIX"]
    bid_truth = figure.series["truth-BID"]
    # Observation 1: Buy-It-Now prices well above bid snapshots.
    assert all(f > 1.3 * b for f, b in zip(fix_truth, bid_truth))

    def mean_abs_rel_error(estimator, label, truth):
        values = figure.series[f"{estimator}-{label}"]
        return sum(
            abs(v - t) / t for v, t in zip(values, truth)
        ) / len(truth)

    # Observation 2: reissue-based tracking of the stable FIX segment is
    # at least as accurate as RESTART's.
    assert mean_abs_rel_error("RS", "FIX", fix_truth) <= (
        mean_abs_rel_error("RESTART", "FIX", fix_truth) * 1.2
    )
