"""Figure 2: COUNT(*) relative error per round, default Autos churn.

Paper's shape: RESTART stays noisy and flat; REISSUE and RS leverage
history and end well below it, with RS lowest.
"""

from conftest import BENCH_SCALE, BENCH_TRIALS

from repro.experiments.figures import run_fig02


def test_fig02(figure_bench, tail):
    figure = figure_bench(
        run_fig02, scale=BENCH_SCALE, trials=max(BENCH_TRIALS, 4),
        rounds=40, budget=500,
    )
    restart = tail(figure, "RESTART", tail=10)
    reissue = tail(figure, "REISSUE", tail=10)
    rs = tail(figure, "RS", tail=10)
    assert reissue < restart * 1.1, "REISSUE must end at/below RESTART"
    assert rs < restart, "RS must end below RESTART"
    # RS keeps accumulating: its tail must improve on its own start.
    early_rs = sum(figure.series["RS"][1:6]) / 5
    assert rs < early_rs
