"""Auto-tuning benchmark: profile shift, hand-picked grid vs ``auto``.

Drives one seeded two-phase workload through the :class:`repro.api
.Engine` facade under every hand-picked backend config *and* under
``EngineConfig(auto=True)``:

* **steady phase** — a small store (the paper's 10k-row regime, scaled)
  with light insert-mostly churn and three estimator tenants.
* **profile shift** — the store grows toward the 1M-row regime while the
  churn pattern flips to delete-heavy bulk batches (the fig10/fig12
  stress mix).

The auto engine starts on whatever the cost model picks from priors,
observes the live profile at every round flip, and re-shards online at
the epoch-publish seam when the shift makes another backend cheaper.
Because a migration copies content bit-for-bit and never advances the
mutation epoch, every config — fixed or auto — must produce the *same*
estimate trace; the builder asserts that before timing means anything.

Gates (see ``meta``):

* ``auto_vs_best``  — auto wall / best hand-picked wall ``<= 1.10 x``
  (``REPRO_BENCH_AUTO_TOLERANCE``): self-tuning never loses more than
  10% to the best config an operator could have frozen up front.
* ``auto_vs_worst`` — auto beats the worst hand-picked config outright
  on this profile-shifted scenario (``< 1.0``).

Environment knobs::

    REPRO_BENCH_AUTO_SMALL_N     steady-phase rows        (default 10_000)
    REPRO_BENCH_AUTO_BIG_N       post-shift target rows   (default 400_000)
    REPRO_BENCH_AUTO_TOLERANCE   auto-vs-best wall ceiling (default 1.10)
    REPRO_TUNING_CPUS            pinned to 1 for the auto pass (set here)
                                 so the decision sequence — and the gate
                                 — is machine-independent; the CI runner
                                 is single-core, so 1 is also the honest
                                 budget there
"""

from __future__ import annotations

import os
import random
import time

from repro.api import Engine, EngineConfig, EstimationTask
from repro.core.aggregates import count_all
from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.experiments.figures.common import FigureResult

ALGORITHMS = ("RESTART", "REISSUE", "RS")

SMALL_N = int(os.environ.get("REPRO_BENCH_AUTO_SMALL_N", "10000"))
BIG_N = int(os.environ.get("REPRO_BENCH_AUTO_BIG_N", "400000"))
TOLERANCE = float(os.environ.get("REPRO_BENCH_AUTO_TOLERANCE", "1.10"))

STEADY_ROUNDS = 3
SHIFT_ROUNDS = 6

#: The hand-picked grid an operator could have frozen up front.
HAND_PICKED = {
    "blocked": {"backend": "blocked"},
    "packed": {"backend": "packed"},
    "sharded4": {"backend": "sharded", "shards": 4, "parallelism": 4},
    "mapped": {"backend": "mapped"},
}


def _snapshot(reports) -> dict:
    return {
        name: (report.estimates, report.queries_used)
        for name, report in sorted(reports.items())
    }


def _run_workload(config_kwargs: dict, budget: int, seed: int):
    """One full steady+shift pass; returns (round walls, trace, report)."""
    source = skewed_source(
        [2 + (i % 5) for i in range(10)], exponent=0.4, seed=11
    )
    config = EngineConfig(
        k=50, budget_per_round=budget, seed=seed, **config_kwargs
    )
    engine = Engine(config, schema=source.schema)
    walls: list[float] = []
    trace: list[dict] = []
    started = time.perf_counter()
    engine.load(source.batch_columns(SMALL_N))
    for index, algorithm in enumerate(ALGORITHMS):
        engine.submit(EstimationTask(
            algorithm, [count_all()], algorithm, seed=100 + index,
        ))
    rng = random.Random(seed + 5)
    # Steady phase: light, insert-mostly churn on the small store.
    schedule = FreshTupleSchedule(
        source,
        inserts_per_round=max(1, SMALL_N // 20),
        delete_fraction=0.01,
    )
    for position in range(STEADY_ROUNDS):
        round_started = time.perf_counter()
        if position:
            engine.apply_updates(lambda db: apply_round(db, schedule, rng))
            engine.advance_round()
        trace.append(_snapshot(engine.run_round()))
        walls.append(time.perf_counter() - round_started)
    # Profile shift: bulk growth toward BIG_N with delete-heavy churn.
    # Content is identical across configs at this point, so the derived
    # batch sizes are too — the traces stay comparable bit-for-bit.
    grow = max(1, (BIG_N - len(engine.db)) // SHIFT_ROUNDS)
    for _ in range(SHIFT_ROUNDS):
        round_started = time.perf_counter()
        engine.load(source.batch_columns(grow))
        engine.apply_updates(
            lambda db: db.bulk_delete(db.store.random_tids(rng, grow // 4))
        )
        engine.advance_round()
        trace.append(_snapshot(engine.run_round()))
        walls.append(time.perf_counter() - round_started)
    total = time.perf_counter() - started
    return walls, trace, total, engine.tuning_report()


def _run_auto(budget: int, seed: int):
    # The auto pass pins its cpu budget so the decision sequence (and
    # therefore this benchmark) is machine-independent.
    previous = os.environ.get("REPRO_TUNING_CPUS")
    os.environ["REPRO_TUNING_CPUS"] = "1"
    try:
        return _run_workload({"auto": True}, budget, seed)
    finally:
        if previous is None:
            del os.environ["REPRO_TUNING_CPUS"]
        else:
            os.environ["REPRO_TUNING_CPUS"] = previous


def run_auto_tuning(budget: int = 300, seed: int = 3) -> FigureResult:
    walls: dict[str, list[float]] = {}
    totals: dict[str, float] = {}
    traces: dict[str, list] = {}
    for label, kwargs in HAND_PICKED.items():
        walls[label], traces[label], totals[label], _ = _run_workload(
            dict(kwargs), budget, seed
        )
    walls["auto"], traces["auto"], totals["auto"], report = _run_auto(
        budget, seed
    )
    reference = traces["auto"]
    for label, trace in traces.items():
        assert trace == reference, (
            f"config {label!r} changed the estimates — backend choice and "
            f"online migration are operational knobs and must be "
            f"bit-identical"
        )
    hand = {label: totals[label] for label in HAND_PICKED}
    best_label = min(hand, key=hand.get)
    worst_label = max(hand, key=hand.get)
    # Wall clocks on a shared runner are noisy; the decision sequence is
    # deterministic but the ratio gate is not.  If the first measurement
    # would fail the gate, re-measure the two configs it compares and
    # take per-config minima before judging.
    retried = False
    if totals["auto"] / hand[best_label] > TOLERANCE:
        retried = True
        best_walls, best_trace, best_total, _ = _run_workload(
            dict(HAND_PICKED[best_label]), budget, seed
        )
        auto_walls, auto_trace, auto_total, retry_report = _run_auto(
            budget, seed
        )
        assert best_trace == reference and auto_trace == reference
        if best_total < hand[best_label]:
            hand[best_label] = totals[best_label] = best_total
            walls[best_label] = best_walls
        if auto_total < totals["auto"]:
            totals["auto"] = auto_total
            walls["auto"] = auto_walls
            report = retry_report
        best_label = min(hand, key=hand.get)
    decisions = [d["action"] for d in report["decisions"]]
    return FigureResult(
        "auto_tuning",
        f"profile shift {SMALL_N}->{BIG_N} rows, hand-picked grid vs auto",
        x_label="round",
        y_label="wall seconds",
        xs=list(range(1, STEADY_ROUNDS + SHIFT_ROUNDS + 1)),
        series=walls,
        notes=(
            f"best hand-picked: {best_label} {hand[best_label]:.2f}s, "
            f"worst: {worst_label} {hand[worst_label]:.2f}s, "
            f"auto: {totals['auto']:.2f}s "
            f"(final backend {report['effective']['backend']}, "
            f"decisions {'/'.join(decisions)})"
        ),
        meta={
            "small_n": SMALL_N,
            "big_n": BIG_N,
            "budget": budget,
            "wall_totals": totals,
            "best_hand_picked": best_label,
            "worst_hand_picked": worst_label,
            "auto_vs_best": totals["auto"] / hand[best_label],
            "auto_vs_worst": totals["auto"] / hand[worst_label],
            "auto_final": report["effective"],
            "auto_decisions": decisions,
            "retried": retried,
            "estimates_identical": True,
        },
    )


def test_auto_tuning(figure_bench):
    figure = figure_bench(run_auto_tuning)
    assert figure.meta["estimates_identical"]
    # Auto observed the shift and acted on it at a round flip.
    assert "migrate" in figure.meta["auto_decisions"], figure.meta
    # Never loses more than the tolerance to the best frozen config...
    assert figure.meta["auto_vs_best"] <= TOLERANCE, figure.meta
    # ...and beats the worst frozen config outright on this shifted
    # scenario (the whole point of not having to guess up front).
    assert figure.meta["auto_vs_worst"] < 1.0, figure.meta
