"""Perf-regression gate: compare BENCH_*.json wall times to baselines.

Usage::

    python benchmarks/check_regression.py BENCH_fig12_blocked.json ...

Each ``BENCH_<label>.json`` is matched to the ``<label>`` entry of
``benchmarks/baselines.json`` and fails the run when its wall time exceeds
``baseline * REPRO_BENCH_MAX_REGRESSION`` (default 1.5).  Labels without a
baseline are reported but never fail, so new benchmarks can land before
their baseline does.

Baselines are wall times observed on the CI runner class, with headroom for
runner jitter already included.  To refresh after an intentional change::

    1. take wall_seconds from the bench-results artifact of a green run,
    2. multiply by ~1.3 for runner variance,
    3. commit the new value to benchmarks/baselines.json.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "baselines.json"

MAX_REGRESSION = float(os.environ.get("REPRO_BENCH_MAX_REGRESSION", "1.5"))


def _label_of(path: Path) -> str:
    stem = path.stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_regression.py BENCH_<label>.json [...]")
        return 2
    baselines = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    failures: list[str] = []
    print(f"perf gate: wall time must stay within {MAX_REGRESSION:.2f}x "
          f"of benchmarks/baselines.json")
    for name in argv:
        path = Path(name)
        label = _label_of(path)
        measured = json.loads(path.read_text(encoding="utf-8"))
        wall = float(measured["wall_seconds"])
        entry = baselines.get(label)
        if entry is None:
            print(f"  {label:>20}: {wall:7.2f}s (no baseline — skipped; "
                  f"add one to benchmarks/baselines.json)")
            continue
        baseline = float(entry["wall_seconds"])
        ratio = wall / baseline if baseline > 0 else float("inf")
        verdict = "ok" if ratio <= MAX_REGRESSION else "REGRESSION"
        print(f"  {label:>20}: {wall:7.2f}s vs baseline {baseline:.2f}s "
              f"(x{ratio:.2f}) {verdict}")
        if ratio > MAX_REGRESSION:
            failures.append(label)
    if failures:
        print()
        print(f"FAILED: {', '.join(failures)} regressed more than "
              f"{MAX_REGRESSION:.2f}x.")
        print("If the slowdown is intentional (bigger workload, extra "
              "coverage), refresh the baseline:")
        print("  1. take wall_seconds from this run's bench-results "
              "artifact,")
        print("  2. multiply by ~1.3 for runner variance,")
        print("  3. commit the new value to benchmarks/baselines.json.")
        return 1
    print("perf gate passed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
