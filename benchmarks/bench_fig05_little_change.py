"""Figure 5: little change (+1 tuple/round).  REISSUE's error tapers off
at its frozen-signature floor; RS keeps improving and both beat RESTART."""

from conftest import BENCH_SCALE, BENCH_TRIALS

from repro.experiments.figures import run_fig05


def test_fig05(figure_bench, tail):
    figure = figure_bench(
        run_fig05, scale=BENCH_SCALE, trials=max(BENCH_TRIALS, 3),
        rounds=40, budget=500,
    )
    restart = tail(figure, "RESTART", tail=10)
    reissue = tail(figure, "REISSUE", tail=10)
    rs = tail(figure, "RS", tail=10)
    # REISSUE's tail is dominated by its frozen signature set, whose luck
    # varies trial to trial; assert a loose ordering only.
    assert reissue < restart * 1.75
    assert rs < restart * 1.1
    # The figure's punchline: REISSUE tapers off at its frozen-set floor
    # while RS keeps accumulating fresh drill-downs and ends below it.
    assert rs < reissue
