"""Ablation C: RS bootstrap budget.  All settings must track; the default
should not be dominated by either extreme."""

from conftest import BENCH_SCALE, BENCH_TRIALS

from repro.experiments.figures import run_ablation_bootstrap


def test_ablation_bootstrap(figure_bench, tail):
    figure = figure_bench(
        run_ablation_bootstrap, scale=BENCH_SCALE,
        trials=max(BENCH_TRIALS, 3), rounds=20, budget=500,
        pilot_counts=(4, 10, 25),
    )
    errors = {name: tail(figure, name, tail=8) for name in figure.series}
    assert all(error < 0.5 for error in errors.values())
    # The default (w=10) is within 3x of the best setting (at this scale
    # bigger pilot counts pay off, because each group's variance floor
    # shrinks with verified deltas; w=10 stays a sane middle ground).
    assert errors["RS(w=10)"] < min(errors.values()) * 3.0
