"""Figure 12 at one size, driven *purely* through the ``repro.api`` facade.

The other figure benchmarks reach the engine through ``Experiment``; this
one builds an :class:`~repro.api.Engine` directly — config object, task
submission, churn via ``apply_updates`` — so the perf gate times the
public facade path end to end and a facade-layer regression cannot hide
behind the harness.
"""

import random

from repro.api import Engine, EngineConfig, EstimationTask
from repro.core.aggregates import count_all
from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.experiments.figures.common import FigureResult
from repro.experiments.ground_truth import GroundTruthTracker
from repro.experiments.metrics import relative_error

ALGORITHMS = ("RESTART", "REISSUE", "RS")


def run_engine_fig12(
    n: int = 100_000,
    rounds: int = 8,
    budget: int = 500,
    k: int = 100,
    seed: int = 0,
) -> FigureResult:
    """fig12's m=50 workload at one size, one engine, three tenants."""
    domain_sizes = [2 + (i % 7) for i in range(50)]
    source = skewed_source(domain_sizes, exponent=0.4, seed=seed)
    engine = Engine(
        EngineConfig(k=k, budget_per_round=budget, seed=seed),
        schema=source.schema,
    )
    engine.load(source.batch_columns(n))
    schedule = FreshTupleSchedule(
        source,
        inserts_per_round=max(1, n // 500),
        delete_fraction=0.001,
    )
    specs = [count_all()]
    tracker = GroundTruthTracker(engine.db, specs)
    for index, algorithm in enumerate(ALGORITHMS):
        engine.submit(EstimationTask(
            algorithm, specs, algorithm, seed=seed + 17 + index,
        ))
    rng = random.Random(seed + 5)
    errors: dict[str, list[float]] = {name: [] for name in ALGORITHMS}
    for position in range(rounds):
        if position:
            engine.apply_updates(lambda db: apply_round(db, schedule, rng))
            engine.advance_round()
        truth = tracker.record_round(engine.current_round)["count"]
        for name, report in engine.run_round().items():
            errors[name].append(
                relative_error(report.estimates["count"], truth)
            )
    return FigureResult(
        "engine_fig12",
        f"fig12 n={n} via repro.api.Engine",
        x_label="round",
        y_label="relative error",
        xs=list(range(1, rounds + 1)),
        series=errors,
        meta={"budget_ledger": engine.budget_ledger()},
    )


def test_engine_fig12(figure_bench):
    figure = figure_bench(run_engine_fig12)
    ledger = figure.meta["budget_ledger"]
    for name in ALGORITHMS:
        # Budget accounting: every tenant spent within its per-round cap.
        assert ledger[name]["queries_total"] <= 500 * 8
        # Sanity on accuracy: tracked COUNT stays in the right ballpark.
        tail = figure.series[name][-3:]
        assert all(error < 1.0 for error in tail), (name, tail)
