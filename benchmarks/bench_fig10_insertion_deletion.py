"""Figure 10: sweep of per-round net insertions on a 5,000-tuple database.

RS beats RESTART across the whole churn range; REISSUE's weak spot is the
deletion-heavy side (Theorem 3.2's worst case).
"""

from repro.experiments.figures import run_fig10


def test_fig10(figure_bench):
    figure = figure_bench(
        run_fig10, trials=2, rounds=40, budget=100,
        net_inserts=(-30, 0, 30), k=50,
    )
    for position in range(len(figure.xs)):
        assert figure.series["RS"][position] < (
            figure.series["RESTART"][position] * 1.2
        ), f"RS must stay at/below RESTART at net={figure.xs[position]}"
