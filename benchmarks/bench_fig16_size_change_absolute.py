"""Figure 16: raw size-change estimates vs exact change under small churn.
REISSUE/RS hug the truth; RESTART swings wildly around it."""

from conftest import BENCH_SCALE, BENCH_TRIALS

from repro.experiments.figures import run_fig16


def test_fig16(figure_bench):
    figure = figure_bench(
        run_fig16, scale=BENCH_SCALE, trials=max(BENCH_TRIALS, 3),
        rounds=15, budget=500,
    )
    truth = figure.series["TRUTH"][1:]

    def mean_abs_deviation(name):
        values = figure.series[name][1:]
        return sum(abs(v - t) for v, t in zip(values, truth)) / len(truth)

    assert mean_abs_deviation("REISSUE") < mean_abs_deviation("RESTART") / 2
    assert mean_abs_deviation("RS") < mean_abs_deviation("RESTART") / 2
