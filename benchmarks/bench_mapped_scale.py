"""Mapped-store scale benchmark: fig12 shape at n >= 2M, plus durability.

Runs the seeded multi-tenant estimation workload (bulk load, heavy round
churn, three estimator tenants — the fig12 shape, scaled up) on the
``mapped`` backend with a durable store directory, takes an atomic
snapshot mid-run, and then proves the durability contract at scale: an
engine restored from that snapshot re-runs the remaining rounds
*bit-identically* to the uninterrupted pass.

The schema is narrow (m=12), so prefix keys pack into the backend's
memory-mapped int64 runs and the columnar query plane reads zero-copy
memmap slices throughout.

Environment knobs::

    REPRO_BENCH_MAPPED_N       tuples to load (default 2_000_000)
    REPRO_BENCH_MAPPED_ROUNDS  churn/estimation rounds (default 5)
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import time

from repro.api import Engine, EngineConfig, EstimationTask
from repro.core.aggregates import count_all
from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.experiments.figures.common import FigureResult

ALGORITHMS = ("RESTART", "REISSUE", "RS")

MAPPED_N = int(os.environ.get("REPRO_BENCH_MAPPED_N", "2000000"))
MAPPED_ROUNDS = int(os.environ.get("REPRO_BENCH_MAPPED_ROUNDS", "5"))


def _submit_tenants(engine: Engine, seed: int) -> None:
    for index, algorithm in enumerate(ALGORITHMS):
        engine.submit(EstimationTask(
            algorithm, [count_all()], algorithm, seed=seed + 17 + index,
        ))


def _churn_rounds(engine, schedule, rng, rounds, *, advance_first):
    """Run churn+estimation rounds; returns (walls, estimate trace)."""
    walls: list[float] = []
    trace: list[dict] = []
    for position in range(rounds):
        started = time.perf_counter()
        if position or advance_first:
            engine.apply_updates(lambda db: apply_round(db, schedule, rng))
            engine.advance_round()
        reports = engine.run_round()
        walls.append(time.perf_counter() - started)
        trace.append({
            name: (report.estimates, report.queries_used)
            for name, report in sorted(reports.items())
        })
    return walls, trace


def run_mapped_scale(
    n: int = MAPPED_N,
    rounds: int = MAPPED_ROUNDS,
    budget: int = 300,
    seed: int = 0,
) -> FigureResult:
    snapshot_round = max(1, rounds // 2)
    # Sizes 4..8 over 12 attributes: ~9e8 leaf vectors, so 2M *distinct*
    # rows rejection-sample cleanly, while prefix keys still pack into the
    # backend's narrow int64 memmap runs.
    domain_sizes = [4 + (i % 5) for i in range(12)]
    source = skewed_source(domain_sizes, exponent=0.4, seed=seed)
    store_dir = tempfile.mkdtemp(prefix="bench-mapped-")
    try:
        engine = Engine(
            EngineConfig(
                backend="mapped",
                k=100,
                budget_per_round=budget,
                seed=seed,
                store_dir=store_dir,
            ),
            schema=source.schema,
        )
        load_started = time.perf_counter()
        engine.load(source.batch_columns(n))
        load_seconds = time.perf_counter() - load_started
        schedule = FreshTupleSchedule(
            source,
            inserts_per_round=max(1, n // 50),
            delete_fraction=0.01,
        )
        _submit_tenants(engine, seed)
        rng = random.Random(seed + 5)
        walls, trace = _churn_rounds(
            engine, schedule, rng, snapshot_round, advance_first=False,
        )
        # The recovery point: snapshot, keep churning the live engine to
        # the end, remembering the churn-RNG position at the cut.
        rng_state = rng.getstate()
        snapshot_started = time.perf_counter()
        engine.save()
        snapshot_seconds = time.perf_counter() - snapshot_started
        tail_walls, tail_trace = _churn_rounds(
            engine, schedule, rng, rounds - snapshot_round,
            advance_first=True,
        )
        walls += tail_walls
        # Kill-and-restore: a fresh engine from the snapshot replays the
        # same churn stream and must reproduce the tail bit-identically.
        restore_started = time.perf_counter()
        restored = Engine.load(store_dir)
        restore_seconds = time.perf_counter() - restore_started
        replay_rng = random.Random()
        replay_rng.setstate(rng_state)
        _, restored_trace = _churn_rounds(
            restored, schedule, replay_rng, rounds - snapshot_round,
            advance_first=True,
        )
        assert restored_trace == tail_trace, (
            "restored engine diverged from the uninterrupted run"
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    return FigureResult(
        "mapped_scale",
        f"fig12-shaped workload, n={n}, mapped store + kill/restore",
        x_label="round",
        y_label="wall seconds",
        xs=list(range(1, rounds + 1)),
        series={"mapped": walls},
        notes=(
            f"load {load_seconds:.2f}s, snapshot {snapshot_seconds:.2f}s, "
            f"restore {restore_seconds:.2f}s; restored tail bit-identical"
        ),
        meta={
            "n": n,
            "backend": "mapped",  # pinned via EngineConfig
            "snapshot_round": snapshot_round,
            "load_seconds": load_seconds,
            "snapshot_seconds": snapshot_seconds,
            "restore_seconds": restore_seconds,
            "resumed_identical": True,
        },
    )


def test_mapped_scale(figure_bench):
    figure = figure_bench(run_mapped_scale)
    # The durability assert already ran inside the builder; the perf gate
    # (tools in CI) bounds the recorded wall_seconds against baselines.
    assert figure.meta["resumed_identical"]
    assert figure.meta["n"] >= 2_000_000 or "REPRO_BENCH_MAPPED_N" in os.environ
