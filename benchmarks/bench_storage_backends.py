"""Head-to-head storage-backend benchmark (not a paper figure).

Runs the exact operation mix the estimators put on a prefix index — one
bulk load, rounds of insert/delete churn, then a rank/range-heavy query
phase — against every registered backend and asserts the packed-array
engine beats the blocked sorted list end to end.  Results land in
``BENCH_storage_backends.json`` for cross-commit tracking.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

from repro.hiddendb.backends import available_backends, make_backend

KEY_BOUND = 10**15
LOAD_KEYS = 200_000
CHURN_ROUNDS = 20
CHURN_ADDS = 600
CHURN_REMOVES = 300
QUERY_PASSES = 200
QUERY_NODES = 1000


def _drive(backend_name: str) -> dict:
    rng = random.Random(42)
    keys = [rng.randrange(KEY_BOUND) for _ in range(LOAD_KEYS)]

    started = time.perf_counter()
    backend = make_backend(backend_name, key_bound=KEY_BOUND)
    backend.bulk_add(keys)
    load_seconds = time.perf_counter() - started

    live = list(keys)
    started = time.perf_counter()
    for _ in range(CHURN_ROUNDS):
        batch = [rng.randrange(KEY_BOUND) for _ in range(CHURN_ADDS)]
        backend.bulk_add(batch)
        live.extend(batch)
        victims = [
            live.pop(rng.randrange(len(live))) for _ in range(CHURN_REMOVES)
        ]
        backend.bulk_remove(victims)
    churn_seconds = time.perf_counter() - started

    # The estimators' workload: repeated rank probes on node boundaries.
    span = KEY_BOUND // QUERY_NODES
    bounds = [(i * span, (i + 1) * span) for i in range(QUERY_NODES)]
    started = time.perf_counter()
    checksum = 0
    for _ in range(QUERY_PASSES):
        for lo, hi in bounds:
            checksum += backend.count_range(lo, hi)
    query_seconds = time.perf_counter() - started

    backend.check_invariants()
    return {
        "load_seconds": round(load_seconds, 4),
        "churn_seconds": round(churn_seconds, 4),
        "query_seconds": round(query_seconds, 4),
        "total_seconds": round(load_seconds + churn_seconds + query_seconds, 4),
        "checksum": checksum,
        "final_size": len(backend),
    }


def test_backend_throughput():
    results = {name: _drive(name) for name in available_backends()}

    payload = {
        "name": "storage_backends",
        "workload": {
            "load_keys": LOAD_KEYS,
            "churn_rounds": CHURN_ROUNDS,
            "churn_adds": CHURN_ADDS,
            "churn_removes": CHURN_REMOVES,
            "query_probes": QUERY_PASSES * QUERY_NODES,
        },
        "backends": results,
    }
    path = Path.cwd() / "BENCH_storage_backends.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for name, stats in sorted(results.items()):
        print(
            f"{name:>8}: load={stats['load_seconds']}s "
            f"churn={stats['churn_seconds']}s "
            f"query={stats['query_seconds']}s "
            f"total={stats['total_seconds']}s"
        )

    # Every backend must agree on every count — this is a parity check too.
    checksums = {stats["checksum"] for stats in results.values()}
    assert len(checksums) == 1, f"backends disagree on counts: {results}"
    sizes = {stats["final_size"] for stats in results.values()}
    assert len(sizes) == 1

    # The reason the packed engine exists: it must win the rank-heavy query
    # phase decisively (the observed gap is ~50x; the 2x bar only absorbs
    # scheduler noise on loaded CI runners) and must not lose overall.
    assert (
        results["packed"]["query_seconds"] * 2
        < results["blocked"]["query_seconds"]
    ), f"packed backend lost its query advantage: {results}"
    assert (
        results["packed"]["total_seconds"]
        < results["blocked"]["total_seconds"] * 1.5
    ), f"packed backend materially slower overall: {results}"
