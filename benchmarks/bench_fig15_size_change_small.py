"""Figure 15: tracking |Di|-|Di-1| under small churn.  RESTART differences
two independent noisy estimates and is orders of magnitude worse."""

from conftest import BENCH_SCALE, BENCH_TRIALS

from repro.experiments.figures import run_fig15


def test_fig15(figure_bench, tail):
    figure = figure_bench(
        run_fig15, scale=BENCH_SCALE, trials=max(BENCH_TRIALS, 3),
        rounds=15, budget=500,
    )
    restart = tail(figure, "RESTART", tail=8)
    reissue = tail(figure, "REISSUE", tail=8)
    rs = tail(figure, "RS", tail=8)
    assert reissue < restart / 3, "expected an order-of-magnitude gap"
    assert rs < restart / 3
