"""Shared fixtures: small, fully-inspectable hidden databases.

Also implements the ``slow`` marker policy: many-trial statistical tests
are skipped in the default (tier-1) run and selected explicitly with
``pytest -m slow`` or ``REPRO_RUN_SLOW=1`` (the CI coverage job sets the
latter so coverage includes them).
"""

from __future__ import annotations

import os
import random

import pytest

from repro import Attribute, HiddenDatabase, Schema, TopKInterface
from repro.hiddendb.session import QuerySession


def pytest_collection_modifyitems(config, items):
    run_slow = os.environ.get("REPRO_RUN_SLOW", "").lower() not in (
        "", "0", "false", "no",
    )
    if config.option.markexpr or run_slow:
        return  # an explicit -m expression (or the env knob) decides
    skip_slow = pytest.mark.skip(
        reason="slow statistical test; run with -m slow or REPRO_RUN_SLOW=1"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def small_schema() -> Schema:
    """3 categorical attributes (2*3*4 = 24 leaves) + one measure."""
    return Schema(
        [
            Attribute("color", ("red", "blue")),
            Attribute("size", ("s", "m", "l")),
            Attribute("kind", ("a", "b", "c", "d")),
        ],
        measures=("price",),
    )


def fill_random(
    db: HiddenDatabase, count: int, seed: int = 0, price_range=(1.0, 100.0)
) -> None:
    """Insert ``count`` random tuples (duplicates on values allowed)."""
    rng = random.Random(seed)
    sizes = db.schema.domain_sizes
    for _ in range(count):
        values = bytes(rng.randrange(s) for s in sizes)
        price = round(rng.uniform(*price_range), 2)
        db.insert(values, (price,))


@pytest.fixture
def small_db(small_schema) -> HiddenDatabase:
    db = HiddenDatabase(small_schema)
    fill_random(db, 60, seed=1)
    return db


@pytest.fixture
def small_interface(small_db) -> TopKInterface:
    return TopKInterface(small_db, k=5)


@pytest.fixture
def open_session(small_interface) -> QuerySession:
    """A session with no budget limit."""
    return QuerySession(small_interface, budget=None)
