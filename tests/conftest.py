"""Shared fixtures: small, fully-inspectable hidden databases."""

from __future__ import annotations

import random

import pytest

from repro import Attribute, HiddenDatabase, Schema, TopKInterface
from repro.hiddendb.session import QuerySession


@pytest.fixture
def small_schema() -> Schema:
    """3 categorical attributes (2*3*4 = 24 leaves) + one measure."""
    return Schema(
        [
            Attribute("color", ("red", "blue")),
            Attribute("size", ("s", "m", "l")),
            Attribute("kind", ("a", "b", "c", "d")),
        ],
        measures=("price",),
    )


def fill_random(
    db: HiddenDatabase, count: int, seed: int = 0, price_range=(1.0, 100.0)
) -> None:
    """Insert ``count`` random tuples (duplicates on values allowed)."""
    rng = random.Random(seed)
    sizes = db.schema.domain_sizes
    for _ in range(count):
        values = bytes(rng.randrange(s) for s in sizes)
        price = round(rng.uniform(*price_range), 2)
        db.insert(values, (price,))


@pytest.fixture
def small_db(small_schema) -> HiddenDatabase:
    db = HiddenDatabase(small_schema)
    fill_random(db, 60, seed=1)
    return db


@pytest.fixture
def small_interface(small_db) -> TopKInterface:
    return TopKInterface(small_db, k=5)


@pytest.fixture
def open_session(small_interface) -> QuerySession:
    """A session with no budget limit."""
    return QuerySession(small_interface, budget=None)
