"""Engine facade behaviour: multi-tenant sessions, budgets, serialization.

The headline property: N named tasks sharing one dynamic store across
churn rounds each see exactly the estimates they would have produced as
the *only* tenant of an identical environment — per-task budget and RNG
isolation is total, while the store is shared.
"""

import json
import math
import random
import threading

import pytest

from repro import HiddenDatabase, count_all, count_where, sum_measure
from repro.api import (
    GAP_TASK,
    Engine,
    EngineConfig,
    EstimationTask,
    ReportGap,
    available_estimators,
    register_estimator,
    resolve_estimator,
)
from repro.core.estimators import ESTIMATOR_CLASSES, RsEstimator
from repro.core.estimators.base import RoundReport
from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.errors import EstimationError, ExperimentError
from repro.experiments.metrics import ExperimentResult


def _build_env(backend=None, seed=3):
    source = skewed_source(
        [8, 10, 12, 6, 4],
        exponent=0.4,
        measures=("price",),
        measure_sampler=lambda rng: (rng.uniform(1.0, 100.0),),
        seed=seed,
    )
    db = HiddenDatabase(source.schema, backend=backend)
    db.insert_many(source.batch_columns(1200))
    schedule = FreshTupleSchedule(
        source, inserts_per_round=30, delete_fraction=0.01
    )
    return db, schedule


def _same_estimates(a, b):
    assert set(a) == set(b)
    for name in a:
        if math.isnan(a[name]) and math.isnan(b[name]):
            continue
        assert a[name] == b[name]


CONFIG = EngineConfig(k=12, budget_per_round=150)

#: (name, estimator, budget, seed) of the multi-tenant scenario.  Budgets
#: differ per task so isolation failures shift query counts visibly.
TENANTS = (
    ("alpha", "RS", 40, 101),
    ("beta", "REISSUE", 60, 202),
    ("gamma", "RESTART", 25, 303),
    ("delta", "RS", 75, 404),
)


def _drive(engine, schedule, rounds):
    """Run ``rounds`` rounds with boundary churn; returns reports/round."""
    rng = random.Random(5)
    per_round = []
    for position in range(rounds):
        if position:
            engine.apply_updates(lambda db: apply_round(db, schedule, rng))
            engine.advance_round()
        per_round.append(engine.run_round())
    return per_round


class TestMultiTenantIsolation:
    def test_shared_store_tasks_match_solo_runs(self):
        rounds = 3
        # Multi-tenant: all four tasks over ONE shared store.
        db, schedule = _build_env()
        engine = Engine(CONFIG, db=db)
        for name, estimator, budget, seed in TENANTS:
            engine.submit(EstimationTask(
                name, [count_all(), sum_measure(db.schema, "price")],
                estimator, budget=budget, seed=seed,
            ))
        shared = _drive(engine, schedule, rounds)

        # Solo oracles: each task alone over an identical fresh environment.
        for name, estimator, budget, seed in TENANTS:
            db, schedule = _build_env()
            solo_engine = Engine(CONFIG, db=db)
            solo_engine.submit(EstimationTask(
                name, [count_all(), sum_measure(db.schema, "price")],
                estimator, budget=budget, seed=seed,
            ))
            solo = _drive(solo_engine, schedule, rounds)
            for position in range(rounds):
                _same_estimates(
                    shared[position][name].estimates,
                    solo[position][name].estimates,
                )

    def test_per_task_budget_accounting(self):
        db, schedule = _build_env()
        engine = Engine(CONFIG, db=db)
        for name, estimator, budget, seed in TENANTS:
            engine.submit(EstimationTask(
                name, [count_all()], estimator, budget=budget, seed=seed,
            ))
        rounds = 3
        per_round = _drive(engine, schedule, rounds)
        for name, _, budget, _ in TENANTS:
            for reports in per_round:
                assert 0 < reports[name].queries_used <= budget
        ledger = engine.budget_ledger()
        for name, _, budget, _ in TENANTS:
            entry = ledger[name]
            assert entry["budget_per_round"] == budget
            assert entry["rounds"] == rounds
            assert entry["queries_total"] == sum(
                reports[name].queries_used for reports in per_round
            )
            assert entry["queries_last_round"] == (
                per_round[-1][name].queries_used
            )

    def test_budget_share_resolves_against_engine_budget(self):
        db, _ = _build_env()
        engine = Engine(EngineConfig(k=10, budget_per_round=200), db=db)
        handle = engine.submit(EstimationTask(
            "half", [count_all()], "RS", budget_share=0.5,
        ))
        assert handle.budget_per_round == 100
        full = engine.submit(EstimationTask("full", [count_all()], "RS"))
        assert full.budget_per_round == 200

    def test_per_task_interfaces_isolate_query_counters(self):
        db, _ = _build_env()
        engine = Engine(CONFIG, db=db)
        a = engine.submit(EstimationTask(
            "a", [count_all()], "RS", budget=30,
        ))
        b = engine.submit(EstimationTask(
            "b", [count_all()], "RS", budget=70,
        ))
        engine.run_round()
        assert a.interface.stats.queries == 30
        assert b.interface.stats.queries == 70


class TestLifecycle:
    def test_duplicate_names_rejected(self):
        db, _ = _build_env()
        engine = Engine(CONFIG, db=db)
        engine.submit(EstimationTask("tenant", [count_all()], "RS"))
        with pytest.raises(ExperimentError):
            engine.submit(EstimationTask("tenant", [count_all()], "RS"))

    def test_cancel_removes_task_but_keeps_history(self):
        db, _ = _build_env()
        engine = Engine(CONFIG, db=db)
        engine.submit(EstimationTask("tenant", [count_all()], "RS"))
        engine.run_round()
        handle = engine.cancel("tenant")
        assert engine.tasks() == ()
        assert len(handle.reports) == 1
        assert engine.run_round() == {}
        with pytest.raises(ExperimentError):
            engine["tenant"]

    def test_contains_and_indexing(self):
        db, _ = _build_env()
        engine = Engine(CONFIG, db=db)
        handle = engine.submit(EstimationTask("tenant", [count_all()], "RS"))
        assert "tenant" in engine
        assert "ghost" not in engine
        assert engine["tenant"] is handle

    def test_legacy_estimator_factory_build_still_works(self):
        from repro import TopKInterface
        from repro.experiments import EstimatorFactory

        db, _ = _build_env()
        factory = EstimatorFactory("RS", "RS")
        estimator = factory.build(
            TopKInterface(db, 10), [count_all()], budget=20, seed=3
        )
        report = estimator.run_round()
        assert report.queries_used <= 20

    def test_run_round_subset(self):
        db, _ = _build_env()
        engine = Engine(CONFIG, db=db)
        engine.submit(EstimationTask("a", [count_all()], "RS", budget=20))
        engine.submit(EstimationTask("b", [count_all()], "RS", budget=20))
        reports = engine.run_round(tasks=["b"])
        assert list(reports) == ["b"]
        assert engine["a"].latest is None

    def test_stream_reports_in_execution_order(self):
        db, schedule = _build_env()
        engine = Engine(CONFIG, db=db)
        engine.submit(EstimationTask("a", [count_all()], "RS", budget=20))
        engine.submit(EstimationTask("b", [count_all()], "RS", budget=20))
        _drive(engine, schedule, 2)
        names = [name for name, _ in engine.stream_reports()]
        assert names == ["a", "b", "a", "b"]
        only_b = list(engine.stream_reports(task="b"))
        assert [name for name, _ in only_b] == ["b", "b"]
        assert all(isinstance(r, RoundReport) for _, r in only_b)

    def test_report_log_limit_bounds_memory(self):
        db, _ = _build_env()
        engine = Engine(
            EngineConfig(k=12, budget_per_round=60, report_log_limit=3),
            db=db,
        )
        engine.submit(EstimationTask("a", [count_all()], "RS", budget=10))
        engine.submit(EstimationTask("b", [count_all()], "RS", budget=10))
        for _ in range(4):
            engine.run_round()
        # 8 reports produced, only the newest 3 retained in the log; the
        # stream surfaces the eviction as a leading truncation marker
        # rather than silently replaying the gapped log as contiguous.
        assert len(engine._log) == 3
        streamed = list(engine.stream_reports())
        assert [name for name, _ in streamed] == [GAP_TASK, "b", "a", "b"]
        assert streamed[0][1] == ReportGap(dropped=5)
        # ... per-task histories are bounded too, newest first to go last,
        # while the lifetime accounting stays exact in O(1) counters.
        for name in ("a", "b"):
            handle = engine[name]
            assert len(handle.reports) == 3
            assert handle.rounds_run == 4
            assert engine.budget_ledger()[name]["rounds"] == 4
            assert handle.latest is handle.reports[-1]
        with pytest.raises(ExperimentError):
            EngineConfig(report_log_limit=0)

    def test_stream_reports_marks_mid_iteration_eviction(self):
        # A slow consumer racing a fast producer: entries evicted *while*
        # the stream is suspended surface as an in-stream gap marker at
        # the point of truncation, and the filtered stream carries the
        # marker too (the filter cannot know what the dropped entries
        # were).
        db, _ = _build_env()
        engine = Engine(
            EngineConfig(k=12, budget_per_round=60, report_log_limit=2),
            db=db,
        )
        engine.submit(EstimationTask("a", [count_all()], "RS", budget=10))
        engine.run_round()
        stream = engine.stream_reports()
        name, _report = next(stream)
        assert name == "a"
        for _ in range(3):
            engine.run_round()
        rest = list(stream)
        assert [name for name, _ in rest] == [GAP_TASK, "a", "a"]
        assert rest[0][1] == ReportGap(dropped=1)
        filtered = list(engine.stream_reports(task="no-such-task"))
        assert filtered == [(GAP_TASK, ReportGap(dropped=2))]

    def test_engine_builds_its_own_database(self):
        source = skewed_source([12, 12, 12], exponent=0.3, seed=1)
        engine = Engine(
            EngineConfig(backend="packed", k=5), schema=source.schema
        )
        assert engine.backend == "packed"
        assert engine.load(source.batch_columns(200)) == 200
        assert len(engine.db) == 200

    def test_engine_requires_db_or_schema(self):
        with pytest.raises(ExperimentError):
            Engine(CONFIG)
        db, _ = _build_env()
        with pytest.raises(ExperimentError):
            Engine(CONFIG, db=db, schema=db.schema)

    def test_seed_policy_per_task_is_submission_order_independent(self):
        config = EngineConfig(k=5, seed=9)
        db, _ = _build_env()
        forward = Engine(config, db=db)
        a1 = forward.submit(EstimationTask("a", [count_all()], "RS"))
        b1 = forward.submit(EstimationTask("b", [count_all()], "RS"))
        backward = Engine(config, db=db)
        b2 = backward.submit(EstimationTask("b", [count_all()], "RS"))
        a2 = backward.submit(EstimationTask("a", [count_all()], "RS"))
        assert a1.estimator.rng.getstate() == a2.estimator.rng.getstate()
        assert b1.estimator.rng.getstate() == b2.estimator.rng.getstate()
        assert a1.estimator.rng.getstate() != b1.estimator.rng.getstate()
        shared = EngineConfig(k=5, seed=9, seed_policy="shared")
        engine = Engine(shared, db=db)
        a3 = engine.submit(EstimationTask("a", [count_all()], "RS"))
        b3 = engine.submit(EstimationTask("b", [count_all()], "RS"))
        assert a3.estimator.rng.getstate() == b3.estimator.rng.getstate()


class TestThreadSafety:
    def test_concurrent_submissions_all_registered(self):
        db, _ = _build_env()
        engine = Engine(CONFIG, db=db)
        errors = []

        def submit(index):
            try:
                engine.submit(EstimationTask(
                    f"tenant-{index}", [count_all()], "RS", budget=5,
                ))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert sorted(engine.tasks()) == sorted(
            f"tenant-{i}" for i in range(8)
        )

    def test_concurrent_engines_with_pinned_planes_do_not_leak(self):
        """Two engines pinning different planes, run from two threads:
        neither corrupts the other's scope nor leaks an explicit
        process-global setting after both finish."""
        from repro.hiddendb import store

        previous_explicit = store._data_plane
        store._data_plane = None
        try:
            engines = []
            for plane in ("scalar", "vectorized"):
                db, _ = _build_env()
                engine = Engine(
                    EngineConfig(k=12, budget_per_round=60, data_plane=plane),
                    db=db,
                )
                engine.submit(EstimationTask(
                    "tenant", [count_all()], "RS", budget=30, seed=1,
                ))
                engines.append(engine)
            results = {}

            def run(engine, plane):
                for _ in range(3):
                    results.setdefault(plane, []).append(
                        engine.run_round(tasks=["tenant"])["tenant"].estimates
                    )

            threads = [
                threading.Thread(target=run, args=(engine, plane))
                for engine, plane in zip(engines, ("scalar", "vectorized"))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # No explicit plane leaked past both scopes.
            assert store._data_plane is None
            # Both planes are bit-identical estimators of the same content,
            # so the two engines (identical envs/seeds) must agree.
            for a, b in zip(results["scalar"], results["vectorized"]):
                _same_estimates(a, b)
        finally:
            store._data_plane = previous_explicit

    def test_unpinned_engine_never_observes_a_pinned_plane(self):
        """While a pinned engine is mid-operation, an unpinned engine on
        another thread proceeds *concurrently* and still sees the ambient
        default — the pin is a context-local override, invisible outside
        its engine, and touches no process-global state."""
        from repro.hiddendb import store
        from repro.hiddendb.store import get_data_plane

        previous_explicit = store._data_plane
        store._data_plane = None
        try:
            db1, _ = _build_env()
            db2, _ = _build_env()
            pinned = Engine(EngineConfig(k=5, data_plane="scalar"), db=db1)
            ambient = Engine(EngineConfig(k=5), db=db2)
            inside_pin = threading.Event()
            release_pin = threading.Event()
            seen = {}

            def slow_mutation(db):
                seen["pinned"] = get_data_plane()
                inside_pin.set()
                release_pin.wait(5)

            pin_thread = threading.Thread(
                target=lambda: pinned.apply_updates(slow_mutation)
            )
            pin_thread.start()
            assert inside_pin.wait(5)
            observed = []
            ambient_thread = threading.Thread(
                target=lambda: ambient.apply_updates(
                    lambda db: observed.append(get_data_plane())
                )
            )
            # The ambient engine completes WHILE the pin is still active:
            # true concurrency, yet the pin stays invisible to it.
            ambient_thread.start()
            ambient_thread.join(5)
            assert not ambient_thread.is_alive()
            assert observed == ["vectorized"]
            release_pin.set()
            pin_thread.join(5)
            assert seen["pinned"] == "scalar"
            assert store._data_plane is None
        finally:
            store._data_plane = previous_explicit

    def test_ranking_with_existing_db_rejected(self):
        from repro.hiddendb.ranking import RandomScore

        db, _ = _build_env()
        with pytest.raises(ExperimentError):
            Engine(CONFIG, db=db, ranking=RandomScore())

    def test_concurrent_round_runs_are_serialized(self):
        db, _ = _build_env()
        engine = Engine(CONFIG, db=db)
        for i in range(4):
            engine.submit(EstimationTask(
                f"tenant-{i}", [count_all()], "RS", budget=10,
            ))
        results = []

        def run():
            results.append(engine.run_round())

        threads = [threading.Thread(target=run) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Three full rounds ran, 4 tasks each, no torn bookkeeping.
        assert len(results) == 3
        for name in engine.tasks():
            assert len(engine[name].reports) == 3
        assert len(list(engine.stream_reports())) == 12


class TestRegistry:
    def test_builtins_registered(self):
        assert {"RESTART", "REISSUE", "RS"} <= set(available_estimators())

    def test_estimator_classes_alias_sees_registrations(self):
        token = "X-TEST-ALIAS"
        assert token not in ESTIMATOR_CLASSES
        register_estimator(token, RsEstimator)
        try:
            assert ESTIMATOR_CLASSES[token] is RsEstimator
            assert resolve_estimator(token) is RsEstimator
        finally:
            del ESTIMATOR_CLASSES[token]

    def test_resolve_unknown_name_raises(self):
        with pytest.raises(EstimationError):
            resolve_estimator("NOPE")
        with pytest.raises(EstimationError):
            resolve_estimator(42)

    def test_extension_estimator_runs_through_engine(self):
        import repro.extensions  # noqa: F401 - registers COUNT-ASSISTED

        db, _ = _build_env()
        engine = Engine(CONFIG, db=db)
        engine.submit(EstimationTask(
            "counted", [count_all()], "COUNT-ASSISTED", budget=10,
        ))
        report = engine.run_round()["counted"]
        # The revealed root count answers COUNT(*) exactly in one query.
        assert report.estimates["count"] == len(db)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            EngineConfig(k=0)
        with pytest.raises(ExperimentError):
            EngineConfig(budget_per_round=0)
        with pytest.raises(ExperimentError):
            EngineConfig(seed_policy="mystery")
        with pytest.raises(ExperimentError):
            EngineConfig(data_plane="quantum")
        with pytest.raises(ExperimentError):
            EngineConfig(backend="no-such-backend")

    def test_round_trip_and_json(self):
        config = EngineConfig(
            backend="packed", data_plane="scalar", k=7,
            budget_per_round=42, seed=3, seed_policy="shared",
        )
        payload = json.loads(json.dumps(config.to_dict(), allow_nan=False))
        assert EngineConfig.from_dict(payload) == config

    def test_from_dict_is_forward_tolerant(self):
        # Wire versioning policy: unknown keys (fields from a newer
        # producer) are ignored, a missing schema_version reads as v0,
        # and known fields still validate.
        config = EngineConfig.from_dict(
            {"k": 3, "warp_factor": 9, "schema_version": 99}
        )
        assert config.k == 3
        with pytest.raises(ExperimentError):
            EngineConfig.from_dict({"k": 0, "warp_factor": 9})

    def test_replace_revalidates(self):
        config = EngineConfig(k=7)
        assert config.replace(k=9).k == 9
        assert config.replace(k=9) != config
        with pytest.raises(ExperimentError):
            config.replace(k=0)

    def test_resolution_defers_to_process_defaults(self):
        from repro.hiddendb.backends import using_backend
        from repro.hiddendb.store import using_data_plane

        config = EngineConfig()
        with using_backend("packed"), using_data_plane("scalar"):
            assert config.resolved_backend() == "packed"
            assert config.resolved_data_plane() == "scalar"
        pinned = EngineConfig(backend="blocked", data_plane="vectorized")
        with using_backend("packed"), using_data_plane("scalar"):
            assert pinned.resolved_backend() == "blocked"
            assert pinned.resolved_data_plane() == "vectorized"

    def test_task_validation(self):
        with pytest.raises(ExperimentError):
            EstimationTask("", [count_all()])
        with pytest.raises(ExperimentError):
            EstimationTask("x", [])
        with pytest.raises(ExperimentError):
            EstimationTask("x", [count_all()], budget=10, budget_share=0.5)
        with pytest.raises(ExperimentError):
            EstimationTask("x", [count_all()], budget=0)
        with pytest.raises(ExperimentError):
            EstimationTask("x", [count_all()], budget_share=1.5)

    def test_task_to_dict(self):
        task = EstimationTask(
            "census", [count_all()], "RS", budget_share=0.25, seed=4,
            options={"parent_check": "lazy"},
        )
        payload = json.loads(json.dumps(task.to_dict(), allow_nan=False))
        assert payload["name"] == "census"
        assert payload["estimator"] == "RS"
        assert payload["specs"] == ["count"]
        assert payload["budget_share"] == 0.25
        assert payload["options"] == {"parent_check": "lazy"}
        # Non-JSON option values (callables, objects) degrade to reprs
        # instead of making json.dumps raise.
        hooked = EstimationTask(
            "hooked", [count_all()], "RS",
            options={"free_order": (2, 0, 1), "hook": _build_env},
        )
        payload = json.loads(json.dumps(hooked.to_dict(), allow_nan=False))
        assert payload["options"]["free_order"] == [2, 0, 1]
        assert "_build_env" in payload["options"]["hook"]


class TestWireFormats:
    def test_round_report_round_trip(self):
        report = RoundReport(
            3,
            {"count": 12.5, "sum_price": math.nan},
            {"count": 4.0, "sum_price": math.inf},
            queries_used=77,
            drilldowns_updated=2,
            drilldowns_new=1,
            leaf_overflows=1,
            active_drilldowns=3,
        )
        payload = json.loads(json.dumps(report.to_dict(), allow_nan=False))
        back = RoundReport.from_dict(payload)
        assert back.round_index == 3
        assert back.queries_used == 77
        assert back.estimates["count"] == 12.5
        assert math.isnan(back.estimates["sum_price"])
        assert math.isinf(back.variances["sum_price"])
        assert back.drilldowns_updated == 2
        assert back.active_drilldowns == 3

    def test_experiment_result_round_trip(self):
        result = ExperimentResult("wire", ["RS"], ["count"])
        result.start_trial()
        result.record_truth(1, {"count": 100.0})
        result.record_report("RS", {"count": math.nan}, 30, 2)
        result.record_truth(2, {"count": 110.0})
        result.record_report("RS", {"count": 108.0}, 25, 1)
        payload = json.loads(json.dumps(result.to_dict(), allow_nan=False))
        back = ExperimentResult.from_dict(payload)
        assert back.rounds == result.rounds
        assert back.queries == result.queries
        assert back.drilldowns == result.drilldowns
        assert math.isnan(back.estimates["RS"][0][0]["count"])
        assert back.estimates["RS"][0][1] == {"count": 108.0}
        assert back.truths == result.truths

    def test_engine_reports_survive_the_wire(self):
        db, _ = _build_env()
        engine = Engine(CONFIG, db=db)
        engine.submit(EstimationTask(
            "t", [count_all(), count_where(db.schema, {"A0": "A0_1"})], "RS",
            budget=40,
        ))
        report = engine.run_round()["t"]
        wire = json.dumps(report.to_dict(), allow_nan=False)
        back = RoundReport.from_dict(json.loads(wire))
        _same_estimates(back.estimates, report.estimates)
        _same_estimates(back.variances, report.variances)
