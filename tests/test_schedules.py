"""Unit tests for update schedules and the intra-round driver."""

import random

import pytest

from repro import HiddenDatabase
from repro.data import (
    CompositeSchedule,
    FreshTupleSchedule,
    IntraRoundDriver,
    MeasureDriftSchedule,
    NullSchedule,
    SnapshotPoolSchedule,
    apply_round,
    skewed_source,
)


@pytest.fixture
def source():
    return skewed_source(
        [4, 5, 6],
        measures=("price",),
        measure_sampler=lambda rng: (rng.uniform(1, 10),),
        seed=0,
    )


@pytest.fixture
def db(source):
    database = HiddenDatabase(source.schema)
    for values, measures in source.batch(50):
        database.insert(values, measures)
    return database


class TestNullSchedule:
    def test_plans_nothing(self, db):
        assert NullSchedule().plan(db, random.Random(0)) == []


class TestSnapshotPool:
    def test_inserts_come_from_pool(self, db, source):
        pool = source.batch(30, distinct=False)
        schedule = SnapshotPoolSchedule(pool, inserts_per_round=10)
        before = len(db)
        apply_round(db, schedule, random.Random(1))
        assert len(db) == before + 10
        assert len(schedule.pool) == 20

    def test_deletions_return_to_pool(self, db):
        schedule = SnapshotPoolSchedule([], deletes_per_round=5)
        before = len(db)
        apply_round(db, schedule, random.Random(1))
        assert len(db) == before - 5
        assert len(schedule.pool) == 5

    def test_delete_fraction(self, db):
        schedule = SnapshotPoolSchedule([], delete_fraction=0.1)
        before = len(db)
        apply_round(db, schedule, random.Random(2))
        assert len(db) == before - round(before * 0.1)

    def test_pool_exhaustion_caps_inserts(self, db, source):
        pool = source.batch(3, distinct=False)
        schedule = SnapshotPoolSchedule(pool, inserts_per_round=10)
        before = len(db)
        apply_round(db, schedule, random.Random(3))
        assert len(db) == before + 3

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            SnapshotPoolSchedule([], delete_fraction=1.5)


class TestFreshTuple:
    def test_insert_and_delete_counts(self, db, source):
        schedule = FreshTupleSchedule(
            source, inserts_per_round=8, deletes_per_round=3
        )
        before = len(db)
        apply_round(db, schedule, random.Random(4))
        assert len(db) == before + 5

    def test_unbounded_inserts(self, db, source):
        schedule = FreshTupleSchedule(source, inserts_per_round=200)
        apply_round(db, schedule, random.Random(5))
        apply_round(db, schedule, random.Random(6))
        assert len(db) == 50 + 400


class TestMeasureDrift:
    def test_updates_fraction(self, db):
        schedule = MeasureDriftSchedule(0.5, lambda t, rng, r: (99.0,))
        apply_round(db, schedule, random.Random(7))
        updated = sum(1 for t in db.tuples() if t.measures[0] == 99.0)
        assert updated == 25

    def test_selector_restricts(self, db):
        schedule = MeasureDriftSchedule(
            1.0, lambda t, rng, r: (99.0,),
            selector=lambda t: t.values[0] == 0,
        )
        apply_round(db, schedule, random.Random(8))
        for t in db.tuples():
            if t.values[0] == 0:
                assert t.measures[0] == 99.0
            else:
                assert t.measures[0] != 99.0

    def test_update_preserves_size(self, db):
        schedule = MeasureDriftSchedule(1.0, lambda t, rng, r: (1.0,))
        before = len(db)
        apply_round(db, schedule, random.Random(9))
        assert len(db) == before

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            MeasureDriftSchedule(1.2, lambda t, rng, r: ())


class TestComposite:
    def test_concatenates_plans(self, db, source):
        composite = CompositeSchedule([
            FreshTupleSchedule(source, inserts_per_round=2),
            FreshTupleSchedule(source, inserts_per_round=3),
        ])
        assert len(composite.plan(db, random.Random(0))) == 5

    def test_tolerates_cross_schedule_deletion(self, db):
        """A drift op on a tuple another schedule deleted is a no-op."""
        victim = next(db.tuples()).tid
        drift = MeasureDriftSchedule(1.0, lambda t, rng, r: (5.0,))
        plan = drift.plan(db, random.Random(0))
        db.delete(victim)
        for mutation in plan:
            mutation()  # must not raise


class TestIntraRoundDriver:
    def test_spreads_mutations_across_queries(self, db, source):
        schedule = FreshTupleSchedule(source, inserts_per_round=10)
        driver = IntraRoundDriver(db, schedule, queries_per_round=10,
                                  rng=random.Random(0))
        driver.start_round()
        sizes = []
        for _ in range(10):
            driver.on_query()
            sizes.append(len(db))
        assert sizes[-1] == 60
        assert sizes[4] == 55  # halfway through => half applied

    def test_finish_round_flushes(self, db, source):
        schedule = FreshTupleSchedule(source, inserts_per_round=10)
        driver = IntraRoundDriver(db, schedule, queries_per_round=100,
                                  rng=random.Random(0))
        driver.start_round()
        driver.on_query()
        driver.finish_round()
        assert len(db) == 60

    def test_invalid_query_count_rejected(self, db, source):
        with pytest.raises(ValueError):
            IntraRoundDriver(db, NullSchedule(), 0, random.Random(0))
