"""Unit tests for conjunctive queries."""

import pytest

from repro import ConjunctiveQuery, QueryError
from repro.hiddendb.tuples import make_tuple


class TestConstruction:
    def test_root_query(self):
        root = ConjunctiveQuery.root()
        assert root.num_predicates == 0

    def test_predicates_sorted(self):
        q = ConjunctiveQuery([(2, 1), (0, 1)])
        assert q.predicates == ((0, 1), (2, 1))

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([(1, 0), (1, 2)])

    def test_from_labels(self, small_schema):
        q = ConjunctiveQuery.from_labels(
            small_schema, {"size": "m", "color": "red"}
        )
        assert q.predicates == ((0, 0), (1, 1))

    def test_extended(self):
        q = ConjunctiveQuery([(0, 1)]).extended(2, 3)
        assert q.predicates == ((0, 1), (2, 3))


class TestMatching:
    def test_root_matches_everything(self):
        assert ConjunctiveQuery.root().matches(make_tuple(0, [1, 2, 3]))

    def test_match_positive(self):
        q = ConjunctiveQuery([(0, 1), (2, 3)])
        assert q.matches(make_tuple(0, [1, 9, 3]))

    def test_match_negative(self):
        q = ConjunctiveQuery([(0, 1), (2, 3)])
        assert not q.matches(make_tuple(0, [1, 9, 2]))


class TestValidation:
    def test_validate_ok(self, small_schema):
        ConjunctiveQuery([(0, 1), (2, 3)]).validate(small_schema)

    def test_validate_bad_attribute(self, small_schema):
        with pytest.raises(QueryError):
            ConjunctiveQuery([(9, 0)]).validate(small_schema)

    def test_validate_bad_value(self, small_schema):
        with pytest.raises(QueryError):
            ConjunctiveQuery([(0, 5)]).validate(small_schema)


class TestIdentity:
    def test_equality_and_hash(self):
        a = ConjunctiveQuery([(0, 1), (1, 2)])
        b = ConjunctiveQuery([(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert ConjunctiveQuery([(0, 1)]) != ConjunctiveQuery([(0, 2)])

    def test_usable_as_dict_key(self):
        cache = {ConjunctiveQuery([(0, 1)]): "x"}
        assert cache[ConjunctiveQuery([(0, 1)])] == "x"

    def test_describe(self, small_schema):
        q = ConjunctiveQuery.from_labels(small_schema, {"color": "blue"})
        assert "color = 'blue'" in q.describe(small_schema)
        assert ConjunctiveQuery.root().describe(small_schema) == (
            "SELECT * FROM D"
        )
