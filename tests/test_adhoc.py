"""Tests for the ad-hoc (retroactive) query archive (§5.1)."""

import random

import pytest

from repro import (
    EstimationError,
    HiddenDatabase,
    ReissueEstimator,
    TopKInterface,
    avg_measure,
    count_all,
    count_where,
    sum_measure,
)
from repro.data import autos_snapshot, SnapshotPoolSchedule, apply_round


@pytest.fixture
def tracked_env():
    schema, payloads = autos_snapshot(total=6000, seed=5)
    db = HiddenDatabase(schema)
    for values, measures in payloads[:5500]:
        db.insert(values, measures)
    schedule = SnapshotPoolSchedule(
        payloads[5500:], inserts_per_round=50, delete_fraction=0.005
    )
    interface = TopKInterface(db, k=60)
    estimator = ReissueEstimator(
        interface, [count_all()], budget_per_round=300, seed=2
    )
    archive = estimator.attach_archive()
    rng = random.Random(9)
    truths = {}
    for round_number in range(1, 5):
        if round_number > 1:
            apply_round(db, schedule, rng)
            db.advance_round()
        estimator.run_round()
        truths[round_number] = {
            "count": float(len(db)),
            "sum_price": sum(t.measures[0] for t in db.tuples()),
        }
    return db, archive, truths


class TestArchive:
    def test_attach_is_idempotent(self, small_interface):
        estimator = ReissueEstimator(
            small_interface, [count_all()], budget_per_round=10
        )
        assert estimator.attach_archive() is estimator.attach_archive()

    def test_rounds_recorded(self, tracked_env):
        _, archive, _ = tracked_env
        assert archive.rounds() == [1, 2, 3, 4]
        assert archive.drilldowns_in(1) > 0

    def test_retroactive_count(self, tracked_env):
        _, archive, truths = tracked_env
        for round_number in (1, 3):
            estimate = archive.estimate(count_all(), round_number)
            truth = truths[round_number]["count"]
            assert estimate.value == pytest.approx(truth, rel=0.5)
            assert estimate.drilldowns > 0

    def test_retroactive_unseen_aggregate(self, tracked_env):
        """A SUM the estimator never tracked, answered from the archive."""
        db, archive, truths = tracked_env
        spec = sum_measure(db.schema, "price")
        estimate = archive.estimate(spec, 2)
        assert estimate.value == pytest.approx(
            truths[2]["sum_price"], rel=0.6
        )

    def test_retroactive_conditional_count(self, tracked_env):
        db, archive, _ = tracked_env
        spec = count_where(db.schema, {"certified": "certified_0"})
        truth = spec.ground_truth(db)
        estimate = archive.estimate(spec, 4)
        assert estimate.value == pytest.approx(truth, rel=0.8)

    def test_retroactive_ratio(self, tracked_env):
        db, archive, _ = tracked_env
        spec = avg_measure(db.schema, "price")
        estimate = archive.estimate(spec, 3)
        truth = spec.ground_truth(db)  # round-4 truth; rough sanity only
        assert 0.2 * truth < estimate.value < 5 * truth

    def test_retroactive_change(self, tracked_env):
        _, archive, truths = tracked_env
        estimate = archive.estimate_change(count_all(), 1, 4)
        true_change = truths[4]["count"] - truths[1]["count"]
        # Differenced independent estimates: very loose sanity band.
        assert abs(estimate.value - true_change) < 0.5 * truths[4]["count"]
        assert estimate.variance > 0

    def test_unknown_round_raises(self, tracked_env):
        _, archive, _ = tracked_env
        with pytest.raises(EstimationError):
            archive.estimate(count_all(), 99)

    def test_retrieved_tuples_distinct(self, tracked_env):
        _, archive, _ = tracked_env
        tuples = archive.retrieved_tuples(1)
        assert len({t.tid for t in tuples}) == len(tuples)
        assert tuples
