"""White-box tests for estimator internals and figure-builder helpers."""

import math
import py_compile
from pathlib import Path

import pytest

from repro import (
    RestartEstimator,
    RsEstimator,
    count_all,
    running_average,
)
from repro.core.estimators.base import DrillDownRecord
from repro.experiments.figures.common import (
    FigureResult,
    autos_env_factory,
    scaled_k,
)

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.fixture
def rs(small_interface):
    return RsEstimator(small_interface, [count_all()], budget_per_round=40,
                       seed=0)


class TestRsInternals:
    def test_bucket_records_keeps_recent_groups(self, rs):
        rs.records = [
            DrillDownRecord((0,), 0, last_round, {"count": 1.0})
            for last_round in (1, 1, 2, 3, 4, 5, 6, 7)
        ]
        rs.max_update_groups = 4
        groups = rs._bucket_records()
        # 3 most recent rounds individually + one merged archive.
        assert set(groups) == {7, 6, 5, 1}
        assert len(groups[1]) == 5  # rounds 1,1,2,3,4 merged

    def test_bucket_records_no_archive_when_few_rounds(self, rs):
        rs.records = [
            DrillDownRecord((0,), 0, last_round, {"count": 1.0})
            for last_round in (1, 2)
        ]
        groups = rs._bucket_records()
        assert set(groups) == {1, 2}

    def test_delta_alpha_floor_dominates_zero_samples(self, rs):
        rs._pooled = {"count": 100.0}
        # Ten observed zero deltas: sample variance 0, floor kicks in.
        alpha = rs._delta_alpha([0.0] * 10, "count")
        assert alpha == pytest.approx(2 * 100.0 / 12)

    def test_delta_alpha_floor_shrinks_with_verification(self, rs):
        rs._pooled = {"count": 100.0}
        few = rs._delta_alpha([0.0] * 5, "count")
        many = rs._delta_alpha([0.0] * 50, "count")
        assert many < few

    def test_delta_alpha_sample_variance_wins_when_large(self, rs):
        rs._pooled = {"count": 1.0}
        alpha = rs._delta_alpha([0.0, 100.0, -100.0], "count")
        assert alpha == pytest.approx(10000.0, rel=0.01)

    def test_pooled_variances_over_records(self, rs):
        rs.records = [
            DrillDownRecord((0,), 0, 1, {"count": value})
            for value in (10.0, 20.0, 30.0)
        ]
        pooled = rs._pooled_variances()
        assert pooled["count"] == pytest.approx(100.0)

    def test_pooled_variance_single_record_is_inf(self, rs):
        rs.records = [DrillDownRecord((0,), 0, 1, {"count": 10.0})]
        assert math.isinf(rs._pooled_variances()["count"])


class TestBaseInternals:
    def test_previous_report_picks_most_recent_earlier(self, small_interface,
                                                       small_db):
        estimator = RestartEstimator(
            small_interface, [count_all()], budget_per_round=20
        )
        estimator.run_round()
        small_db.advance_round()
        estimator.run_round()
        previous = estimator._previous_report(2)
        assert previous is not None and previous.round_index == 1
        assert estimator._previous_report(1) is None

    def test_running_average_uses_available_window(self, small_interface,
                                                   small_db):
        count = count_all()
        estimator = RestartEstimator(
            small_interface,
            [count, running_average(3, count, name="ravg")],
            budget_per_round=25,
        )
        first = estimator.run_round()
        # Window of 3 with one round of history: averages what exists.
        assert first.estimates["ravg"] == first.estimates["count"]
        small_db.advance_round()
        second = estimator.run_round()
        expected = (first.estimates["count"] + second.estimates["count"]) / 2
        assert second.estimates["ravg"] == pytest.approx(expected)

    def test_carry_previous_estimate_when_budget_too_small(
        self, small_interface, small_db
    ):
        """A round whose budget can't finish one drill-down carries over."""
        estimator = RestartEstimator(
            small_interface, [count_all()], budget_per_round=50
        )
        first = estimator.run_round()
        small_db.advance_round()
        estimator.budget_per_round = 1  # root query only: no completion...
        second = estimator.run_round()
        # ...unless the root itself is non-overflowing; with 60 tuples and
        # k=5 the root overflows, so the estimate carries over.
        assert second.estimates["count"] == first.estimates["count"]
        assert math.isinf(second.variances["count"])


class TestFigureHelpers:
    def test_scaled_k(self):
        assert scaled_k(0.1) == 100
        assert scaled_k(0.001) == 5  # floor

    def test_env_factory_respects_scale(self):
        factory = autos_env_factory(scale=0.01)
        db, schedule = factory(0)
        assert len(db) == 1700
        assert schedule.inserts_per_round == 3

    def test_env_factory_num_attributes(self):
        factory = autos_env_factory(scale=0.005, num_attributes=10)
        db, _ = factory(0)
        assert db.schema.num_attributes == 10

    def test_figure_result_renders(self):
        figure = FigureResult(
            "figX", "demo", "x", "y", [1, 2], {"A": [0.1, 0.2]},
            notes="n", log_y=True,
        )
        text = figure.to_text()
        assert "figX" in text and "notes: n" in text
        assert "0.2" in figure.table()


class TestExamplesIntegrity:
    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[p.stem for p in EXAMPLES]
    )
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_expected_examples_present(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "job_market_tracker",
            "app_store_census",
            "ebay_price_watch",
            "retroactive_analytics",
        } <= names
