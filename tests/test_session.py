"""Unit tests for budgeted query sessions."""

import pytest

from repro import ConjunctiveQuery, QueryBudgetExhausted
from repro.hiddendb.session import QuerySession


class TestBudget:
    def test_counts_queries(self, small_interface):
        session = QuerySession(small_interface, budget=3)
        session.search(ConjunctiveQuery.root())
        assert session.queries_used == 1
        assert session.remaining == 2

    def test_exhaustion_raises(self, small_interface):
        session = QuerySession(small_interface, budget=2)
        session.search(ConjunctiveQuery.root())
        session.search(ConjunctiveQuery([(0, 0)]))
        with pytest.raises(QueryBudgetExhausted):
            session.search(ConjunctiveQuery([(0, 1)]))

    def test_exhausted_query_not_executed(self, small_interface):
        session = QuerySession(small_interface, budget=1)
        session.search(ConjunctiveQuery.root())
        before = small_interface.stats.queries
        with pytest.raises(QueryBudgetExhausted):
            session.search(ConjunctiveQuery.root())
        assert small_interface.stats.queries == before

    def test_unlimited_budget(self, small_interface):
        session = QuerySession(small_interface, budget=None)
        for _ in range(10):
            session.search(ConjunctiveQuery.root())
        assert session.remaining is None

    def test_can_afford(self, small_interface):
        session = QuerySession(small_interface, budget=2)
        assert session.can_afford(2)
        assert not session.can_afford(3)

    def test_reset_round(self, small_interface):
        session = QuerySession(small_interface, budget=1)
        session.search(ConjunctiveQuery.root())
        session.reset_round(budget=5)
        assert session.queries_used == 0
        assert session.remaining == 5


class TestCache:
    def test_cache_off_by_default_charges_duplicates(self, small_interface):
        session = QuerySession(small_interface, budget=10)
        session.search(ConjunctiveQuery.root())
        session.search(ConjunctiveQuery.root())
        assert session.queries_used == 2

    def test_cache_on_charges_once(self, small_interface):
        session = QuerySession(
            small_interface, budget=10, cache_within_round=True
        )
        first = session.search(ConjunctiveQuery.root())
        second = session.search(ConjunctiveQuery.root())
        assert session.queries_used == 1
        assert first is second

    def test_reset_clears_cache(self, small_interface):
        session = QuerySession(
            small_interface, budget=10, cache_within_round=True
        )
        session.search(ConjunctiveQuery.root())
        session.reset_round()
        session.search(ConjunctiveQuery.root())
        assert session.queries_used == 1  # counted fresh after the reset


class TestHook:
    def test_on_query_fires_per_charged_query(self, small_interface):
        fired = []
        session = QuerySession(
            small_interface, budget=5, on_query=lambda: fired.append(1)
        )
        session.search(ConjunctiveQuery.root())
        session.search(ConjunctiveQuery([(0, 0)]))
        assert len(fired) == 2

    def test_on_query_not_fired_for_cache_hits(self, small_interface):
        fired = []
        session = QuerySession(
            small_interface,
            budget=5,
            cache_within_round=True,
            on_query=lambda: fired.append(1),
        )
        session.search(ConjunctiveQuery.root())
        session.search(ConjunctiveQuery.root())
        assert len(fired) == 1
