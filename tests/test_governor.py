"""Budget governor: ceilings, the degradation ladder, windows, accounting.

The ladder contract (see :mod:`repro.service.governor`): as a tenant's
window allowance depletes, admissions degrade strictly in the order
``allow`` → ``shrink_k`` → ``widen_rounds`` → refuse — and every
non-trivial decision is observable in the admission record and the
telemetry snapshot, never silent.
"""

import threading

import pytest

from repro.errors import AdmissionError, ExperimentError
from repro.service.governor import (
    ACTION_ALLOW,
    ACTION_SHRINK,
    ACTION_WIDEN,
    Admission,
    BudgetGovernor,
    GovernorConfig,
)


def _governor(**overrides) -> BudgetGovernor:
    defaults = dict(queries_per_window=100, window_rounds=10)
    defaults.update(overrides)
    return BudgetGovernor(GovernorConfig(**defaults))


class TestConfig:
    def test_shrink_steps_sorted_descending(self):
        config = GovernorConfig(shrink_steps=(0.4, 0.9, 0.6))
        assert config.shrink_steps == (0.9, 0.6, 0.4)

    @pytest.mark.parametrize("bad", [
        dict(queries_per_window=0),
        dict(window_rounds=0),
        dict(shrink_steps=()),
        dict(shrink_steps=(1.5,)),
        dict(shrink_steps=(0.0,)),
        dict(max_deferrals=-1),
        dict(total_queries_per_window=0),
        dict(max_tenants=0),
    ])
    def test_invalid_knobs_raise(self, bad):
        with pytest.raises(ExperimentError):
            GovernorConfig(**bad)

    def test_wire_round_trip(self):
        config = GovernorConfig(queries_per_window=50, max_tenants=3)
        payload = config.to_wire()
        assert payload["schema_version"] == 1
        assert GovernorConfig.from_wire(payload) == config


class TestCeilingEnforcement:
    def test_unlimited_policy_always_allows(self):
        governor = BudgetGovernor()  # all ceilings None
        for round_index in range(50):
            admission = governor.admit("t", 1000, round_index)
            assert admission.action == ACTION_ALLOW
            governor.commit("t", 1000, round_index)

    def test_window_ceiling_is_never_exceeded(self):
        governor = _governor(queries_per_window=100)
        spent = 0
        for round_index in range(10):
            try:
                admission = governor.admit("t", 40, round_index)
            except AdmissionError:
                continue
            if admission.runs:
                governor.commit("t", admission.granted, round_index)
                spent += admission.granted
        assert spent <= 100

    def test_service_wide_ceiling_spans_tenants(self):
        governor = _governor(
            queries_per_window=None, total_queries_per_window=60,
        )
        first = governor.admit("a", 40, 0)
        assert first.action == ACTION_ALLOW
        governor.commit("a", 40, 0)
        # 20 of the service window left: tenant b's 40 must shrink.
        second = governor.admit("b", 40, 0)
        assert second.action == ACTION_SHRINK
        assert second.granted <= 20

    def test_tighter_of_both_ceilings_wins(self):
        governor = _governor(
            queries_per_window=100, total_queries_per_window=30,
        )
        admission = governor.admit("a", 50, 0)
        assert admission.action == ACTION_SHRINK
        assert admission.granted <= 30

    def test_max_tenants_at_submit(self):
        governor = _governor(max_tenants=2)
        governor.admit_tenant("a", 0)
        governor.admit_tenant("b", 1)
        with pytest.raises(AdmissionError) as excinfo:
            governor.admit_tenant("c", 2)
        assert excinfo.value.tenant == "c"


class TestDegradationLadder:
    """shrink_k strictly before widen_rounds strictly before refuse."""

    def test_full_ladder_in_order(self):
        governor = _governor(
            queries_per_window=100, window_rounds=100, max_deferrals=2,
        )
        actions = []
        for round_index in range(8):
            try:
                admission = governor.admit("t", 40, round_index)
            except AdmissionError:
                actions.append("refuse")
                continue
            actions.append(admission.action)
            if admission.runs:
                governor.commit("t", admission.granted, round_index)
        # 100 allowance, 40/round: allow(40) → allow(40) [80 spent] →
        # shrink to ≤20 → nothing fits → defer ×2 → refuse.
        assert actions[0] == ACTION_ALLOW
        assert actions[1] == ACTION_ALLOW
        assert actions[2] == ACTION_SHRINK
        first_widen = actions.index(ACTION_WIDEN)
        first_refuse = actions.index("refuse")
        assert actions.index(ACTION_SHRINK) < first_widen < first_refuse
        assert actions[first_widen:first_refuse] == [ACTION_WIDEN] * 2

    def test_shrink_uses_largest_fitting_step(self):
        governor = _governor(
            queries_per_window=100, shrink_steps=(0.9, 0.5, 0.25),
        )
        governor.commit("t", 60, 0)  # 40 left of 100
        admission = governor.admit("t", 50, 0)
        assert admission.action == ACTION_SHRINK
        # 0.9*50=45 > 40; 0.5*50=25 fits — and is chosen over 0.25.
        assert admission.factor == 0.5
        assert admission.granted == 25

    def test_shrink_never_grants_more_than_remaining(self):
        governor = _governor(queries_per_window=100)
        governor.commit("t", 70, 0)
        admission = governor.admit("t", 40, 0)
        assert admission.action == ACTION_SHRINK
        assert admission.granted <= 30

    def test_deferral_counter_resets_on_success(self):
        governor = _governor(
            queries_per_window=100, window_rounds=100, max_deferrals=1,
        )
        governor.commit("t", 99, 0)  # 1 left: nothing shrinks to fit 40
        assert governor.admit("t", 40, 1).action == ACTION_WIDEN
        # A full allow resets consecutive deferrals…
        governor2 = _governor(queries_per_window=100, max_deferrals=1)
        assert governor2.admit("t", 40, 0).action == ACTION_ALLOW
        # …so the tenant gets its deferral allowance back later.

    def test_refusal_carries_retry_after(self):
        governor = _governor(
            queries_per_window=10, window_rounds=10, max_deferrals=0,
        )
        governor.commit("t", 10, 3)
        with pytest.raises(AdmissionError) as excinfo:
            governor.admit("t", 40, 3)
        exc = excinfo.value
        assert exc.tenant == "t"
        assert exc.retry_after_rounds == 7  # next window starts at round 10
        assert exc.remaining == 0
        assert exc.http_status == 429

    def test_degradation_is_observable(self):
        governor = _governor(queries_per_window=100)
        governor.commit("t", 70, 0)
        admission = governor.admit("t", 40, 0)
        record = admission.record()
        assert record is not None
        assert record["action"] == ACTION_SHRINK
        assert record["requested"] == 40
        assert record["granted"] == admission.granted
        snapshot = governor.snapshot()
        assert snapshot["tenants"]["t"]["degraded_rounds"] == 1
        assert snapshot["tenants"]["t"]["last_action"] == ACTION_SHRINK

    def test_allow_record_is_none(self):
        assert Admission(ACTION_ALLOW, 10, 10, None).record() is None


class TestWindowReset:
    def test_allowance_returns_at_the_window_boundary(self):
        governor = _governor(queries_per_window=100, window_rounds=10)
        governor.commit("t", 100, 0)
        assert governor.admit("t", 40, 9).action != ACTION_ALLOW
        # Round 10 starts window 1: full allowance again.
        assert governor.admit("t", 40, 10).action == ACTION_ALLOW

    def test_deferral_counter_resets_with_the_window(self):
        governor = _governor(
            queries_per_window=10, window_rounds=10, max_deferrals=0,
        )
        governor.commit("t", 10, 0)
        with pytest.raises(AdmissionError):
            governor.admit("t", 40, 5)
        assert governor.admit("t", 5, 10).action == ACTION_ALLOW

    def test_service_counters_reset_too(self):
        governor = _governor(
            queries_per_window=None, total_queries_per_window=50,
        )
        governor.commit("a", 50, 0)
        assert governor.admit("b", 40, 0).action != ACTION_ALLOW
        assert governor.admit("b", 40, 10).action == ACTION_ALLOW
        snapshot = governor.snapshot()
        assert snapshot["window_queries"] == 0  # window 1, nothing spent
        assert snapshot["queries_total"] == 50  # lifetime total survives

    def test_boundary_round_does_not_double_charge_the_old_window(self):
        # Regression: a commit landing exactly on the window_rounds
        # boundary opens the new window; a *straggler* commit from the
        # old window arriving afterwards used to roll the counters
        # backward (wiping the new window's bookings) and then forward
        # again — double-charging across the boundary.  Forward-only
        # rolling keeps the new window's charges intact and books the
        # straggler into lifetime totals only.
        governor = _governor(queries_per_window=100, window_rounds=10)
        governor.commit("t", 30, 9)    # window 0
        governor.commit("t", 40, 10)   # boundary: opens window 1
        governor.commit("t", 5, 9)     # straggler from closed window 0
        snapshot = governor.snapshot()
        assert snapshot["window_index"] == 1
        assert snapshot["window_queries"] == 40   # not wiped, not 45
        assert snapshot["queries_total"] == 75    # straggler still counted
        tenant = snapshot["tenants"]["t"]
        assert tenant["window_index"] == 1
        assert tenant["window_queries"] == 40
        assert tenant["queries_total"] == 75
        # Window 1 still has 60 of its 100-query allowance.
        assert governor.admit("t", 60, 10).action == ACTION_ALLOW

    def test_straggler_admit_does_not_reopen_a_closed_window(self):
        governor = _governor(queries_per_window=100, window_rounds=10)
        governor.commit("t", 100, 5)   # exhausts window 0
        governor.commit("t", 20, 10)   # window 1 opens with 20 booked
        # An admit quoting an old-window round sees the *open* window's
        # remaining allowance, not a resurrected window 0.
        assert governor.admit("t", 80, 9).action == ACTION_ALLOW

    def test_retry_after_at_the_boundary_is_never_zero(self):
        governor = _governor(
            queries_per_window=10, window_rounds=10, max_deferrals=0,
        )
        # Exhaust every window the probes below land in.
        for round_index in (0, 10):
            governor.commit("t", 10, round_index)
        for round_index in (0, 5, 9, 10):
            with pytest.raises(AdmissionError) as excinfo:
                governor.admit("t", 40, round_index)
            assert excinfo.value.retry_after_rounds >= 1
        # Refusals quote the *open* window's reset: window 1 is current,
        # so a round-9 straggler waits for round 20 (11 rounds), and the
        # boundary round itself waits a full window, never 0.
        with pytest.raises(AdmissionError) as excinfo:
            governor.admit("t", 40, 9)
        assert excinfo.value.retry_after_rounds == 11
        with pytest.raises(AdmissionError) as excinfo:
            governor.admit("t", 40, 10)
        assert excinfo.value.retry_after_rounds == 10


class TestConcurrentAccounting:
    def test_many_threads_account_exactly(self):
        governor = BudgetGovernor(
            GovernorConfig(queries_per_window=10_000, window_rounds=1000)
        )
        tenants = [f"t{i}" for i in range(8)]
        rounds_per_tenant = 50
        spend = 7

        def work(tenant: str) -> None:
            for round_index in range(rounds_per_tenant):
                admission = governor.admit(tenant, spend, round_index)
                assert admission.action == ACTION_ALLOW
                governor.commit(tenant, admission.granted, round_index)

        threads = [
            threading.Thread(target=work, args=(tenant,))
            for tenant in tenants
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = governor.snapshot()
        expected_per_tenant = rounds_per_tenant * spend
        for tenant in tenants:
            usage = snapshot["tenants"][tenant]
            assert usage["queries_total"] == expected_per_tenant
            assert usage["rounds_run"] == rounds_per_tenant
        assert snapshot["queries_total"] == (
            expected_per_tenant * len(tenants)
        )

    def test_tenants_do_not_share_per_tenant_allowance(self):
        governor = _governor(queries_per_window=100)
        governor.commit("a", 100, 0)
        # Tenant a is exhausted; tenant b is untouched.
        assert governor.admit("b", 40, 0).action == ACTION_ALLOW


class TestValidation:
    def test_admit_rejects_non_positive_request(self):
        with pytest.raises(ExperimentError):
            _governor().admit("t", 0, 0)

    def test_commit_rejects_negative_spend(self):
        with pytest.raises(ExperimentError):
            _governor().commit("t", -1, 0)
