"""Property tests: ``top_k_select`` must equal ``top_k_by_score``.

The columnar query plane selects pages with an ``np.argpartition`` +
lexsort pass over score/tid vectors; the scalar plane uses a heap over
``(-score, tid)`` keys.  Both must implement the same total order — score
descending, tid ascending — for every score distribution hypothesis can
throw at them: heavy ties, duplicated scores, signed zeros, k = 0, k >= n.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hiddendb.result import top_k_by_score, top_k_select
from repro.hiddendb.tuples import HiddenTuple


def _tuples_from(scores):
    return [
        HiddenTuple(tid, b"\x00", (), score)
        for tid, score in enumerate(scores)
    ]


#: Finite scores drawn from a tiny pool to force ties, plus free floats.
score_lists = st.one_of(
    st.lists(
        st.sampled_from([-1.0, -0.0, 0.0, 0.5, 1.0, 1.0, 2.0]),
        max_size=60,
    ),
    st.lists(
        st.floats(
            min_value=-1e12,
            max_value=1e12,
            allow_nan=False,
            allow_infinity=False,
        ),
        max_size=60,
    ),
)


@given(scores=score_lists, k=st.integers(min_value=0, max_value=80))
@settings(max_examples=300, deadline=None)
def test_select_matches_heap_oracle(scores, k):
    tuples = _tuples_from(scores)
    oracle = top_k_by_score(tuples, k)
    order = top_k_select(
        np.asarray(scores, dtype=np.float64),
        np.arange(len(scores), dtype=np.int64),
        k,
    )
    assert [t.tid for t in oracle] == order.tolist()


@given(scores=score_lists, k=st.integers(min_value=0, max_value=80))
@settings(max_examples=200, deadline=None)
def test_tie_break_invariant(scores, k):
    """The page is strictly sorted by (-score, tid) — a total order."""
    order = top_k_select(
        np.asarray(scores, dtype=np.float64),
        np.arange(len(scores), dtype=np.int64),
        k,
    )
    page = [(-scores[row], row) for row in order]
    assert page == sorted(page)
    assert len(set(order.tolist())) == len(order)  # no row twice
    assert len(order) == min(k, len(scores))


@given(
    scores=st.lists(
        st.sampled_from([0.0, 1.0, 2.0]), min_size=1, max_size=40
    ),
    k=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=200, deadline=None)
def test_shuffled_tids_do_not_change_the_page(scores, k):
    """Candidate order is irrelevant: shuffling rows yields the same page."""
    n = len(scores)
    rng = np.random.default_rng(0)
    permutation = rng.permutation(n)
    scores_arr = np.asarray(scores, dtype=np.float64)
    tids = np.arange(n, dtype=np.int64)
    baseline = tids[top_k_select(scores_arr, tids, k)]
    shuffled = tids[permutation][
        top_k_select(scores_arr[permutation], tids[permutation], k)
    ]
    assert baseline.tolist() == shuffled.tolist()


def test_k_zero_and_empty_inputs():
    empty = top_k_select(np.empty(0), np.empty(0, dtype=np.int64), 5)
    assert empty.tolist() == []
    zero_k = top_k_select(
        np.array([1.0, 2.0]), np.array([0, 1], dtype=np.int64), 0
    )
    assert zero_k.tolist() == []
    assert top_k_by_score(_tuples_from([1.0, 2.0]), 0) == []


def test_k_at_least_n_returns_full_sort():
    scores = [1.0, 3.0, 3.0, 2.0]
    order = top_k_select(
        np.asarray(scores), np.arange(4, dtype=np.int64), 10
    )
    assert order.tolist() == [1, 2, 3, 0]
    assert [t.tid for t in top_k_by_score(_tuples_from(scores), 10)] == [
        1, 2, 3, 0,
    ]
