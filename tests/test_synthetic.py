"""Unit tests for the synthetic data sources."""

import random

import numpy as np
import pytest

from repro import SchemaError
from repro.data import (
    SyntheticSource,
    skewed_source,
    uniform_boolean_source,
    uniform_weights,
    zipf_weights,
)


class TestWeights:
    def test_uniform_weights_sum_to_one(self):
        assert uniform_weights(7).sum() == pytest.approx(1.0)

    def test_zipf_weights_sum_to_one(self):
        assert zipf_weights(10, 0.8).sum() == pytest.approx(1.0)

    def test_zipf_weights_decreasing(self):
        weights = zipf_weights(10, 0.8)
        assert all(weights[i] >= weights[i + 1] for i in range(9))


class TestSources:
    def test_batch_size_and_distinctness(self):
        source = uniform_boolean_source(8, seed=1)
        payloads = source.batch(100)
        values = [v for v, _ in payloads]
        assert len(payloads) == 100
        assert len(set(values)) == 100

    def test_batch_without_distinctness(self):
        source = uniform_boolean_source(2, seed=1)
        payloads = source.batch(30, distinct=False)
        assert len(payloads) == 30  # leaf space is only 4

    def test_distinct_impossible_raises(self):
        source = uniform_boolean_source(2, seed=1)
        with pytest.raises(SchemaError):
            source.batch(10)  # only 4 distinct vectors exist

    def test_one_produces_valid_vector(self):
        source = skewed_source([3, 4, 5], seed=2)
        rng = random.Random(0)
        for _ in range(50):
            values, measures = source.one(rng)
            source.schema.validate_values(values)
            assert measures == ()

    def test_measure_sampler_used(self):
        source = skewed_source(
            [4, 4],
            measures=("m",),
            measure_sampler=lambda rng: (42.0,),
            seed=0,
        )
        values, measures = source.one(random.Random(0))
        assert measures == (42.0,)

    def test_measures_without_sampler_rejected(self):
        with pytest.raises(SchemaError):
            skewed_source([4], measures=("m",))

    def test_weight_length_validated(self):
        source = uniform_boolean_source(3)
        with pytest.raises(SchemaError):
            SyntheticSource(source.schema, [np.array([1.0])] * 3)

    def test_skew_reflected_in_samples(self):
        source = skewed_source([10], exponent=1.5, seed=3)
        payloads = source.batch(2000, distinct=False)
        first_value = sum(1 for v, _ in payloads if v[0] == 0)
        last_value = sum(1 for v, _ in payloads if v[0] == 9)
        assert first_value > 5 * max(last_value, 1)

    def test_batches_reproducible_by_seed(self):
        a = skewed_source([5, 5, 5], seed=11).batch(50)
        b = skewed_source([5, 5, 5], seed=11).batch(50)
        assert a == b


class TestDrawStreamParity:
    """The searchsorted sampling must reproduce Generator.choice's stream.

    ``batch_columns`` inverts precomputed CDFs against ``np_rng.random``
    uniforms; ``Generator.choice(n, size, p=...)`` does exactly that
    internally, so the optimized path must be draw-for-draw identical to
    the reference call — same seed, same values, forever.
    """

    def test_bulk_stream_matches_generator_choice(self):
        domain_sizes = [3, 7, 16]
        source = skewed_source(domain_sizes, exponent=0.7, seed=29)
        batch = source.batch_columns(400, distinct=False)
        reference_rng = np.random.default_rng(29)
        for position, weights in enumerate(source.attr_weights):
            expected = reference_rng.choice(
                len(weights), size=400, p=weights
            )
            assert np.array_equal(
                batch.values[:, position], expected
            ), f"attribute {position} diverged from the choice() stream"

    def test_per_call_rng_stream_matches_generator_choice(self):
        source = skewed_source([4, 9], exponent=0.5, seed=1)
        driver = random.Random(99)
        reference_driver = random.Random(99)
        batch = source.batch_columns(100, distinct=False, rng=driver)
        reference_rng = np.random.default_rng(
            reference_driver.getrandbits(64)
        )
        for position, weights in enumerate(source.attr_weights):
            expected = reference_rng.choice(len(weights), size=100, p=weights)
            assert np.array_equal(batch.values[:, position], expected)

    def test_bad_weights_rejected_like_generator_choice(self):
        # Generator.choice(p=...) validated weights at draw time; the
        # precomputed-CDF path must reject the same inputs, at build time.
        schema = uniform_boolean_source(2).schema
        for bad in ([0.0, 0.0], [-0.5, 1.5], [0.9, 0.9], [np.nan, 1.0]):
            with pytest.raises(SchemaError):
                SyntheticSource(schema, [np.array(bad)] * 2)

    def test_distinct_batches_unchanged_by_seed(self):
        # Distinctness filtering sits on top of the same stream, so the
        # whole distinct batch must be reproducible too.
        a = skewed_source([10, 10, 10], seed=13).batch_columns(100)
        b = skewed_source([10, 10, 10], seed=13).batch_columns(100)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.measures, b.measures)
