"""Unit tests for the synthetic data sources."""

import random

import numpy as np
import pytest

from repro import SchemaError
from repro.data import (
    SyntheticSource,
    skewed_source,
    uniform_boolean_source,
    uniform_weights,
    zipf_weights,
)


class TestWeights:
    def test_uniform_weights_sum_to_one(self):
        assert uniform_weights(7).sum() == pytest.approx(1.0)

    def test_zipf_weights_sum_to_one(self):
        assert zipf_weights(10, 0.8).sum() == pytest.approx(1.0)

    def test_zipf_weights_decreasing(self):
        weights = zipf_weights(10, 0.8)
        assert all(weights[i] >= weights[i + 1] for i in range(9))


class TestSources:
    def test_batch_size_and_distinctness(self):
        source = uniform_boolean_source(8, seed=1)
        payloads = source.batch(100)
        values = [v for v, _ in payloads]
        assert len(payloads) == 100
        assert len(set(values)) == 100

    def test_batch_without_distinctness(self):
        source = uniform_boolean_source(2, seed=1)
        payloads = source.batch(30, distinct=False)
        assert len(payloads) == 30  # leaf space is only 4

    def test_distinct_impossible_raises(self):
        source = uniform_boolean_source(2, seed=1)
        with pytest.raises(SchemaError):
            source.batch(10)  # only 4 distinct vectors exist

    def test_one_produces_valid_vector(self):
        source = skewed_source([3, 4, 5], seed=2)
        rng = random.Random(0)
        for _ in range(50):
            values, measures = source.one(rng)
            source.schema.validate_values(values)
            assert measures == ()

    def test_measure_sampler_used(self):
        source = skewed_source(
            [4, 4],
            measures=("m",),
            measure_sampler=lambda rng: (42.0,),
            seed=0,
        )
        values, measures = source.one(random.Random(0))
        assert measures == (42.0,)

    def test_measures_without_sampler_rejected(self):
        with pytest.raises(SchemaError):
            skewed_source([4], measures=("m",))

    def test_weight_length_validated(self):
        source = uniform_boolean_source(3)
        with pytest.raises(SchemaError):
            SyntheticSource(source.schema, [np.array([1.0])] * 3)

    def test_skew_reflected_in_samples(self):
        source = skewed_source([10], exponent=1.5, seed=3)
        payloads = source.batch(2000, distinct=False)
        first_value = sum(1 for v, _ in payloads if v[0] == 0)
        last_value = sum(1 for v, _ in payloads if v[0] == 9)
        assert first_value > 5 * max(last_value, 1)

    def test_batches_reproducible_by_seed(self):
        a = skewed_source([5, 5, 5], seed=11).batch(50)
        b = skewed_source([5, 5, 5], seed=11).batch(50)
        assert a == b
