"""Concurrency tests for the engine facade and the read-concurrent store.

The contracts under test (PR 5):

* ``Engine.run_round(parallel=N)`` is **bit-identical** to the sequential
  schedule on every backend × data plane — each task owns its RNG,
  interface counters, and session, and the store honors the
  reader-concurrency contract, so interleaving cannot leak between tasks.
* The session boundary stays responsive during a long round: the round
  barrier and the session lock are separate, so ``stream_reports()`` /
  ``budget_ledger()`` from other threads never wait for estimators.
* Deferred columnar pages detect cross-thread staleness: a page read
  after another thread mutates the store raises ``StaleResultError``.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.api import Engine, EngineConfig, EstimationTask, using_parallelism
from repro.core.aggregates import count_all
from repro.core.estimators.base import RoundReport
from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.errors import ExperimentError, StaleResultError
from repro.hiddendb import ConjunctiveQuery, TopKInterface


ALGORITHMS = ("RESTART", "REISSUE", "RS")


def _fig_source(seed: int = 7):
    return skewed_source(
        [2 + (i % 5) for i in range(10)], exponent=0.4, seed=seed
    )


def _run_engine(
    backend: str,
    parallel: int,
    plane: str | None = None,
    shards: int | None = None,
    rounds: int = 3,
    n: int = 2500,
):
    """One seeded multi-tenant churn run; returns every observable output."""
    source = _fig_source()
    config = EngineConfig(
        backend=backend,
        data_plane=plane,
        shards=shards,
        parallelism=parallel,
        k=10,
        budget_per_round=60,
        seed=3,
    )
    engine = Engine(config, schema=source.schema)
    engine.load(source.batch_columns(n))
    schedule = FreshTupleSchedule(
        source, inserts_per_round=40, delete_fraction=0.01
    )
    specs = [count_all()]
    for index, algorithm in enumerate(ALGORITHMS):
        engine.submit(
            EstimationTask(algorithm, specs, algorithm, seed=100 + index)
        )
    rng = random.Random(11)
    outputs = []
    for position in range(rounds):
        if position:
            engine.apply_updates(lambda db: apply_round(db, schedule, rng))
            engine.advance_round()
        reports = engine.run_round()
        outputs.append({
            name: (report.estimates, report.variances, report.queries_used)
            for name, report in reports.items()
        })
    outputs.append(engine.budget_ledger())
    outputs.append([name for name, _ in engine.stream_reports()])
    return outputs


@pytest.mark.parametrize("plane", ["vectorized", "scalar"])
@pytest.mark.parametrize(
    "backend,shards",
    [("blocked", None), ("packed", None), ("sharded", 4)],
)
def test_parallel_round_bit_identical_to_sequential(backend, shards, plane):
    sequential = _run_engine(backend, 1, plane, shards)
    parallel = _run_engine(backend, 4, plane, shards)
    assert sequential == parallel


def test_parallel_explicit_argument_overrides_config():
    source = _fig_source()
    engine = Engine(
        EngineConfig(k=10, budget_per_round=40, seed=1),
        schema=source.schema,
    )
    engine.load(source.batch_columns(800))
    for index, algorithm in enumerate(ALGORITHMS):
        engine.submit(
            EstimationTask(algorithm, [count_all()], algorithm, seed=index)
        )
    first = engine.run_round(parallel=4)
    engine.advance_round()
    second = engine.run_round(parallel=1)
    assert set(first) == set(second) == set(ALGORITHMS)
    with pytest.raises(ExperimentError):
        engine.run_round(parallel=0)


def test_parallelism_process_default_scopes():
    with using_parallelism(6):
        assert EngineConfig().resolved_parallelism() == 6
        assert EngineConfig(parallelism=2).resolved_parallelism() == 2
    assert EngineConfig().resolved_parallelism() == 1


def test_config_validation():
    with pytest.raises(ExperimentError):
        EngineConfig(parallelism=0)
    with pytest.raises(ExperimentError):
        EngineConfig(shards=0)
    with pytest.raises(ExperimentError):
        EngineConfig(backend="packed", shards=4)
    # shards + sharded backend is the supported combination.
    config = EngineConfig(backend="sharded", shards=4, parallelism=2)
    assert config.backend_factory_options() == {"shards": 4, "workers": 2}
    assert EngineConfig().backend_factory_options() == {}
    payload = config.to_dict()
    assert EngineConfig.from_dict(payload) == config
    # shards with backend=None is only valid when the *resolved* backend
    # is sharded — never silently dropped.
    dangling = EngineConfig(shards=4)
    with pytest.raises(ExperimentError):
        dangling.backend_factory_options()
    with pytest.raises(ExperimentError):
        Engine(dangling, schema=_fig_source().schema)
    # Same guarantee around an existing database: shards cannot apply to
    # a non-sharded store and must not vanish silently.
    from repro.hiddendb import HiddenDatabase

    packed_db = HiddenDatabase(_fig_source().schema, backend="packed")
    with pytest.raises(ExperimentError):
        Engine(EngineConfig(backend="sharded", shards=4), db=packed_db)
    sharded_db = HiddenDatabase(
        _fig_source().schema, backend="sharded",
        backend_options={"shards": 4},
    )
    engine = Engine(EngineConfig(backend="sharded", shards=4), db=sharded_db)
    assert engine.backend == "sharded"


class _ExplodingEstimator:
    def __init__(self, interface):
        self.interface = interface
        self.on_query = None

    def run_round(self):
        raise RuntimeError("estimator blew up")


def test_failed_task_keeps_completed_reports():
    """A task raising mid-round must not drop the reports of tasks that
    already ran (their budget was spent, their RNG advanced)."""
    source = _fig_source()
    for parallel in (1, 4):
        engine = Engine(
            EngineConfig(k=10, budget_per_round=40, seed=1),
            schema=source.schema,
        )
        engine.load(source.batch_columns(800))
        engine.submit(EstimationTask("ok", [count_all()], "RS", seed=0))
        engine.submit(EstimationTask(
            "boom",
            [count_all()],
            lambda interface, specs, **options: _ExplodingEstimator(
                interface
            ),
        ))
        with pytest.raises(RuntimeError):
            engine.run_round(parallel=parallel)
        ledger = engine.budget_ledger()
        assert ledger["ok"]["rounds"] == 1, parallel
        assert ledger["ok"]["queries_total"] > 0
        assert ledger["boom"]["rounds"] == 0
        assert [name for name, _ in engine.stream_reports()] == ["ok"]


def test_parallel_rejects_intra_round_mutation_hooks():
    source = _fig_source()
    engine = Engine(
        EngineConfig(k=10, budget_per_round=40, seed=1),
        schema=source.schema,
    )
    engine.load(source.batch_columns(500))
    handle = engine.submit(
        EstimationTask("rs", [count_all()], "RS", seed=0)
    )
    handle.estimator.on_query = lambda: None
    # A single hooked task runs sequentially whatever the worker count.
    assert "rs" in engine.run_round(parallel=2)
    engine.submit(EstimationTask("restart", [count_all()], "RESTART", seed=1))
    engine.advance_round()
    with pytest.raises(ExperimentError):
        engine.run_round(parallel=2)
    # Sequential execution still serves hooked estimators.
    assert set(engine.run_round(parallel=1)) == {"rs", "restart"}


# ----------------------------------------------------------------------
# Stress: parallel rounds under churn with concurrent observers
# ----------------------------------------------------------------------
def test_stress_concurrent_observers_under_churn():
    """Readers drain reports/ledgers from other threads while parallel
    rounds and churn alternate; the estimates still match the sequential
    twin bit for bit."""
    sequential = _run_engine("sharded", 1, "vectorized", 4, rounds=4)

    source = _fig_source()
    config = EngineConfig(
        backend="sharded", data_plane="vectorized", shards=4, parallelism=4,
        k=10, budget_per_round=60, seed=3,
    )
    engine = Engine(config, schema=source.schema)
    engine.load(source.batch_columns(2500))
    schedule = FreshTupleSchedule(
        source, inserts_per_round=40, delete_fraction=0.01
    )
    for index, algorithm in enumerate(ALGORITHMS):
        engine.submit(EstimationTask(
            algorithm, [count_all()], algorithm, seed=100 + index,
        ))

    stop = threading.Event()
    observer_errors: list[BaseException] = []

    def observe():
        try:
            while not stop.is_set():
                for name, report in engine.stream_reports():
                    assert name in ALGORITHMS
                    assert report.queries_used >= 0
                ledger = engine.budget_ledger()
                for row in ledger.values():
                    assert row["queries_total"] >= 0
        except BaseException as exc:  # pragma: no cover - failure path
            observer_errors.append(exc)

    observers = [threading.Thread(target=observe) for _ in range(3)]
    for thread in observers:
        thread.start()
    try:
        rng = random.Random(11)
        outputs = []
        for position in range(4):
            if position:
                engine.apply_updates(
                    lambda db: apply_round(db, schedule, rng)
                )
                engine.advance_round()
            reports = engine.run_round()
            outputs.append({
                name: (
                    report.estimates,
                    report.variances,
                    report.queries_used,
                )
                for name, report in reports.items()
            })
    finally:
        stop.set()
        for thread in observers:
            thread.join(timeout=10)
    assert not observer_errors
    assert outputs == sequential[:4]
    assert engine.budget_ledger() == sequential[4]


class _PlaneProbe:
    """Estimator stub that records the data plane its round ran under."""

    def __init__(self, interface, sink):
        self.interface = interface
        self.on_query = None
        self._sink = sink

    def run_round(self):
        from repro.hiddendb.store import get_data_plane

        self._sink.append(get_data_plane())
        return RoundReport(
            round_index=self.interface.current_round,
            estimates={"count": 0.0},
            variances={"count": 0.0},
            queries_used=0,
        )


def test_parallel_workers_inherit_callers_plane_override():
    """A caller-scoped context-local plane override must reach parallel
    workers (ContextVars do not cross thread boundaries by themselves)."""
    from repro.hiddendb.store import overriding_data_plane

    source = _fig_source()
    engine = Engine(
        EngineConfig(k=5, budget_per_round=10, seed=0),  # no plane pinned
        schema=source.schema,
    )
    engine.load(source.batch_columns(100))
    seen: list[str] = []
    for name in ("a", "b"):
        engine.submit(EstimationTask(
            name,
            [count_all()],
            lambda interface, specs, **options: _PlaneProbe(interface, seen),
        ))
    with overriding_data_plane("scalar"):
        engine.run_round(parallel=2)
    assert seen == ["scalar", "scalar"]


# ----------------------------------------------------------------------
# Cross-thread staleness detection
# ----------------------------------------------------------------------
def test_stale_result_error_across_threads():
    """A deferred columnar page read after *another thread* mutates the
    store raises StaleResultError instead of silently reflecting
    post-query state."""
    source = _fig_source()
    config = EngineConfig(data_plane="vectorized", k=10, seed=2)
    engine = Engine(config, schema=source.schema)
    engine.load(source.batch_columns(300))
    interface = TopKInterface(engine.db, k=10)
    interface.register_attr_order(tuple(range(10)))
    # Drill until some prefix is valid (1..k matches): that query result
    # carries the deferred columnar page.
    schema = source.schema
    result = None
    prefixes = [()]
    while prefixes and result is None:
        prefix = prefixes.pop(0)
        depth = len(prefix)
        if depth == schema.num_attributes:
            continue
        for value in range(schema.attributes[depth].size):
            extended = prefix + ((depth, value),)
            candidate = interface.search(ConjunctiveQuery(extended))
            if candidate.valid:
                result = candidate
                break
            if candidate.overflow:
                prefixes.append(extended)
    assert result is not None and result.page is not None

    mutated = threading.Event()

    def mutate():
        engine.apply_updates(lambda db: db.insert(
            bytes([0] * 10), (), tid=10_000_000
        ))
        mutated.set()

    thread = threading.Thread(target=mutate)
    thread.start()
    thread.join(timeout=10)
    assert mutated.is_set()
    with pytest.raises(StaleResultError):
        result.tuples  # noqa: B018 - the read is the assertion


# ----------------------------------------------------------------------
# Lock-narrowing regression: observers respond during a long round
# ----------------------------------------------------------------------
class _SlowEstimator:
    """Estimator stub whose round blocks until released."""

    def __init__(self, interface, specs, budget_per_round=1, seed=0,
                 started=None, release=None):
        self.interface = interface
        self.on_query = None
        self._started = started
        self._release = release

    def run_round(self):
        self._started.set()
        assert self._release.wait(timeout=30), "test released too late"
        return RoundReport(
            round_index=self.interface.current_round,
            estimates={"count": 1.0},
            variances={"count": 0.0},
            queries_used=1,
        )


def test_observers_not_blocked_behind_a_long_round():
    source = _fig_source()
    engine = Engine(
        EngineConfig(k=5, budget_per_round=10, seed=0),
        schema=source.schema,
    )
    engine.load(source.batch_columns(100))
    started = threading.Event()
    release = threading.Event()

    def factory(interface, specs, budget_per_round=1, seed=0, **options):
        return _SlowEstimator(
            interface, specs, budget_per_round, seed,
            started=started, release=release,
        )

    engine.submit(EstimationTask("slow", [count_all()], factory))
    worker = threading.Thread(target=engine.run_round)
    worker.start()
    try:
        assert started.wait(timeout=10)
        # The round is now in flight and will not finish until released;
        # session-lock observers must respond promptly regardless.
        deadline = time.monotonic() + 5.0
        ledger = engine.budget_ledger()
        drained = list(engine.stream_reports())
        names = engine.tasks()
        elapsed_ok = time.monotonic() < deadline
        assert elapsed_ok, "observers blocked behind the running round"
        assert ledger["slow"]["rounds"] == 0
        assert drained == []  # nothing recorded until the round completes
        assert names == ("slow",)
    finally:
        release.set()
        worker.join(timeout=30)
    assert not worker.is_alive()
    assert [name for name, _ in engine.stream_reports()] == ["slow"]
    assert engine.budget_ledger()["slow"]["rounds"] == 1


def test_cancel_during_round_keeps_log_consistent():
    """A task cancelled while its round is in flight keeps the produced
    report on its own (returned) handle, but the engine log carries no
    entry for it — log and ledger must agree about the name.  (A
    *resubmit* of the name waits for the round barrier, like any store
    access, so a fresh same-name task can never be misattributed.)"""
    source = _fig_source()
    engine = Engine(
        EngineConfig(k=5, budget_per_round=10, seed=0),
        schema=source.schema,
    )
    engine.load(source.batch_columns(100))
    started = threading.Event()
    release = threading.Event()

    def slow_factory(interface, specs, budget_per_round=1, seed=0, **opts):
        return _SlowEstimator(
            interface, specs, budget_per_round, seed,
            started=started, release=release,
        )

    engine.submit(EstimationTask("shared-name", [count_all()], slow_factory))
    worker = threading.Thread(target=engine.run_round)
    worker.start()
    try:
        assert started.wait(timeout=10)
        # cancel() needs only the session lock, so it interleaves the
        # in-flight round.
        old_handle = engine.cancel("shared-name")
    finally:
        release.set()
        worker.join(timeout=30)
    assert not worker.is_alive()
    # The cancelled handle keeps its own history; the engine log stays
    # silent about a handle that no longer owns the name.
    assert len(old_handle.reports) == 1
    assert old_handle.rounds_run == 1
    assert list(engine.stream_reports()) == []
    # Reusing the name afterwards starts from a clean ledger.
    new_handle = engine.submit(EstimationTask(
        "shared-name", [count_all()], "RS", seed=0,
    ))
    assert engine.budget_ledger()["shared-name"]["rounds"] == 0
    assert new_handle.rounds_run == 0
