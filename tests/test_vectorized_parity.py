"""Scalar-vs-vectorized data-plane parity.

The vectorized plane (columnar loads, batch encode, frozen heap blocks)
must be observationally indistinguishable from the per-tuple plane: same
tids, same values, same measures, same ranking scores, byte-identical
query results — on every storage backend.
"""

import random

import numpy as np
import pytest

from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.hiddendb import HiddenDatabase, TopKInterface
from repro.hiddendb.query import ConjunctiveQuery
from repro.hiddendb.store import get_data_plane, using_data_plane

#: A fig12-style schema scaled down: wide enough that keys exceed 64 bits.
WIDE_DOMAINS = [2 + (i % 7) for i in range(20)]

#: Narrow schema whose key universe fits int64 (exercises the other path).
NARROW_DOMAINS = [3, 4, 2]


def _tuple_snapshot(tuples):
    return sorted((t.tid, t.values, t.measures, t.score) for t in tuples)


def _page_snapshot(result):
    return (
        result.status.value,
        [(t.tid, t.values, t.measures, t.score) for t in result.tuples],
    )


def _run_workload(plane, backend, domains, rounds=4):
    """Load, churn, and query one database under the given data plane."""
    with using_data_plane(plane):
        source = skewed_source(domains, exponent=0.4, seed=3)
        db = HiddenDatabase(source.schema, backend=backend)
        db.insert_many(source.batch_columns(3000, distinct=False))
        schedule = FreshTupleSchedule(
            source, inserts_per_round=80, delete_fraction=0.01
        )
        schedule_rng = random.Random(5)
        for _ in range(rounds):
            apply_round(db, schedule, schedule_rng)
            db.advance_round()
        interface = TopKInterface(db, k=25)
        order = tuple(range(len(domains)))
        interface.register_attr_order(order)
        pages = []
        queries = [
            ConjunctiveQuery(()),
            ConjunctiveQuery(((0, 1),)),
            ConjunctiveQuery(((0, 0), (1, 2))),
            ConjunctiveQuery(((2, 1),)),  # ad-hoc: falls back to a scan
        ]
        for query in queries:
            pages.append(_page_snapshot(interface.search(query)))
        return _tuple_snapshot(db.tuples()), pages


class TestLoadAndQueryParity:
    @pytest.mark.parametrize("backend", ["blocked", "packed"])
    @pytest.mark.parametrize("domains", [WIDE_DOMAINS, NARROW_DOMAINS])
    def test_byte_identical_results(self, backend, domains):
        vector_content, vector_pages = _run_workload(
            "vectorized", backend, domains
        )
        scalar_content, scalar_pages = _run_workload(
            "scalar", backend, domains
        )
        assert vector_content == scalar_content
        assert vector_pages == scalar_pages

    def test_default_plane_is_vectorized(self):
        assert get_data_plane() in ("vectorized", "scalar")

    def test_payload_list_and_batch_loads_agree(self):
        source_a = skewed_source(NARROW_DOMAINS, exponent=0.6, seed=9)
        source_b = skewed_source(NARROW_DOMAINS, exponent=0.6, seed=9)
        db_a = HiddenDatabase(source_a.schema)
        db_b = HiddenDatabase(source_b.schema)
        db_a.insert_many(source_a.batch(200, distinct=False))
        db_b.insert_many(source_b.batch_columns(200, distinct=False))
        assert _tuple_snapshot(db_a.tuples()) == _tuple_snapshot(db_b.tuples())

    def test_batch_after_scalar_inserts_keeps_parity(self):
        # A batch arriving after per-tuple inserts must not iterate ahead
        # of them (blocks come first), so it takes the per-tuple path.
        def population(plane):
            with using_data_plane(plane):
                source = skewed_source(NARROW_DOMAINS, seed=2)
                db = HiddenDatabase(source.schema)
                db.insert(b"\x01\x02\x01")
                db.insert_many(source.batch_columns(50, distinct=False))
                return (
                    [t.tid for t in db.tuples()],
                    db.store.random_tids(random.Random(0), 10),
                )

        assert population("vectorized") == population("scalar")

    def test_inserted_batch_is_not_aliased(self):
        source = skewed_source(
            NARROW_DOMAINS, measures=("m",),
            measure_sampler=lambda rng: (1.0,), seed=7,
        )
        batch = source.batch_columns(10, distinct=False)
        db1 = HiddenDatabase(source.schema)
        db2 = HiddenDatabase(source.schema)
        db1.insert_many(batch)
        db2.insert_many(batch)
        db1.update_measures(0, (99.0,))
        assert float(batch.measures[0, 0]) == 1.0  # caller's batch intact
        assert db2.store.get(0).measures == (1.0,)  # second db intact
        assert db1.store.get(0).measures == (99.0,)

    def test_sum_ground_truth_bit_identical_across_planes(self):
        import random as pyrandom

        from repro.core.aggregates import sum_measure

        mrng = pyrandom.Random(11)

        def truth(plane):
            with using_data_plane(plane):
                source = skewed_source(
                    NARROW_DOMAINS, measures=("m",),
                    measure_sampler=lambda rng: (rng.uniform(0, 1e16),),
                    seed=4,
                )
                db = HiddenDatabase(source.schema)
                db.insert_many(source.batch_columns(500, distinct=False))
                for _ in range(37):  # a scalar remainder after the block
                    db.insert(b"\x01\x00\x01", (mrng.uniform(0, 1e16),))
                return sum_measure(source.schema, "m").ground_truth(db)

        a = truth("vectorized")
        mrng = pyrandom.Random(11)
        b = truth("scalar")
        assert a == b  # bit-identical, not approx

    def test_random_tids_identical_across_planes(self):
        def population(plane):
            with using_data_plane(plane):
                source = skewed_source(NARROW_DOMAINS, seed=2)
                db = HiddenDatabase(source.schema)
                db.insert_many(source.batch_columns(500, distinct=False))
                db.delete(10)
                db.insert(b"\x01\x02\x01")
                return db.store.random_tids(random.Random(0), 50)

        assert population("vectorized") == population("scalar")


class TestBlockHeapSemantics:
    def _loaded_db(self, n=400):
        # Force the vectorized plane: these tests exercise block-heap
        # internals and must not depend on the ambient REPRO_DATA_PLANE.
        with using_data_plane("vectorized"):
            source = skewed_source(NARROW_DOMAINS, seed=7)
            db = HiddenDatabase(source.schema)
            db.insert_many(source.batch_columns(n, distinct=False))
        return db

    def test_get_materializes_block_rows(self):
        db = self._loaded_db()
        t = db.store.get(5)
        assert t.tid == 5
        assert isinstance(t.values, bytes) and len(t.values) == 3
        assert isinstance(t.score, float)

    def test_get_missing_raises_keyerror(self):
        db = self._loaded_db()
        with pytest.raises(KeyError):
            db.store.get(10_000)

    def test_delete_from_block(self):
        db = self._loaded_db(100)
        before = len(db)
        t = db.delete(17)
        assert t.tid == 17
        assert len(db) == before - 1
        assert 17 not in db.store
        with pytest.raises(KeyError):
            db.delete(17)

    def test_replace_updates_block_row_in_place(self):
        source = skewed_source(
            NARROW_DOMAINS, measures=("m",),
            measure_sampler=lambda rng: (1.0,), seed=7,
        )
        db = HiddenDatabase(source.schema)
        db.insert_many(source.batch_columns(50, distinct=False))
        updated = db.update_measures(3, (42.0,))
        assert updated.measures == (42.0,)
        assert db.store.get(3).measures == (42.0,)
        assert len(db) == 50
        # The row stays in its block, so heap iteration order (and with
        # it random_tids parity with the scalar plane) is unchanged.
        assert [t.tid for t in db.tuples()] == list(range(50))

    def test_measure_score_batch_does_not_alias_measures(self):
        from repro.hiddendb import MeasureScore

        source = skewed_source(
            NARROW_DOMAINS, measures=("price",),
            measure_sampler=lambda rng: (10.0,), seed=7,
        )
        db = HiddenDatabase(source.schema, ranking=MeasureScore("price"))
        db.insert_many(source.batch_columns(30, distinct=False))
        db.update_measures(0, (99.0,))
        assert db.store.get(0).measures == (99.0,)
        # The score was assigned at insert time and must not change.
        assert db.store.get(0).score == 10.0

    def test_random_tids_parity_survives_measure_drift(self):
        def sample(plane):
            with using_data_plane(plane):
                source = skewed_source(
                    NARROW_DOMAINS, measures=("m",),
                    measure_sampler=lambda rng: (1.0,), seed=7,
                )
                db = HiddenDatabase(source.schema)
                db.insert_many(source.batch_columns(40, distinct=False))
                db.update_measures(3, (9.0,))
                db.update_measures(11, (8.0,))
                return db.store.random_tids(random.Random(7), 10)

        assert sample("vectorized") == sample("scalar")

    def test_out_of_order_batches_take_the_per_tuple_path(self):
        from repro.errors import SchemaError
        from repro.hiddendb.tuples import TupleBatch

        def batch(tids):
            n = len(tids)
            return TupleBatch(
                np.zeros((n, 3), dtype=np.uint8),
                np.empty((n, 0), dtype=np.float64),
                tids=np.array(tids), scores=np.zeros(n),
            )

        db = HiddenDatabase(skewed_source(NARROW_DOMAINS, seed=1).schema)
        db.store.insert_batch(batch([10, 20]))
        # Tids interleaving an existing block fall back to per-tuple
        # inserts (dict side), staying reachable and duplicate-checked.
        db.store.insert_batch(batch([12, 15]))
        assert len(db) == 4
        assert sorted(t.tid for t in db.tuples()) == [10, 12, 15, 20]
        assert db.store.get(20).tid == 20
        with pytest.raises(SchemaError):
            db.store.insert_batch(batch([15]))  # duplicate, either form
        with pytest.raises(SchemaError):
            db.store.insert_batch(batch([20]))
        db.store.insert_batch(batch([21, 30]))  # strictly above: block
        assert len(db) == 6

    def test_fully_dead_blocks_are_released(self):
        db = self._loaded_db(30)
        assert len(db.store._blocks) == 1
        for tid in range(30):
            db.delete(tid)
        assert len(db) == 0
        assert db.store._blocks == []
        db.insert(b"\x00\x00\x00")  # heap still functional afterwards
        assert len(db) == 1

    def test_duplicate_tid_rejected_across_heap_forms(self):
        from repro.errors import SchemaError
        from repro.hiddendb.tuples import TupleBatch

        db = self._loaded_db(20)
        with pytest.raises(SchemaError):
            db.insert(b"\x00\x00\x00", tid=5)
        batch = TupleBatch(
            np.zeros((2, 3), dtype=np.uint8),
            np.empty((2, 0), dtype=np.float64),
            tids=np.array([5, 100]),
            scores=np.zeros(2),
        )
        with pytest.raises(SchemaError):
            db.store.insert_batch(batch)

    def test_index_backfill_covers_blocks_and_dict(self):
        db = self._loaded_db(300)
        db.insert(b"\x00\x00\x00")
        index = db.store.ensure_index((0, 1, 2))
        assert len(index) == len(db) == 301

    def test_ground_truth_matches_scan_on_blocks(self):
        from repro.core.aggregates import count_all, count_where

        source = skewed_source(NARROW_DOMAINS, seed=4)
        db = HiddenDatabase(source.schema)
        db.insert_many(source.batch_columns(500, distinct=False))
        db.delete(0)
        spec = count_all()
        assert spec.ground_truth(db) == len(db) == 499
        where_spec = count_where(source.schema, {"A0": "A0_1"})
        expected = sum(1 for t in db.tuples() if t.values[0] == 1)
        assert where_spec.ground_truth(db) == expected
