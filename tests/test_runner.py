"""Integration tests for the experiment runner."""

import pytest

from repro import ExperimentError, count_all
from repro.data import FreshTupleSchedule, skewed_source
from repro.experiments import EstimatorFactory, Experiment
from repro.hiddendb.database import HiddenDatabase


def tiny_env(seed: int):
    source = skewed_source([6, 7, 8, 9], seed=seed)
    db = HiddenDatabase(source.schema)
    for values, measures in source.batch(300):
        db.insert(values, measures)
    schedule = FreshTupleSchedule(
        source, inserts_per_round=5, deletes_per_round=5
    )
    return db, schedule


def count_specs(schema):
    return [count_all()]


class TestRoundMode:
    def test_full_run_shape(self):
        experiment = Experiment(
            "t", tiny_env, count_specs, k=10, budget_per_round=40,
            rounds=4, trials=2, base_seed=1,
        )
        result = experiment.run()
        assert result.num_trials == 2
        assert result.num_rounds == 4
        assert set(result.estimates) == {"RESTART", "REISSUE", "RS"}

    def test_budgets_respected_everywhere(self):
        experiment = Experiment(
            "t", tiny_env, count_specs, k=10, budget_per_round=25,
            rounds=3, trials=1,
        )
        result = experiment.run()
        for estimator in result.estimator_names:
            for trial in result.queries[estimator]:
                assert all(q <= 25 for q in trial)

    def test_estimates_are_sane(self):
        experiment = Experiment(
            "t", tiny_env, count_specs, k=10, budget_per_round=60,
            rounds=3, trials=2,
        )
        result = experiment.run()
        for estimator in result.estimator_names:
            assert result.tail_rel_error(estimator, "count", tail=2) < 1.0

    def test_custom_estimator_set(self):
        experiment = Experiment(
            "t", tiny_env, count_specs, k=10, budget_per_round=30,
            rounds=2, trials=1,
            estimators=[EstimatorFactory("only", "REISSUE")],
        )
        result = experiment.run()
        assert result.estimator_names == ["only"]

    def test_validation(self):
        with pytest.raises(ExperimentError):
            Experiment("t", tiny_env, count_specs, k=5,
                       budget_per_round=10, rounds=0)
        with pytest.raises(ExperimentError):
            EstimatorFactory("x", "NOPE")


class TestIntraRoundMode:
    def test_runs_and_records(self):
        experiment = Experiment(
            "t", tiny_env, count_specs, k=10, budget_per_round=40,
            rounds=3, trials=1,
            estimators=[EstimatorFactory("REISSUE", "REISSUE")],
            intra_round=True,
        )
        result = experiment.run()
        assert result.num_rounds == 3
        assert result.tail_rel_error("REISSUE", "count", tail=2) < 1.0

    def test_two_estimators_each_get_own_environment(self):
        experiment = Experiment(
            "t", tiny_env, count_specs, k=10, budget_per_round=40,
            rounds=2, trials=1,
            estimators=[
                EstimatorFactory("REISSUE", "REISSUE"),
                EstimatorFactory("RS", "RS"),
            ],
            intra_round=True,
        )
        result = experiment.run()
        assert set(result.estimates) == {"REISSUE", "RS"}
