"""Unit and property tests for the blocked sorted list."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hiddendb.store import SortedKeyList


class TestBasics:
    def test_empty(self):
        keys = SortedKeyList()
        assert len(keys) == 0
        assert keys.rank(10) == 0
        assert 5 not in keys

    def test_bulk_construction_sorted(self):
        keys = SortedKeyList([5, 1, 3, 2, 4])
        assert list(keys) == [1, 2, 3, 4, 5]

    def test_add_and_contains(self):
        keys = SortedKeyList()
        keys.add(10)
        keys.add(5)
        assert 10 in keys and 5 in keys and 7 not in keys
        assert list(keys) == [5, 10]

    def test_duplicates_allowed(self):
        keys = SortedKeyList([3, 3, 3])
        keys.add(3)
        assert len(keys) == 4
        assert keys.count_range(3, 4) == 4

    def test_remove(self):
        keys = SortedKeyList([1, 2, 3])
        keys.remove(2)
        assert list(keys) == [1, 3]

    def test_remove_missing_raises(self):
        keys = SortedKeyList([1, 3])
        with pytest.raises(ValueError):
            keys.remove(2)

    def test_remove_empties_block(self):
        keys = SortedKeyList([7])
        keys.remove(7)
        assert len(keys) == 0
        keys.check_invariants()

    def test_rank(self):
        keys = SortedKeyList([10, 20, 30])
        assert keys.rank(5) == 0
        assert keys.rank(10) == 0
        assert keys.rank(11) == 1
        assert keys.rank(35) == 3

    def test_count_range(self):
        keys = SortedKeyList(range(0, 100, 10))
        assert keys.count_range(10, 40) == 3
        assert keys.count_range(40, 10) == 0
        assert keys.count_range(0, 1000) == 10

    def test_iter_range(self):
        keys = SortedKeyList(range(10))
        assert list(keys.iter_range(3, 7)) == [3, 4, 5, 6]
        assert list(keys.iter_range(7, 3)) == []

    def test_block_splitting(self):
        keys = SortedKeyList(block_size=4)
        for value in range(100):
            keys.add(value)
        keys.check_invariants()
        assert list(keys) == list(range(100))

    def test_interleaved_adds_and_removes(self):
        keys = SortedKeyList(block_size=8)
        rng = random.Random(0)
        reference: list[int] = []
        for _ in range(2000):
            if reference and rng.random() < 0.45:
                victim = rng.choice(reference)
                reference.remove(victim)
                keys.remove(victim)
            else:
                value = rng.randrange(500)
                reference.append(value)
                keys.add(value)
        keys.check_invariants()
        assert list(keys) == sorted(reference)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=50)),
        max_size=120,
    )
)
def test_matches_reference_multiset(operations):
    """Random add/remove streams agree with a plain sorted list."""
    keys = SortedKeyList(block_size=4)
    reference: list[int] = []
    for is_remove, value in operations:
        if is_remove and value in reference:
            reference.remove(value)
            keys.remove(value)
        elif not is_remove:
            reference.append(value)
            keys.add(value)
    reference.sort()
    keys.check_invariants()
    assert list(keys) == reference
    for probe in (0, 10, 25, 51):
        expected_rank = sum(1 for v in reference if v < probe)
        assert keys.rank(probe) == expected_rank


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), max_size=150),
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-1000, max_value=1000),
)
def test_count_and_iter_range_agree(values, a, b):
    keys = SortedKeyList(values, block_size=8)
    lo, hi = min(a, b), max(a, b)
    in_range = [v for v in sorted(values) if lo <= v < hi]
    assert keys.count_range(lo, hi) == len(in_range)
    assert list(keys.iter_range(lo, hi)) == in_range
