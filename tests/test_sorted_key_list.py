"""Unit and property tests for the blocked sorted list."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hiddendb.store import SortedKeyList


class TestBasics:
    def test_empty(self):
        keys = SortedKeyList()
        assert len(keys) == 0
        assert keys.rank(10) == 0
        assert 5 not in keys

    def test_bulk_construction_sorted(self):
        keys = SortedKeyList([5, 1, 3, 2, 4])
        assert list(keys) == [1, 2, 3, 4, 5]

    def test_add_and_contains(self):
        keys = SortedKeyList()
        keys.add(10)
        keys.add(5)
        assert 10 in keys and 5 in keys and 7 not in keys
        assert list(keys) == [5, 10]

    def test_duplicates_allowed(self):
        keys = SortedKeyList([3, 3, 3])
        keys.add(3)
        assert len(keys) == 4
        assert keys.count_range(3, 4) == 4

    def test_remove(self):
        keys = SortedKeyList([1, 2, 3])
        keys.remove(2)
        assert list(keys) == [1, 3]

    def test_remove_missing_raises(self):
        keys = SortedKeyList([1, 3])
        with pytest.raises(ValueError):
            keys.remove(2)

    def test_remove_empties_block(self):
        keys = SortedKeyList([7])
        keys.remove(7)
        assert len(keys) == 0
        keys.check_invariants()

    def test_rank(self):
        keys = SortedKeyList([10, 20, 30])
        assert keys.rank(5) == 0
        assert keys.rank(10) == 0
        assert keys.rank(11) == 1
        assert keys.rank(35) == 3

    def test_count_range(self):
        keys = SortedKeyList(range(0, 100, 10))
        assert keys.count_range(10, 40) == 3
        assert keys.count_range(40, 10) == 0
        assert keys.count_range(0, 1000) == 10

    def test_iter_range(self):
        keys = SortedKeyList(range(10))
        assert list(keys.iter_range(3, 7)) == [3, 4, 5, 6]
        assert list(keys.iter_range(7, 3)) == []

    def test_block_splitting(self):
        keys = SortedKeyList(block_size=4)
        for value in range(100):
            keys.add(value)
        keys.check_invariants()
        assert list(keys) == list(range(100))

    def test_interleaved_adds_and_removes(self):
        keys = SortedKeyList(block_size=8)
        rng = random.Random(0)
        reference: list[int] = []
        for _ in range(2000):
            if reference and rng.random() < 0.45:
                victim = rng.choice(reference)
                reference.remove(victim)
                keys.remove(victim)
            else:
                value = rng.randrange(500)
                reference.append(value)
                keys.add(value)
        keys.check_invariants()
        assert list(keys) == sorted(reference)


class TestEdgeCases:
    def test_split_exactly_at_twice_block_size(self):
        """A block holds up to 2*block_size keys and splits on the next add."""
        block_size = 4
        keys = SortedKeyList(block_size=block_size)
        for value in range(2 * block_size):
            keys.add(value)
        assert len(keys._blocks) == 1
        assert len(keys._blocks[0]) == 2 * block_size
        keys.add(2 * block_size)  # 2*block_size + 1 keys -> split
        assert len(keys._blocks) == 2
        keys.check_invariants()
        assert list(keys) == list(range(2 * block_size + 1))

    def test_remove_empties_middle_block(self):
        """Draining an interior block removes it without orphaning maxes."""
        block_size = 4
        keys = SortedKeyList(range(3 * block_size), block_size=block_size)
        assert len(keys._blocks) == 3
        for value in range(block_size, 2 * block_size):
            keys.remove(value)
        assert len(keys._blocks) == 2
        keys.check_invariants()
        expected = list(range(block_size)) + list(
            range(2 * block_size, 3 * block_size)
        )
        assert list(keys) == expected
        # Rank across the removed span stays consistent.
        assert keys.rank(2 * block_size) == block_size

    def test_iter_range_half_open_boundaries(self):
        """iter_range includes lo, excludes hi, duplicates intact."""
        keys = SortedKeyList([10, 10, 20, 20, 30], block_size=2)
        assert list(keys.iter_range(10, 30)) == [10, 10, 20, 20]
        assert list(keys.iter_range(10, 31)) == [10, 10, 20, 20, 30]
        assert list(keys.iter_range(11, 30)) == [20, 20]
        assert list(keys.iter_range(10, 10)) == []
        assert keys.count_range(10, 30) == 4

    def test_bulk_add_small_and_rebuild_paths(self):
        keys = SortedKeyList(range(0, 100, 2), block_size=8)
        keys.bulk_add([1, 3, 5])  # small batch: insertion path
        keys.check_invariants()
        keys.bulk_add(range(101, 200))  # large batch: rebuild path
        keys.check_invariants()
        expected = sorted(
            list(range(0, 100, 2)) + [1, 3, 5] + list(range(101, 200))
        )
        assert list(keys) == expected

    def test_bulk_remove_small_and_rebuild_paths(self):
        values = list(range(100))
        keys = SortedKeyList(values, block_size=8)
        keys.bulk_remove([0, 99])  # small batch: per-key path
        keys.check_invariants()
        keys.bulk_remove(range(1, 60))  # large batch: rebuild path
        keys.check_invariants()
        assert list(keys) == list(range(60, 99))

    def test_bulk_remove_missing_raises(self):
        keys = SortedKeyList([1, 2, 3], block_size=4)
        with pytest.raises(ValueError):
            keys.bulk_remove([1, 2, 3, 4])
        keys = SortedKeyList(range(100), block_size=4)
        with pytest.raises(ValueError):
            keys.bulk_remove(list(range(90)) + [1000])


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=50)),
        max_size=120,
    )
)
def test_matches_reference_multiset(operations):
    """Random add/remove streams agree with a plain sorted list."""
    keys = SortedKeyList(block_size=4)
    reference: list[int] = []
    for is_remove, value in operations:
        if is_remove and value in reference:
            reference.remove(value)
            keys.remove(value)
        elif not is_remove:
            reference.append(value)
            keys.add(value)
    reference.sort()
    keys.check_invariants()
    assert list(keys) == reference
    for probe in (0, 10, 25, 51):
        expected_rank = sum(1 for v in reference if v < probe)
        assert keys.rank(probe) == expected_rank


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), max_size=150),
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-1000, max_value=1000),
)
def test_count_and_iter_range_agree(values, a, b):
    keys = SortedKeyList(values, block_size=8)
    lo, hi = min(a, b), max(a, b)
    in_range = [v for v in sorted(values) if lo <= v < hi]
    assert keys.count_range(lo, hi) == len(in_range)
    assert list(keys.iter_range(lo, hi)) == in_range
