"""Unit tests for schemas, attributes, and value vectors."""

import pytest

from repro import Attribute, Schema, SchemaError, boolean_schema


class TestAttribute:
    def test_explicit_values(self):
        attr = Attribute("color", ("red", "blue"))
        assert attr.size == 2
        assert attr.values == ("red", "blue")

    def test_generated_values_from_size(self):
        attr = Attribute("x", 4)
        assert attr.size == 4
        assert attr.values[0] == "x_0"

    def test_index_of(self):
        attr = Attribute("color", ("red", "blue"))
        assert attr.index_of("blue") == 1

    def test_index_of_unknown_raises(self):
        attr = Attribute("color", ("red", "blue"))
        with pytest.raises(SchemaError):
            attr.index_of("green")

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", ())

    def test_zero_size_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", 0)

    def test_oversized_domain_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", 256)

    def test_duplicate_values_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", ("a", "a"))


class TestSchema:
    def test_basic_properties(self, small_schema):
        assert small_schema.num_attributes == 3
        assert small_schema.domain_sizes == (2, 3, 4)
        assert small_schema.measures == ("price",)

    def test_leaf_space_size(self, small_schema):
        assert small_schema.leaf_space_size() == 24

    def test_attribute_index(self, small_schema):
        assert small_schema.attribute_index("size") == 1

    def test_attribute_index_unknown(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.attribute_index("nope")

    def test_measure_index(self, small_schema):
        assert small_schema.measure_index("price") == 0

    def test_measure_index_unknown(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.measure_index("weight")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a", 2), Attribute("a", 3)])

    def test_duplicate_measures_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a", 2)], measures=("m", "m"))

    def test_validate_values_ok(self, small_schema):
        small_schema.validate_values(bytes([1, 2, 3]))

    def test_validate_values_wrong_length(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.validate_values(bytes([1, 2]))

    def test_validate_values_out_of_range(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.validate_values(bytes([2, 0, 0]))

    def test_labels_for(self, small_schema):
        assert small_schema.labels_for(bytes([1, 0, 3])) == ("blue", "s", "d")

    def test_boolean_schema(self):
        schema = boolean_schema(5)
        assert schema.num_attributes == 5
        assert schema.domain_sizes == (2,) * 5
        assert schema.leaf_space_size() == 32
