"""Smoke tests: every figure builder runs at tiny scale and returns sane data.

These are integration tests of the whole stack (data -> estimators ->
runner -> metrics -> figure); the benchmarks run the same builders at
representative scale and assert the paper's shapes.
"""

import math

from repro.experiments.figures import (
    FIGURES,
    run_ablation_attr_order,
    run_ablation_bootstrap,
    run_ablation_client_cache,
    run_ablation_parent_check,
    run_fig02,
    run_fig04,
    run_fig08,
    run_fig10,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig18,
    run_fig19,
    run_fig20,
    run_fig21,
)

TINY = dict(scale=0.01, trials=1, rounds=3, budget=60)


def assert_sane(figure, expect_series):
    assert figure.xs, figure.figure_id
    assert set(expect_series) <= set(figure.series)
    for values in figure.series.values():
        assert len(values) == len(figure.xs)
    assert figure.to_text()  # renders without crashing
    assert figure.table()


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {f"fig{i:02d}" for i in range(2, 22)}
        assert expected <= set(FIGURES)
        assert len(FIGURES) == 24  # 20 figures + 4 ablations

    def test_registry_values_callable(self):
        assert all(callable(f) for f in FIGURES.values())


class TestErrorSeriesFigures:
    def test_fig02(self):
        figure = run_fig02(**TINY)
        assert_sane(figure, {"RESTART", "REISSUE", "RS"})
        assert all(
            not math.isnan(v) for v in figure.series["RESTART"]
        )

    def test_fig04_intra(self):
        figure = run_fig04(**TINY)
        assert_sane(figure, {"REISSUE", "REISSUE(intra)", "RS", "RS(intra)"})


class TestSweepFigures:
    def test_fig08(self):
        figure = run_fig08(
            scale=0.01, trials=1, rounds=3, budget=60, k_values=(300, 900)
        )
        assert_sane(figure, {"RESTART", "REISSUE", "RS"})
        assert figure.xs == [300, 900]

    def test_fig10(self):
        figure = run_fig10(trials=1, rounds=3, budget=40,
                           net_inserts=(-10, 10), k=20)
        assert figure.xs == [-10, 10]

    def test_fig12(self):
        figure = run_fig12(trials=1, rounds=2, budget=60,
                           sizes=(1000, 5000), k=20)
        assert figure.xs == [1000, 5000]

    def test_fig13(self):
        figure = run_fig13(scale=0.01, trials=1, rounds=3, budget=80)
        assert figure.xs == [0, 1, 2, 3]
        assert_sane(figure, {"RESTART", "REISSUE", "RS"})


class TestTransRoundFigures:
    def test_fig14(self):
        figure = run_fig14(scale=0.01, trials=1, rounds=4, budget=60,
                           windows=(2, 3))
        assert figure.xs == [2, 3]

    def test_fig15(self):
        figure = run_fig15(**TINY)
        assert_sane(figure, {"RESTART", "REISSUE", "RS"})
        assert figure.log_y


class TestEfficiencyFigures:
    def test_fig18(self):
        figure = run_fig18(
            scale=0.01, trials=1, rounds=3,
            targets=(0.5,), budget_grid=(40, 120),
        )
        assert figure.xs == [0.5]

    def test_fig19(self):
        figure = run_fig19(**TINY)
        assert_sane(figure, {"RESTART", "REISSUE", "RS"})
        for values in figure.series.values():
            assert values == sorted(values)  # cumulative => nondecreasing


class TestLiveFigures:
    def test_fig20(self):
        figure = run_fig20(trials=1, rounds=3, budget=120, catalog_size=800)
        assert_sane(figure, {"avg_price(RS)", "avg_price(truth)"})

    def test_fig21(self):
        figure = run_fig21(trials=1, rounds=2, budget=80, catalog_size=800)
        assert "truth-FIX" in figure.series
        assert "RS-BID" in figure.series


class TestAblations:
    def test_parent_check(self):
        figure = run_ablation_parent_check(scale=0.01, trials=1, rounds=3,
                                           budget=60)
        assert_sane(figure, {"REISSUE-strict", "REISSUE-lazy"})

    def test_client_cache(self):
        figure = run_ablation_client_cache(scale=0.01, trials=1, rounds=3,
                                           budget=60)
        assert_sane(figure, {"RESTART", "RESTART-cache", "REISSUE"})

    def test_bootstrap(self):
        figure = run_ablation_bootstrap(scale=0.01, trials=1, rounds=3,
                                        budget=80, pilot_counts=(4, 10))
        assert "RS(w=4)" in figure.series

    def test_attr_order(self):
        figure = run_ablation_attr_order(scale=0.01, trials=1, rounds=3,
                                         budget=60)
        assert_sane(figure, {"REISSUE-small-first", "REISSUE-large-first"})
