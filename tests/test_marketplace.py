"""Unit tests for the Amazon/eBay marketplace surrogates."""

import random

import pytest

from repro.data import apply_round
from repro.marketplace import amazon_watch_env, ebay_watch_env, watch_schema
from repro.marketplace.ebay import BID_VALUE, FORMAT_ATTR_INDEX


class TestSchema:
    def test_base_schema(self):
        schema = watch_schema()
        assert "gender" in [a.name for a in schema.attributes]
        assert schema.measures == ("price", "base_price")

    def test_ebay_schema_adds_format(self):
        schema = watch_schema(include_listing_format=True)
        assert schema.attributes[FORMAT_ATTR_INDEX].name == "format"


class TestAmazon:
    def test_initial_catalog(self):
        db, schedule = amazon_watch_env(seed=0, catalog_size=800)
        assert len(db) == 800

    def test_promotion_drops_and_restores_average_price(self):
        db, schedule = amazon_watch_env(
            seed=0, catalog_size=800, churn_per_round=0,
            promo_rounds=(2,), promo_discount=0.5, promo_fraction=1.0,
        )
        rng = random.Random(0)

        def average_price():
            return sum(t.measures[0] for t in db.tuples()) / len(db)

        baseline = average_price()
        apply_round(db, schedule, rng)  # entering round 2: promo applies
        db.advance_round()
        # Discounted prices are rounded to cents, so the average is only
        # approximately baseline/2; the restore is exact.
        assert average_price() == pytest.approx(baseline * 0.5, rel=1e-3)
        apply_round(db, schedule, rng)  # entering round 3: promo reverts
        db.advance_round()
        assert average_price() == pytest.approx(baseline, rel=1e-9)

    def test_churn_preserves_size(self):
        db, schedule = amazon_watch_env(
            seed=1, catalog_size=500, churn_per_round=25, promo_rounds=(),
        )
        rng = random.Random(1)
        apply_round(db, schedule, rng)
        assert len(db) == 500


class TestEbay:
    def test_fix_prices_above_bid_snapshots(self):
        db, _ = ebay_watch_env(seed=2, catalog_size=2000)
        fix, bid = [], []
        for t in db.tuples():
            (bid if t.values[FORMAT_ATTR_INDEX] == BID_VALUE else fix).append(
                t.measures[0]
            )
        assert fix and bid
        assert sum(fix) / len(fix) > 1.5 * sum(bid) / len(bid)

    def test_bid_prices_climb_with_bumps(self):
        db, schedule = ebay_watch_env(
            seed=3, catalog_size=2000, bid_bump_fraction=0.5,
            bid_churn_fraction=0.0, fix_churn_fraction=0.0,
        )
        rng = random.Random(3)

        def bid_average():
            prices = [
                t.measures[0]
                for t in db.tuples()
                if t.values[FORMAT_ATTR_INDEX] == BID_VALUE
            ]
            return sum(prices) / len(prices)

        before = bid_average()
        apply_round(db, schedule, rng)
        assert bid_average() > before

    def test_bumps_never_exceed_base(self):
        db, schedule = ebay_watch_env(
            seed=4, catalog_size=1000, bid_bump_fraction=1.0,
            bid_churn_fraction=0.0, fix_churn_fraction=0.0,
        )
        rng = random.Random(4)
        for _ in range(10):
            apply_round(db, schedule, rng)
            db.advance_round()
        for t in db.tuples():
            assert t.measures[0] <= t.measures[1] + 1e-9

    def test_churn_replaces_listings(self):
        db, schedule = ebay_watch_env(
            seed=5, catalog_size=1000, bid_bump_fraction=0.0,
            bid_churn_fraction=0.2, fix_churn_fraction=0.0,
        )
        before_tids = {t.tid for t in db.tuples()}
        apply_round(db, schedule, random.Random(5))
        after_tids = {t.tid for t in db.tuples()}
        assert before_tids != after_tids
        assert len(after_tids) == pytest.approx(len(before_tids), abs=5)
