"""Unit and property tests for the mixed-radix prefix index."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Attribute, Schema, SchemaError
from repro.hiddendb.store import PrefixIndex
from repro.hiddendb.tuples import make_tuple


@pytest.fixture
def index(small_schema):
    return PrefixIndex(small_schema, (0, 1, 2), block_size=8)


class TestEncoding:
    def test_order_must_be_permutation(self, small_schema):
        with pytest.raises(SchemaError):
            PrefixIndex(small_schema, (0, 1))
        with pytest.raises(SchemaError):
            PrefixIndex(small_schema, (0, 1, 1))

    def test_encode_monotone_in_order(self, index):
        a = index.encode(make_tuple(0, [0, 0, 0]))
        b = index.encode(make_tuple(0, [0, 0, 1]))
        c = index.encode(make_tuple(0, [0, 1, 0]))
        d = index.encode(make_tuple(0, [1, 0, 0]))
        assert a < b < c < d

    def test_tid_breaks_ties(self, index):
        a = index.encode(make_tuple(3, [1, 2, 3]))
        b = index.encode(make_tuple(4, [1, 2, 3]))
        assert a < b

    def test_prefix_range_nesting(self, index):
        outer = index.prefix_range([1])
        inner = index.prefix_range([1, 2])
        assert outer[0] <= inner[0] < inner[1] <= outer[1]

    def test_root_range_covers_everything(self, index):
        lo, hi = index.prefix_range([])
        full = index.encode(make_tuple(123, [1, 2, 3]))
        assert lo <= full < hi

    def test_respects_custom_order(self, small_schema):
        index = PrefixIndex(small_schema, (2, 0, 1))
        # First attribute of the order is "kind" (index 2).
        a = index.encode(make_tuple(0, [1, 2, 0]))
        b = index.encode(make_tuple(0, [0, 0, 1]))
        assert a < b  # kind=0 sorts before kind=1 regardless of the rest


class TestCounting:
    def test_count_and_iter_match_naive(self, small_schema):
        rng = random.Random(3)
        index = PrefixIndex(small_schema, (0, 1, 2), block_size=8)
        tuples = []
        for tid in range(200):
            t = make_tuple(tid, [rng.randrange(2), rng.randrange(3),
                                 rng.randrange(4)])
            tuples.append(t)
            index.add(t)
        for prefix in ([], [0], [1], [1, 2], [0, 1, 3], [1, 0, 0]):
            expected = [
                t.tid
                for t in tuples
                if all(t.values[i] == v for i, v in enumerate(prefix))
            ]
            assert index.count_prefix(prefix) == len(expected)
            assert sorted(index.iter_tids(prefix)) == sorted(expected)
            # Array-native variant: same tids, same (key) order.
            assert index.range_tids(prefix).tolist() == list(
                index.iter_tids(prefix)
            )

    def test_range_tids_wide_keys(self):
        """Schemas whose keys exceed int64 use the per-key modulo path."""
        schema = Schema([Attribute(f"a{i}", 7) for i in range(30)])
        index = PrefixIndex(schema, tuple(range(30)))
        assert not index.codec.fits_int64
        rng = random.Random(5)
        tuples = [
            make_tuple(tid, [rng.randrange(7) for _ in range(30)])
            for tid in range(50)
        ]
        for t in tuples:
            index.add(t)
        for prefix in ([], [3], [3, 1]):
            assert index.range_tids(prefix).tolist() == list(
                index.iter_tids(prefix)
            )

    def test_remove_updates_counts(self, small_schema):
        index = PrefixIndex(small_schema, (0, 1, 2))
        t = make_tuple(9, [1, 1, 1])
        index.add(t)
        assert index.count_prefix([1]) == 1
        index.remove(t)
        assert index.count_prefix([1]) == 0
        assert len(index) == 0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 1), st.integers(0, 2), st.integers(0, 3)
        ),
        max_size=80,
    ),
    st.permutations([0, 1, 2]),
    st.lists(st.integers(0, 3), max_size=3),
)
def test_prefix_count_matches_filter(rows, order, raw_prefix):
    """Counts through the index equal naive filtering, any attr order."""
    schema = Schema(
        [Attribute("a", 2), Attribute("b", 3), Attribute("c", 4)]
    )
    index = PrefixIndex(schema, order, block_size=4)
    tuples = [make_tuple(tid, list(row)) for tid, row in enumerate(rows)]
    for t in tuples:
        index.add(t)
    # Clip the prefix to valid values for the ordered attributes.
    sizes = [schema.attributes[a].size for a in order]
    prefix = [v % sizes[i] for i, v in enumerate(raw_prefix)]
    expected = [
        t.tid
        for t in tuples
        if all(t.values[order[i]] == v for i, v in enumerate(prefix))
    ]
    assert index.count_prefix(prefix) == len(expected)
    assert sorted(index.iter_tids(prefix)) == sorted(expected)
