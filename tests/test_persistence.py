"""Durability tests: atomic snapshots, torn-write recovery, bit-identical
kill-and-restore across backends and data planes.

The contract under test (normative spec: ``docs/format.md``): a snapshot
commits atomically via the ``MANIFEST.json`` rename, a crash anywhere in
the write protocol leaves the previous committed snapshot in force, and a
restored engine/service continues the interrupted run bit-identically —
same estimates, RNG streams, histories, ledgers, governor counters.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.api import (
    Engine,
    EngineConfig,
    EstimationTask,
    has_snapshot,
    load_engine,
    save_engine,
)
from repro.api.persistence import (
    MANIFEST_NAME,
    commit_manifest,
    write_epoch,
)
from repro.core.aggregates import count_all, count_where, sum_measure
from repro.errors import (
    AdmissionError,
    EstimationError,
    ExperimentError,
    WireFormatError,
)
from repro.hiddendb.schema import boolean_schema
from repro.service.app import ServiceApp
from repro.service.cli import build_app, build_parser
from repro.service.governor import BudgetGovernor, GovernorConfig
from repro.service.protocol import RoundRequest, TaskRequest

BACKENDS = ("blocked", "packed", "sharded", "mapped")


# ----------------------------------------------------------------------
# Deterministic churn driver shared by the parity tests
# ----------------------------------------------------------------------
def _build_engine(store_dir=None, backend="packed", data_plane=None):
    config = EngineConfig(
        backend=backend, data_plane=data_plane, k=20, budget_per_round=60,
        seed=7, store_dir=None if store_dir is None else str(store_dir),
    )
    engine = Engine(config, schema=boolean_schema(6, measures=("price",)))
    rng = random.Random(3)
    engine.load(_rows(rng, 600))
    engine.submit(EstimationTask(
        "t1",
        [count_all(), sum_measure(engine.db.schema, "price")],
        "RS",
    ))
    engine.submit(EstimationTask(
        "t2", [count_where(engine.db.schema, {"A0": "1"})], "REISSUE",
    ))
    return engine, rng


def _rows(rng, count):
    return [
        ([rng.randrange(2) for _ in range(6)], [rng.random() * 100])
        for _ in range(count)
    ]


def _churn_round(engine, rng):
    """One round of inserts + deletes + estimation, driven by ``rng``."""
    engine.load(_rows(rng, 40))
    victims = engine.db.store.random_tids(rng, 15)
    engine.apply_updates(lambda db: db.bulk_delete(victims))
    engine.advance_round()
    return engine.run_round()


def _round_dicts(reports):
    return {name: report.to_dict() for name, report in reports.items()}


# ----------------------------------------------------------------------
# Kill-and-restore bit-identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_kill_and_restore_is_bit_identical(backend, tmp_path):
    reference, ref_rng = _build_engine(backend=backend)
    expected = [_round_dicts(_churn_round(reference, ref_rng))
                for _ in range(6)]

    durable, rng = _build_engine(tmp_path, backend=backend)
    for _ in range(3):
        _churn_round(durable, rng)
    durable.save()
    del durable  # the "kill": nothing after the snapshot survives

    restored = Engine.load(str(tmp_path))
    got = [_round_dicts(_churn_round(restored, rng)) for _ in range(3)]
    assert got == expected[3:]
    assert restored.budget_ledger() == reference.budget_ledger()
    assert [
        (name, report.to_dict())
        for name, report in restored.stream_reports()
    ] == [
        (name, report.to_dict())
        for name, report in reference.stream_reports()
    ]


@pytest.mark.parametrize("data_plane", ("vectorized", "scalar"))
def test_kill_and_restore_parity_across_planes(data_plane, tmp_path):
    reference, ref_rng = _build_engine(data_plane=data_plane)
    expected = [_round_dicts(_churn_round(reference, ref_rng))
                for _ in range(4)]

    durable, rng = _build_engine(tmp_path, data_plane=data_plane)
    for _ in range(2):
        _churn_round(durable, rng)
    durable.save()
    restored = Engine.load(str(tmp_path))
    assert restored.config.data_plane == data_plane
    got = [_round_dicts(_churn_round(restored, rng)) for _ in range(2)]
    assert got == expected[2:]


def test_restore_preserves_store_shape_and_round_clock(tmp_path):
    engine, rng = _build_engine(tmp_path)
    for _ in range(2):
        _churn_round(engine, rng)
    engine.save()
    restored = Engine.load(str(tmp_path))
    assert restored.current_round == engine.current_round
    assert restored.db._next_tid == engine.db._next_tid
    assert len(restored.db) == len(engine.db)
    # Exact heap segmentation, not a compaction: random_tids and batch
    # routing depend on it.
    assert [
        (b.tid_lo, b.tid_hi, b.alive_count)
        for b in restored.db.store._blocks
    ] == [
        (b.tid_lo, b.tid_hi, b.alive_count)
        for b in engine.db.store._blocks
    ]
    assert restored.db.store._epoch == engine.db.store._epoch
    assert restored.db.store.index_orders() == engine.db.store.index_orders()


# ----------------------------------------------------------------------
# Atomic commit protocol
# ----------------------------------------------------------------------
def test_torn_snapshot_without_commit_is_invisible(tmp_path):
    engine, rng = _build_engine(tmp_path)
    _churn_round(engine, rng)
    engine.save()
    committed = load_engine(str(tmp_path))[0].budget_ledger()

    # Simulate a crash between write-new and rename: the fresh epoch is
    # fully written but the manifest never commits.
    _churn_round(engine, rng)
    write_epoch(engine, str(tmp_path))
    restored, _ = load_engine(str(tmp_path))
    assert restored.budget_ledger() == committed  # previous snapshot wins
    # The torn epoch directory is pruned by the next successful save.
    assert len([e for e in os.listdir(tmp_path)
                if e.startswith("epoch-")]) == 2
    engine.save()
    assert len([e for e in os.listdir(tmp_path)
                if e.startswith("epoch-")]) == 1


def test_commit_is_the_flip_point(tmp_path):
    engine, rng = _build_engine(tmp_path)
    _churn_round(engine, rng)
    manifest = write_epoch(engine, str(tmp_path))
    assert not has_snapshot(str(tmp_path))
    with pytest.raises(ExperimentError):
        load_engine(str(tmp_path))
    commit_manifest(str(tmp_path), manifest)
    assert has_snapshot(str(tmp_path))
    assert load_engine(str(tmp_path))[0].current_round == engine.current_round


def test_snapshot_files_stay_immutable_after_restore(tmp_path):
    engine, rng = _build_engine(tmp_path)
    _churn_round(engine, rng)
    engine.save()
    manifest = json.load(open(tmp_path / MANIFEST_NAME))
    epoch_dir = tmp_path / manifest["directory"]
    before = {
        name: (epoch_dir / name).read_bytes()
        for name in os.listdir(epoch_dir)
    }
    restored = Engine.load(str(tmp_path))
    # Measure updates mutate block columns in place — restored blocks are
    # copy-on-write mappings, so the committed epoch must not change.
    victim = next(iter(restored.db.tuples())).tid
    restored.apply_updates(
        lambda db: db.update_measures(victim, (123.0,))
    )
    _churn_round(restored, rng)
    after = {
        name: (epoch_dir / name).read_bytes()
        for name in os.listdir(epoch_dir)
    }
    assert before == after


def test_corrupt_manifest_raises_wire_error(tmp_path):
    engine, rng = _build_engine(tmp_path)
    engine.save()
    (tmp_path / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(WireFormatError):
        load_engine(str(tmp_path))


def test_newer_format_is_refused(tmp_path):
    engine, _ = _build_engine(tmp_path)
    manifest = engine.save()
    manifest["format"] = 999
    commit_manifest(str(tmp_path), manifest)
    with pytest.raises(WireFormatError):
        load_engine(str(tmp_path))


# ----------------------------------------------------------------------
# Refusals: state that cannot cross a snapshot fails loudly
# ----------------------------------------------------------------------
def test_custom_spec_callable_cannot_be_snapshot(tmp_path):
    engine, _ = _build_engine(tmp_path)
    engine.submit(EstimationTask(
        "odd",
        [count_where(engine.db.schema, {"A0": "1"},
                     selection=lambda t: t.tid % 2 == 0)],
        "RESTART",
    ))
    with pytest.raises(WireFormatError):
        engine.save()


def test_custom_estimator_factory_cannot_be_snapshot(tmp_path):
    from repro.core.estimators.rs import RsEstimator

    engine, _ = _build_engine(tmp_path)
    engine.submit(EstimationTask("factory", [count_all()], RsEstimator))
    with pytest.raises(ExperimentError):
        engine.save()


def test_on_query_hook_cannot_be_snapshot(tmp_path):
    engine, _ = _build_engine(tmp_path)
    engine["t1"].estimator.on_query = lambda session: None
    with pytest.raises(EstimationError):
        engine.save()


def test_save_without_store_dir_or_path_raises(tmp_path):
    engine, _ = _build_engine()
    with pytest.raises(ExperimentError):
        engine.save()
    engine.save(str(tmp_path))  # explicit path still works
    assert has_snapshot(str(tmp_path))


def test_engine_load_keeps_its_bulk_load_face(tmp_path):
    engine, rng = _build_engine(tmp_path)
    n = len(engine.db)
    assert engine.load(_rows(rng, 10)) == 10  # instance: bulk loader
    assert len(engine.db) == n + 10
    engine.save()
    assert isinstance(Engine.load(str(tmp_path)), Engine)  # class: restore


def test_mapped_run_files_live_under_store_dir(tmp_path):
    engine, rng = _build_engine(tmp_path, backend="mapped")
    _churn_round(engine, rng)
    runs = tmp_path / "runs"
    assert runs.is_dir() and any(runs.iterdir())
    engine.save()
    # Scratch runs are not part of the snapshot payload.
    manifest = json.load(open(tmp_path / MANIFEST_NAME))
    assert "runs" not in manifest["directory"]
    restored = Engine.load(str(tmp_path))
    assert restored.backend == "mapped"
    _churn_round(restored, rng)


# ----------------------------------------------------------------------
# Governor state round-trip
# ----------------------------------------------------------------------
def test_governor_state_round_trip():
    governor = BudgetGovernor(GovernorConfig(
        queries_per_window=100, window_rounds=4, max_deferrals=1,
    ))
    governor.admit("a", 60, 1)
    governor.commit("a", 60, 1)
    governor.admit("a", 60, 2)  # shrink (40 left)
    governor.commit("a", 34, 2)
    twin = BudgetGovernor(governor.config)
    twin.restore_state(governor.state_to_wire())
    assert twin.snapshot()["tenants"] == governor.snapshot()["tenants"]
    # Continued decisions agree exactly: 6 queries left in the window, no
    # shrink step fits, so one deferral is granted and the next refuses.
    for g in (governor, twin):
        assert not g.admit("a", 60, 3).runs  # widen_rounds
        with pytest.raises(AdmissionError):
            g.admit("a", 60, 3)
    assert twin.snapshot() == governor.snapshot()


# ----------------------------------------------------------------------
# Service plane: snapshot cadence + restore via the CLI seam
# ----------------------------------------------------------------------
def _service_args(extra=()):
    return build_parser().parse_args([
        "--rows", "2000", "--budget-per-round", "60",
        "--queries-per-window", "400", "--window-rounds", "4", *extra,
    ])


def test_service_kill_and_restore_bit_identical(tmp_path):
    request = TaskRequest(
        name="t", estimator="RS",
        specs=[{"kind": "count"}, {"kind": "avg", "measure": "price"}],
    )
    reference = build_app(_service_args())
    reference.submit(request)
    expected = reference.run_rounds(
        RoundRequest(rounds=6, advance=True)
    ).to_wire()

    durable_args = _service_args(
        ("--store-dir", str(tmp_path), "--snapshot-every", "2",
         "--backend", "mapped"),
    )
    app = build_app(durable_args)
    app.submit(request)
    app.run_rounds(RoundRequest(rounds=4, advance=True))
    del app  # killed; the auto-snapshot at round 4 is the recovery point

    restored = build_app(durable_args)  # build_app restores when possible
    assert restored.engine.backend == "mapped"
    assert restored.engine.tasks() == ("t",)
    restored.engine.advance_round()
    got = restored.run_rounds(RoundRequest(rounds=2, advance=True)).to_wire()
    assert got["results"] == expected["results"][4:]
    assert (
        restored.telemetry().to_wire()["governor"]["tenants"]
        == reference.telemetry().to_wire()["governor"]["tenants"]
    )


def test_snapshot_cadence(tmp_path):
    args = _service_args(("--store-dir", str(tmp_path),
                          "--snapshot-every", "3"))
    app = build_app(args)
    app.submit(TaskRequest(name="t", specs=[{"kind": "count"}]))
    app.run_rounds(RoundRequest(rounds=2, advance=True))
    assert not has_snapshot(str(tmp_path))  # cadence not reached yet
    app.run_rounds(RoundRequest(rounds=1, advance=True))
    assert has_snapshot(str(tmp_path))


def test_snapshot_every_requires_store_dir():
    engine, _ = _build_engine()
    with pytest.raises(ExperimentError):
        ServiceApp(engine, snapshot_every=2)


def test_manual_snapshot_returns_manifest(tmp_path):
    engine, rng = _build_engine(tmp_path)
    app = ServiceApp(engine)
    assert app.store_dir == str(tmp_path)  # inherited from the config
    manifest = app.snapshot()
    assert manifest["tuples"] == len(engine.db)
    restored = ServiceApp.restore(str(tmp_path))
    assert restored.engine.tasks() == engine.tasks()


def test_cli_flags_exist_and_backend_help_lists_all_backends():
    parser = build_parser()
    text = parser.format_help()
    assert "--store-dir" in text and "--snapshot-every" in text
    for name in BACKENDS:
        assert name in text, f"--backend help omits {name!r}"
