"""Statistical unbiasedness checks (Theorem 3.1 and its reissue analogue).

These run many independent drill-downs against fixed databases and check
that the empirical mean lands within a few standard errors of the exact
value — for fresh drill-downs, for reissued drill-downs after churn, and
for the estimators' round outputs.
"""

import math
import random

import pytest

from repro import (
    HiddenDatabase,
    QueryTree,
    ReissueEstimator,
    RestartEstimator,
    RsEstimator,
    TopKInterface,
    count_all,
    sum_measure,
)
from repro.core.drilldown import drill_from_root, reissue_update
from repro.core.variance import mean, sample_variance
from repro.data import autos_snapshot
from repro.hiddendb.session import QuerySession


def _z_score(values, truth):
    spread = math.sqrt(sample_variance(values) / len(values))
    if spread == 0:
        return 0.0 if mean(values) == truth else math.inf
    return abs(mean(values) - truth) / spread


@pytest.fixture(scope="module")
def autos_env():
    schema, payloads = autos_snapshot(total=4000, seed=17)
    db = HiddenDatabase(schema)
    for values, measures in payloads:
        db.insert(values, measures)
    return db


class TestFreshDrillDowns:
    def test_count_unbiased(self, autos_env):
        db = autos_env
        tree = QueryTree(db.schema)
        session = QuerySession(TopKInterface(db, k=60))
        rng = random.Random(0)
        spec = count_all()
        values = [
            spec.contribution(
                drill_from_root(session, tree, tree.random_signature(rng)),
                tree,
            )
            for _ in range(800)
        ]
        assert _z_score(values, len(db)) < 4.0

    def test_sum_unbiased(self, autos_env):
        db = autos_env
        tree = QueryTree(db.schema)
        session = QuerySession(TopKInterface(db, k=60))
        rng = random.Random(1)
        spec = sum_measure(db.schema, "price")
        truth = spec.ground_truth(db)
        values = [
            spec.contribution(
                drill_from_root(session, tree, tree.random_signature(rng)),
                tree,
            )
            for _ in range(800)
        ]
        assert _z_score(values, truth) < 4.0


class TestReissuedDrillDowns:
    def test_count_unbiased_after_churn(self, autos_env):
        """Updated drill-downs estimate the NEW round without bias."""
        db = autos_env
        tree = QueryTree(db.schema)
        session = QuerySession(TopKInterface(db, k=60))
        rng = random.Random(2)
        spec = count_all()
        signatures = [tree.random_signature(rng) for _ in range(500)]
        outcomes = {
            sig: drill_from_root(session, tree, sig) for sig in signatures
        }
        # Churn: delete 10%, insert 200 fresh-ish tuples (clone vectors of
        # survivors with new tids is not allowed — generate random ones).
        tids = [t.tid for t in db.tuples()]
        rng.shuffle(tids)
        for tid in tids[: len(tids) // 10]:
            db.delete(tid)
        sizes = db.schema.domain_sizes
        for _ in range(200):
            db.insert(
                bytes(rng.randrange(s) for s in sizes),
                (rng.uniform(1000, 30000), rng.uniform(0, 100000)),
            )
        db.advance_round()
        values = [
            spec.contribution(
                reissue_update(session, tree, sig, outcomes[sig].depth),
                tree,
            )
            for sig in signatures
        ]
        assert _z_score(values, len(db)) < 4.0


class TestEstimatorOutputs:
    @pytest.mark.parametrize(
        "cls", (RestartEstimator, ReissueEstimator, RsEstimator)
    )
    def test_round_estimates_centred_on_truth(self, autos_env, cls):
        """Across seeds, round-1 estimates centre on the exact count."""
        db = autos_env
        interface = TopKInterface(db, k=60)
        estimates = []
        for seed in range(12):
            estimator = cls(
                interface, [count_all()], budget_per_round=150, seed=seed
            )
            estimates.append(estimator.run_round().estimates["count"])
        assert _z_score(estimates, len(db)) < 4.0
