"""Unit tests for aggregate specifications and contribution math."""

import math
import pytest

from repro import (
    HiddenDatabase,
    QueryTree,
    SchemaError,
    TopKInterface,
    avg_measure,
    count_all,
    count_where,
    proportion_where,
    running_average,
    size_change,
    sum_measure,
)
from repro.core.aggregates import base_specs_of
from repro.core.drilldown import drill_from_root
from repro.hiddendb.session import QuerySession
from tests.conftest import fill_random


class TestFactories:
    def test_count_all(self, small_db):
        spec = count_all()
        assert spec.ground_truth(small_db) == len(small_db)

    def test_count_where_pushdown(self, small_schema, small_db):
        spec = count_where(small_schema, {"color": "blue"})
        assert spec.interface_predicates == {0: 1}
        expected = sum(1 for t in small_db.tuples() if t.values[0] == 1)
        assert spec.ground_truth(small_db) == expected

    def test_sum_measure(self, small_schema, small_db):
        spec = sum_measure(small_schema, "price")
        expected = sum(t.measures[0] for t in small_db.tuples())
        assert spec.ground_truth(small_db) == pytest.approx(expected)

    def test_sum_measure_with_condition(self, small_schema, small_db):
        spec = sum_measure(small_schema, "price", where={"size": "m"})
        expected = sum(
            t.measures[0] for t in small_db.tuples() if t.values[1] == 1
        )
        assert spec.ground_truth(small_db) == pytest.approx(expected)

    def test_avg_measure_ground_truth(self, small_schema, small_db):
        spec = avg_measure(small_schema, "price")
        expected = sum(t.measures[0] for t in small_db.tuples()) / len(small_db)
        assert spec.ground_truth(small_db) == pytest.approx(expected)

    def test_proportion_ground_truth(self, small_schema, small_db):
        spec = proportion_where(small_schema, {"kind": "a"})
        expected = sum(
            1 for t in small_db.tuples() if t.values[2] == 0
        ) / len(small_db)
        assert spec.ground_truth(small_db) == pytest.approx(expected)

    def test_avg_of_empty_database_is_nan(self, small_schema):
        db = HiddenDatabase(small_schema)
        assert math.isnan(avg_measure(small_schema, "price").ground_truth(db))

    def test_residual_selection(self, small_schema, small_db):
        spec = count_where(
            small_schema,
            {"color": "red"},
            selection=lambda t: t.measures[0] > 50,
        )
        expected = sum(
            1
            for t in small_db.tuples()
            if t.values[0] == 0 and t.measures[0] > 50
        )
        assert spec.ground_truth(small_db) == expected

    def test_running_average_window_validation(self):
        with pytest.raises(ValueError):
            running_average(0)

    def test_size_change_default_base(self):
        spec = size_change()
        assert spec.base.name == "count"


class TestBaseSpecsOf:
    def test_flattens_ratio(self, small_schema):
        avg = avg_measure(small_schema, "price")
        names = {spec.name for spec in base_specs_of([avg])}
        assert names == {f"{avg.name}__sum", f"{avg.name}__count"}

    def test_flattens_trans_round(self):
        count = count_all()
        specs = base_specs_of([count, size_change(count), running_average(3, count)])
        assert [spec.name for spec in specs] == ["count"]

    def test_name_collision_rejected(self):
        with pytest.raises(SchemaError):
            base_specs_of([count_all(), count_all()])

    def test_shared_instance_allowed(self):
        count = count_all()
        assert base_specs_of([count, size_change(count)]) == [count]


class TestContributions:
    def test_underflow_contributes_zero(self, small_schema):
        db = HiddenDatabase(small_schema)
        tree = QueryTree(small_schema)
        session = QuerySession(TopKInterface(db, k=5))
        outcome = drill_from_root(session, tree, (0, 0, 0))
        assert count_all().contribution(outcome, tree) == 0.0

    def test_valid_node_scaled_by_inverse_p(self, small_schema):
        db = HiddenDatabase(small_schema)
        # 3 tuples sharing color=red; none elsewhere => depth-1 node valid.
        for kind in range(3):
            db.insert([0, 0, kind])
        tree = QueryTree(small_schema)
        session = QuerySession(TopKInterface(db, k=5))
        outcome = drill_from_root(session, tree, (0, 0, 0))
        assert outcome.depth == 0  # root is valid (3 <= 5)
        assert count_all().contribution(outcome, tree) == 3.0

    def test_deeper_node_scaling(self, small_schema):
        db = HiddenDatabase(small_schema)
        for kind in range(4):
            db.insert([0, 0, kind], (10.0,))
        for kind in range(4):
            db.insert([1, 1, kind], (20.0,))
        tree = QueryTree(small_schema)
        session = QuerySession(TopKInterface(db, k=5))
        outcome = drill_from_root(session, tree, (0, 0, 0))
        # Root overflows (8 > 5); color=red has 4 <= 5 -> depth 1, p=1/2.
        assert outcome.depth == 1
        assert count_all().contribution(outcome, tree) == pytest.approx(8.0)
        assert sum_measure(small_schema, "price").contribution(
            outcome, tree
        ) == pytest.approx(80.0)

    def test_pushdown_applied_tuplewise_when_not_in_tree(self, small_schema):
        db = HiddenDatabase(small_schema)
        db.insert([0, 0, 0])
        db.insert([1, 0, 0])
        tree = QueryTree(small_schema)  # full tree, no fixed predicates
        session = QuerySession(TopKInterface(db, k=5))
        outcome = drill_from_root(session, tree, (0, 0, 0))
        blue_count = count_where(small_schema, {"color": "blue"})
        assert blue_count.contribution(outcome, tree) == 1.0

    def test_pushdown_in_tree_counts_returned_page(self, small_schema):
        db = HiddenDatabase(small_schema)
        db.insert([1, 0, 0])
        db.insert([1, 2, 3])
        tree = QueryTree(small_schema, fixed={0: 1})
        tree.register(TopKInterface(db, k=5))
        session = QuerySession(TopKInterface(db, k=5))
        outcome = drill_from_root(session, tree, (0, 0))
        blue_count = count_where(small_schema, {"color": "blue"})
        assert blue_count.contribution(outcome, tree) == 2.0


class TestUnbiasedness:
    def test_mean_drilldown_contribution_matches_truth(self, small_schema):
        """E[Q(q)/p(q)] == Q — Theorem 3.1, checked by exhaustive leaves."""
        db = HiddenDatabase(small_schema)
        fill_random(db, 40, seed=9)
        tree = QueryTree(small_schema)
        session = QuerySession(TopKInterface(db, k=4))
        spec = count_all()
        total = 0.0
        leaves = 0
        for a in range(2):
            for b in range(3):
                for c in range(4):
                    outcome = drill_from_root(session, tree, (a, b, c))
                    if outcome.leaf_overflow:
                        pytest.skip("collision-heavy fixture")
                    total += spec.contribution(outcome, tree)
                    leaves += 1
        assert total / leaves == pytest.approx(len(db))

    def test_sum_unbiased_over_exhaustive_leaves(self, small_schema):
        db = HiddenDatabase(small_schema)
        fill_random(db, 35, seed=11)
        tree = QueryTree(small_schema)
        session = QuerySession(TopKInterface(db, k=4))
        spec = sum_measure(small_schema, "price")
        truth = spec.ground_truth(db)
        total = 0.0
        for a in range(2):
            for b in range(3):
                for c in range(4):
                    outcome = drill_from_root(session, tree, (a, b, c))
                    total += spec.contribution(outcome, tree)
        assert total / 24 == pytest.approx(truth)
