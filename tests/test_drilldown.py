"""Unit and property tests for drill-down and reissue-update walks.

The crown-jewel invariant: in strict mode, ``reissue_update`` must land on
exactly the node ``drill_from_root`` would pick for the same signature and
database state — from ANY starting depth.  That equality is what keeps
Theorem 3.1's unbiasedness intact across rounds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Attribute, HiddenDatabase, QueryError, QueryTree, Schema, TopKInterface
from repro.core.drilldown import drill_from_root, reissue_update
from repro.hiddendb.session import QuerySession
from tests.conftest import fill_random


@pytest.fixture
def tree(small_schema):
    return QueryTree(small_schema)


def open_session_for(db, k=5):
    interface = TopKInterface(db, k=k)
    return QuerySession(interface, budget=None)


class TestDrillFromRoot:
    def test_stops_at_first_non_overflowing(self, small_db, tree):
        session = open_session_for(small_db)
        outcome = drill_from_root(session, tree, (0, 0, 0))
        assert not outcome.result.overflow or outcome.leaf_overflow
        if outcome.depth > 0:
            # The parent must overflow (it's why we kept drilling).
            parent = session.search(tree.query_at((0, 0, 0), outcome.depth - 1))
            assert parent.overflow

    def test_cost_equals_depth_plus_one(self, small_db, tree):
        session = open_session_for(small_db)
        outcome = drill_from_root(session, tree, (1, 2, 3))
        assert outcome.queries_spent == outcome.depth + 1

    def test_empty_database_terminates_at_root(self, small_schema, tree):
        db = HiddenDatabase(small_schema)
        session = open_session_for(db)
        outcome = drill_from_root(session, tree, (0, 0, 0))
        assert outcome.depth == 0
        assert outcome.result.underflow

    def test_leaf_overflow_flagged(self, small_schema, tree):
        db = HiddenDatabase(small_schema)
        for _ in range(5):
            db.insert([0, 0, 0])  # five identical value vectors
        session = open_session_for(db, k=2)
        outcome = drill_from_root(session, tree, (0, 0, 0))
        assert outcome.depth == tree.max_depth
        assert outcome.leaf_overflow


class TestReissueUpdate:
    def test_bad_mode_rejected(self, small_db, tree):
        session = open_session_for(small_db)
        with pytest.raises(QueryError):
            reissue_update(session, tree, (0, 0, 0), 0, parent_check="nope")

    def test_bad_depth_rejected(self, small_db, tree):
        session = open_session_for(small_db)
        with pytest.raises(QueryError):
            reissue_update(session, tree, (0, 0, 0), 9)

    def test_stable_drilldown_costs_two(self, small_db, tree):
        session = open_session_for(small_db)
        first = drill_from_root(session, tree, (1, 1, 1))
        if first.depth == 0:
            pytest.skip("signature terminates at root in this fixture")
        update = reissue_update(session, tree, (1, 1, 1), first.depth)
        assert update.depth == first.depth
        assert update.queries_spent == 2  # node + parent confirmation

    def test_stable_root_costs_one(self, small_schema, tree):
        db = HiddenDatabase(small_schema)
        db.insert([0, 0, 0])
        session = open_session_for(db)
        update = reissue_update(session, tree, (0, 0, 0), 0)
        assert update.depth == 0
        assert update.queries_spent == 1

    def test_descends_after_growth(self, small_schema, tree):
        db = HiddenDatabase(small_schema)
        session = open_session_for(db, k=2)
        first = drill_from_root(session, tree, (0, 0, 0))
        assert first.depth == 0
        fill_random(db, 100, seed=2)
        update = reissue_update(session, tree, (0, 0, 0), first.depth)
        fresh = drill_from_root(session, tree, (0, 0, 0))
        assert update.depth == fresh.depth

    def test_rolls_up_after_shrink(self, small_db, tree):
        session = open_session_for(small_db)
        first = drill_from_root(session, tree, (1, 2, 3))
        for tid in list(t.tid for t in small_db.tuples()):
            small_db.delete(tid)
        update = reissue_update(session, tree, (1, 2, 3), first.depth)
        assert update.depth == 0
        assert update.result.underflow

    def test_lazy_mode_accepts_valid_without_parent_check(
        self, small_db, tree
    ):
        session = open_session_for(small_db)
        first = drill_from_root(session, tree, (1, 1, 2))
        if first.depth == 0 or not first.result.valid:
            pytest.skip("fixture signature not valid below root")
        update = reissue_update(
            session, tree, (1, 1, 2), first.depth, parent_check="lazy"
        )
        assert update.queries_spent == 1


def _random_signature(schema, rnd):
    return tuple(rnd.randrange(a.size) for a in schema.attributes)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=120),
    st.integers(min_value=0, max_value=120),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=3),
    st.randoms(use_true_random=False),
)
def test_reissue_equals_fresh_drilldown(
    initial, churn, k, start_offset, rnd
):
    """Strict reissue lands exactly where a fresh drill-down would.

    Build a random DB, drill, mutate randomly, then update from the old
    terminal depth (shifted by a random offset to model stale records) and
    compare against a from-scratch drill-down on the new state.
    """
    schema = Schema(
        [Attribute("a", 2), Attribute("b", 3), Attribute("c", 4)]
    )
    db = HiddenDatabase(schema)
    fill_random(db, initial, seed=rnd.randrange(10_000))
    tree = QueryTree(schema)
    session = open_session_for(db, k=k)
    signature = _random_signature(schema, rnd)
    first = drill_from_root(session, tree, signature)
    # Random churn: deletes and inserts.
    tids = [t.tid for t in db.tuples()]
    rnd.shuffle(tids)
    for tid in tids[: rnd.randrange(len(tids) + 1)]:
        db.delete(tid)
    fill_random(db, churn, seed=rnd.randrange(10_000))
    start_depth = max(0, min(tree.max_depth, first.depth + start_offset - 1))
    update = reissue_update(session, tree, signature, start_depth)
    fresh = drill_from_root(session, tree, signature)
    assert update.depth == fresh.depth
    assert update.result.status == fresh.result.status
    assert [t.tid for t in update.result.tuples] == [
        t.tid for t in fresh.result.tuples
    ]
