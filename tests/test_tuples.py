"""Unit tests for the tuple representation."""

from repro.hiddendb.tuples import HiddenTuple, make_tuple


class TestHiddenTuple:
    def test_make_tuple(self):
        t = make_tuple(7, [1, 0, 2], measures=(9.5,), score=0.3)
        assert t.tid == 7
        assert t.values == bytes([1, 0, 2])
        assert t.measures == (9.5,)
        assert t.score == 0.3

    def test_value_accessor(self):
        t = make_tuple(0, [1, 0, 2])
        assert t.value(0) == 1
        assert t.value(2) == 2

    def test_measure_accessor(self):
        t = make_tuple(0, [0], measures=(3.0, 4.0))
        assert t.measure(1) == 4.0

    def test_with_measures_preserves_identity(self):
        t = make_tuple(5, [1, 1, 1], measures=(1.0,), score=0.9)
        updated = t.with_measures((2.0,))
        assert updated.tid == 5
        assert updated.score == 0.9
        assert updated.measures == (2.0,)
        assert t.measures == (1.0,)  # original untouched

    def test_describe(self, small_schema):
        t = make_tuple(0, [1, 2, 0], measures=(12.5,))
        described = t.describe(small_schema)
        assert described == {
            "color": "blue", "size": "l", "kind": "a", "price": 12.5,
        }

    def test_values_are_bytes(self):
        t = HiddenTuple(0, bytes([0, 1]), (), 0.0)
        assert isinstance(t.values, bytes)
