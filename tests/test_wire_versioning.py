"""Wire versioning regression: every to_dict stamps, every from_dict
tolerates.

The policy (see :mod:`repro.core.wire`): producers stamp
``schema_version`` into every wire payload; consumers ignore unknown
keys, read a missing version as the pre-versioning v0 form, and never
reject a higher version.  These tests pin the policy for the three
long-lived wire forms — :class:`EngineConfig`, :class:`RoundReport`,
:class:`ExperimentResult` — plus the service-plane forms built on the
same machinery.
"""

import json
import math

import pytest

from repro.api import EngineConfig
from repro.core.estimators.base import RoundReport
from repro.core.wire import SCHEMA_VERSION, stamp, wire_version
from repro.errors import WireFormatError
from repro.experiments.metrics import ExperimentResult
from repro.service.governor import GovernorConfig
from repro.service.protocol import RoundRequest, TaskRequest


def _report() -> RoundReport:
    return RoundReport(
        round_index=3,
        estimates={"count": 1234.5, "bad": math.inf},
        variances={"count": 42.0, "bad": math.nan},
        queries_used=77,
        drilldowns_updated=5,
        drilldowns_new=2,
        leaf_overflows=1,
        active_drilldowns=9,
    )


def _result() -> ExperimentResult:
    result = ExperimentResult("exp", ["RS"], ["count"])
    result.start_trial()
    result.record_truth(1, {"count": 100.0})
    result.record_report("RS", {"count": 99.5}, 30, 4)
    return result


class TestStamping:
    def test_engine_config_is_stamped(self):
        assert EngineConfig().to_dict()["schema_version"] == SCHEMA_VERSION

    def test_round_report_is_stamped(self):
        assert _report().to_dict()["schema_version"] == SCHEMA_VERSION

    def test_experiment_result_is_stamped(self):
        assert _result().to_dict()["schema_version"] == SCHEMA_VERSION

    def test_service_forms_are_stamped(self):
        assert TaskRequest("t").to_wire()["schema_version"] == SCHEMA_VERSION
        assert GovernorConfig().to_wire()["schema_version"] == SCHEMA_VERSION

    def test_stamped_payloads_are_strict_json(self):
        for payload in (
            EngineConfig().to_dict(), _report().to_dict(),
            _result().to_dict(),
        ):
            rebuilt = json.loads(json.dumps(payload, allow_nan=False))
            assert rebuilt["schema_version"] == SCHEMA_VERSION


class TestRoundTrip:
    """to_dict → json → from_dict restores the object exactly."""

    def test_engine_config(self):
        config = EngineConfig(
            backend="packed", k=17, budget_per_round=99, seed=5,
            report_log_limit=10,
        )
        payload = json.loads(json.dumps(config.to_dict()))
        assert EngineConfig.from_dict(payload) == config

    def test_round_report(self):
        report = _report()
        payload = json.loads(json.dumps(report.to_dict(), allow_nan=False))
        rebuilt = RoundReport.from_dict(payload)
        assert rebuilt.round_index == report.round_index
        assert rebuilt.queries_used == report.queries_used
        assert rebuilt.estimates["count"] == report.estimates["count"]
        assert math.isinf(rebuilt.estimates["bad"])
        assert math.isnan(rebuilt.variances["bad"])
        assert rebuilt.active_drilldowns == report.active_drilldowns

    def test_experiment_result(self):
        result = _result()
        payload = json.loads(json.dumps(result.to_dict(), allow_nan=False))
        rebuilt = ExperimentResult.from_dict(payload)
        assert rebuilt.to_dict() == result.to_dict()


class TestForwardTolerance:
    """Payloads from a *newer* producer load on this consumer."""

    def test_engine_config_ignores_unknown_keys(self):
        config = EngineConfig.from_dict({
            "k": 7, "schema_version": 99, "a_future_knob": True,
        })
        assert config.k == 7

    def test_round_report_ignores_unknown_keys(self):
        payload = _report().to_dict()
        payload["schema_version"] = 99
        payload["a_future_counter"] = 123
        rebuilt = RoundReport.from_dict(payload)
        assert rebuilt.queries_used == 77

    def test_experiment_result_ignores_unknown_keys(self):
        payload = _result().to_dict()
        payload["schema_version"] = 99
        payload["a_future_section"] = {"x": 1}
        assert ExperimentResult.from_dict(payload).to_dict() == (
            _result().to_dict()
        )

    def test_service_request_forms_ignore_unknown_keys(self):
        request = TaskRequest.from_wire({
            "name": "t", "schema_version": 99, "future": 1,
        })
        assert request.name == "t"
        rounds = RoundRequest.from_wire({"rounds": 3, "future": True})
        assert rounds.rounds == 3

    def test_missing_version_reads_as_v0(self):
        payload = _report().to_dict()
        del payload["schema_version"]
        assert wire_version(payload) == 0
        assert RoundReport.from_dict(payload).queries_used == 77
        config_payload = {"k": 5}
        assert wire_version(config_payload) == 0
        assert EngineConfig.from_dict(config_payload).k == 5

    def test_tolerance_never_admits_invalid_fields(self):
        with pytest.raises(Exception):
            EngineConfig.from_dict({"k": 0, "future": 1})


class TestVersionHelpers:
    def test_stamp_returns_its_argument(self):
        payload = {"x": 1}
        assert stamp(payload) is payload
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_wire_version_rejects_non_int(self):
        with pytest.raises(WireFormatError):
            wire_version({"schema_version": "two"})
