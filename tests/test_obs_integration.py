"""Integration tests for the observability plane across the stack.

The tentpole acceptance criteria: estimates are **bit-identical** with
observability on vs off (every backend × data plane), ``Engine.metrics()``
is a stamped strict-JSON document, the config precedence chain resolves as
documented, the service embeds the snapshot in ``/v1/telemetry`` and
serves Prometheus text at ``/v1/metrics``.
"""

from __future__ import annotations

import json
import re

import pytest

from repro import HiddenDatabase
from repro.api import Engine, EngineConfig, EstimationTask
from repro.core.aggregates import count_all
from repro.data.synthetic import skewed_source
from repro.errors import ExperimentError
from repro.obs import OBS, set_default_observability
from repro.service import BudgetGovernor, GovernorConfig, ServiceApp

from test_service_http import _Service, _engine

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.fixture(autouse=True)
def _pristine_obs():
    OBS.reset()
    OBS.disable()
    previous = set_default_observability(None)
    yield
    OBS.reset()
    OBS.disable()
    set_default_observability(previous)


def _run_estimates(observability: bool, backend=None, plane=None,
                   shards=None, rounds: int = 3) -> list[dict]:
    source = skewed_source([8, 10, 6, 4], exponent=0.4, seed=3)
    config = EngineConfig(
        backend=backend,
        shards=shards,
        data_plane=plane,
        k=8,
        budget_per_round=40,
        seed=3,
        observability=observability,
    )
    db = HiddenDatabase(
        source.schema,
        backend=config.backend,
        block_size=config.block_size,
        backend_options=config.backend_factory_options(),
    )
    db.insert_many(source.batch_columns(600))
    engine = Engine(config, db=db)
    engine.submit(EstimationTask("t", [count_all()], "RS"))
    estimates = []
    for _ in range(rounds):
        estimates.append(engine.run_round()["t"].estimates)
        engine.advance_round()
    return estimates


# ----------------------------------------------------------------------
# Bit identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["blocked", "packed", "sharded",
                                     "mapped"])
@pytest.mark.parametrize("plane", ["vectorized", "scalar"])
def test_estimates_bit_identical_on_vs_off(backend, plane, tmp_path,
                                           monkeypatch):
    if backend == "mapped":
        monkeypatch.chdir(tmp_path)  # mapped scratch files
    off = _run_estimates(False, backend=backend, plane=plane)
    OBS.reset()
    OBS.disable()
    on = _run_estimates(True, backend=backend, plane=plane)
    assert off == on


# ----------------------------------------------------------------------
# Engine.metrics()
# ----------------------------------------------------------------------
def test_engine_metrics_stamped_strict_json():
    engine = _engine(backend="packed")
    OBS.enable()
    engine.submit(EstimationTask("t", [count_all()], "RS"))
    engine.run_round()
    metrics = engine.metrics()
    json.dumps(metrics, allow_nan=False)  # strict JSON, never raises
    assert metrics["schema_version"] >= 1
    assert metrics["enabled"] is True
    assert metrics["backend"] == "packed"
    assert metrics["tasks"]["t"]["rounds"] == 1
    assert metrics["tasks"]["t"]["queries_total"] == 40
    interface = metrics["tasks"]["t"]["interface"]
    assert interface["queries"] == 40
    assert (
        interface["underflow"] + interface["valid"] + interface["overflow"]
        == interface["queries"]
    )
    names = {c["name"] for c in metrics["registry"]["counters"]}
    assert "repro_rounds_total" in names
    assert "repro_budget_spent_total" in names
    assert metrics["summary"]["queries"]["total"] == 40


def test_engine_metrics_disabled_still_reports_tasks():
    engine = _engine(backend="packed")
    engine.submit(EstimationTask("t", [count_all()], "RS"))
    engine.run_round()
    metrics = engine.metrics()
    assert metrics["enabled"] is False
    assert metrics["tasks"]["t"]["queries_total"] == 40
    # Registry counters stayed silent while disabled.
    assert metrics["summary"]["queries"]["total"] == 0


# ----------------------------------------------------------------------
# Config precedence
# ----------------------------------------------------------------------
def test_explicit_config_beats_default_and_env(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "1")
    set_default_observability(True)
    assert EngineConfig(observability=False).resolved_observability() is False
    monkeypatch.setenv("REPRO_OBS", "0")
    set_default_observability(False)
    assert EngineConfig(observability=True).resolved_observability() is True


def test_none_defers_to_default_then_env(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    assert EngineConfig().resolved_observability() is False
    monkeypatch.setenv("REPRO_OBS", "yes")
    assert EngineConfig().resolved_observability() is True
    set_default_observability(False)  # programmatic beats env
    assert EngineConfig().resolved_observability() is False


def test_observability_must_be_bool_or_none():
    with pytest.raises(ExperimentError):
        EngineConfig(observability="on")


def test_engine_enables_but_never_disables():
    _engine(backend="packed")  # observability=None resolves off
    assert OBS.enabled is False
    source = skewed_source([8, 10, 6, 4], exponent=0.4, seed=3)
    config = EngineConfig(k=8, budget_per_round=40, seed=3,
                          observability=True)
    Engine(config, schema=source.schema)
    assert OBS.enabled is True
    # A later observability=False engine must not switch it back off.
    Engine(EngineConfig(k=8, budget_per_round=40, seed=3,
                        observability=False), schema=source.schema)
    assert OBS.enabled is True


def test_config_apply_scopes_registry():
    config = EngineConfig(observability=True)
    assert OBS.enabled is False
    with config.apply():
        assert OBS.enabled is True
    assert OBS.enabled is False


# ----------------------------------------------------------------------
# Service plane
# ----------------------------------------------------------------------
def test_telemetry_embeds_metrics_and_v1_metrics_scrapes():
    OBS.enable()
    app = ServiceApp(
        _engine(backend="packed"),
        BudgetGovernor(GovernorConfig(queries_per_window=500)),
    )
    with _Service(app) as client:
        client.submit(name="t", specs=[{"kind": "count"}], budget=20)
        client.run_rounds(rounds=1)

        telemetry = client.telemetry()
        # Pre-PR-9 governor keys survive alongside the new metrics field.
        assert "governor" in telemetry
        assert telemetry["governor"]["policy"]["queries_per_window"] == 500
        metrics = telemetry["metrics"]
        assert metrics["enabled"] is True
        assert metrics["tasks"]["t"]["queries_total"] == 20

        text = client.metrics_text()
        assert text.endswith("\n")
        assert "# TYPE repro_http_requests_total counter" in text
        sample = re.compile(
            r"^repro_[a-z0-9_]+(_bucket|_sum|_count)?"
            r"(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})?"
            r" [0-9eE.+-]+$"
        )
        comment = re.compile(r"^# (HELP|TYPE) repro_[a-z0-9_]+ .+$")
        for line in text.splitlines():
            assert sample.match(line) or comment.match(line), line
        # The round the service ran shows up in the scraped counters.
        assert "repro_rounds_total 1" in text
        assert 'repro_queries_total{status=' in text
        # Request latency is labeled by endpoint, cardinality-bounded.
        endpoints = set(
            re.findall(r'repro_http_requests_total\{endpoint="([^"]+)"', text)
        )
        assert endpoints <= {
            "/v1/healthz", "/v1/ledger", "/v1/telemetry", "/v1/tasks",
            "/v1/rounds", "/v1/shutdown", "/v1/tasks/{name}/reports",
            "other",
        }
