"""Tests for the COUNT-metadata extension (§8 future-work direction 1)."""

import math

import pytest

from repro import (
    ConjunctiveQuery,
    EstimationError,
    HiddenDatabase,
    TopKInterface,
    avg_measure,
    count_all,
    count_where,
    sum_measure,
)
from repro.data import autos_snapshot
from repro.extensions import CountAssistedEstimator, CountRevealingInterface
from tests.conftest import fill_random


@pytest.fixture
def counting_interface(small_db):
    return CountRevealingInterface(TopKInterface(small_db, k=5))


class TestCountRevealingInterface:
    def test_valid_count_equals_page(self, counting_interface, small_schema):
        query = ConjunctiveQuery.from_labels(
            small_schema, {"color": "red", "size": "s", "kind": "a"}
        )
        result = counting_interface.search(query)
        assert result.matching_count == len(result.tuples)

    def test_overflow_count_is_total(self, counting_interface, small_db):
        result = counting_interface.search(ConjunctiveQuery.root())
        assert result.overflow
        assert result.matching_count == len(small_db)
        assert len(result.tuples) == 5  # still only the top-k page

    def test_underflow_count_zero(self, small_schema):
        db = HiddenDatabase(small_schema)
        interface = CountRevealingInterface(TopKInterface(db, k=5))
        result = interface.search(ConjunctiveQuery.root())
        assert result.matching_count == 0

    def test_non_prefix_query_counted_by_scan(self, counting_interface,
                                              small_db):
        counting_interface.register_attr_order((0, 1, 2))
        query = ConjunctiveQuery([(2, 1)])  # not a prefix of (0,1,2)
        result = counting_interface.search(query)
        expected = sum(1 for t in small_db.tuples() if t.values[2] == 1)
        assert result.matching_count == expected

    def test_delegates_properties(self, counting_interface, small_db):
        assert counting_interface.k == 5
        assert counting_interface.schema is small_db.schema
        assert counting_interface.current_round == 1


@pytest.fixture
def autos_counting_env():
    schema, payloads = autos_snapshot(total=4000, seed=11)
    db = HiddenDatabase(schema)
    for values, measures in payloads:
        db.insert(values, measures)
    return db, CountRevealingInterface(TopKInterface(db, k=80))


class TestCountAssistedEstimator:
    def test_requires_counting_interface(self, small_db):
        with pytest.raises(EstimationError):
            CountAssistedEstimator(
                TopKInterface(small_db, k=5), [count_all()], 10
            )

    def test_count_star_is_exact_in_one_round(self, autos_counting_env):
        db, interface = autos_counting_env
        estimator = CountAssistedEstimator(
            interface, [count_all()], budget_per_round=5
        )
        report = estimator.run_round()
        assert report.estimates["count"] == len(db)
        assert report.variances["count"] == 0.0
        assert report.queries_used == 1  # the root query alone

    def test_pushdown_count_exact(self, autos_counting_env):
        db, interface = autos_counting_env
        spec = count_where(db.schema, {"certified": "certified_0"})
        estimator = CountAssistedEstimator(
            interface, [spec], budget_per_round=5
        )
        report = estimator.run_round()
        assert report.estimates[spec.name] == spec.ground_truth(db)

    def test_sum_estimate_unbiased_and_tight(self, autos_counting_env):
        db, interface = autos_counting_env
        spec = sum_measure(db.schema, "price")
        truth = spec.ground_truth(db)
        errors = []
        for seed in range(4):
            estimator = CountAssistedEstimator(
                interface, [spec], budget_per_round=400, seed=seed
            )
            report = estimator.run_round()
            errors.append(abs(report.estimates[spec.name] / truth - 1))
        assert sum(errors) / len(errors) < 0.1

    def test_avg_ratio(self, autos_counting_env):
        db, interface = autos_counting_env
        spec = avg_measure(db.schema, "price")
        estimator = CountAssistedEstimator(
            interface, [spec], budget_per_round=400, seed=1
        )
        report = estimator.run_round()
        truth = spec.ground_truth(db)
        assert report.estimates[spec.name] == pytest.approx(truth, rel=0.2)

    def test_budget_respected(self, autos_counting_env):
        _, interface = autos_counting_env
        estimator = CountAssistedEstimator(
            interface, [sum_measure(interface.schema, "price")],
            budget_per_round=50, seed=0,
        )
        report = estimator.run_round()
        assert report.queries_used <= 50

    def test_empty_database_nan_sum(self, small_schema):
        db = HiddenDatabase(small_schema)
        interface = CountRevealingInterface(TopKInterface(db, k=5))
        estimator = CountAssistedEstimator(
            interface, [sum_measure(small_schema, "price")],
            budget_per_round=20,
        )
        report = estimator.run_round()
        assert math.isnan(report.estimates["sum_price"])

    def test_walk_probability_exact_on_small_tree(self, small_schema):
        """Terminal probability equals count(q)/count(root) empirically."""
        db = HiddenDatabase(small_schema)
        fill_random(db, 120, seed=4)
        interface = CountRevealingInterface(TopKInterface(db, k=10))
        spec = sum_measure(small_schema, "price")
        truth = spec.ground_truth(db)
        estimator = CountAssistedEstimator(
            interface, [spec], budget_per_round=3000, seed=3
        )
        report = estimator.run_round()
        assert report.estimates["sum_price"] == pytest.approx(truth, rel=0.2)
