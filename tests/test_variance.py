"""Unit tests for the variance helpers."""

import math

import pytest

from repro.core.variance import (
    RunningStat,
    combine_inverse_variance,
    mean,
    ratio_variance,
    sample_variance,
    variance_of_mean,
)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_sample_variance_bessel(self):
        assert sample_variance([1.0, 3.0]) == pytest.approx(2.0)

    def test_sample_variance_small_samples(self):
        assert sample_variance([]) == 0.0
        assert sample_variance([5.0]) == 0.0

    def test_variance_of_mean(self):
        assert variance_of_mean([1.0, 3.0]) == pytest.approx(1.0)

    def test_variance_of_mean_degenerate(self):
        assert math.isinf(variance_of_mean([]))
        assert math.isinf(variance_of_mean([4.0]))


class TestCombination:
    def test_equal_variances_average(self):
        estimate, variance = combine_inverse_variance(
            [(10.0, 2.0), (20.0, 2.0)]
        )
        assert estimate == pytest.approx(15.0)
        assert variance == pytest.approx(1.0)

    def test_weighting_favours_precision(self):
        estimate, _ = combine_inverse_variance([(10.0, 1.0), (20.0, 100.0)])
        assert estimate < 11.0

    def test_skips_non_finite(self):
        estimate, variance = combine_inverse_variance(
            [(10.0, 1.0), (99.0, math.inf), (math.nan, 1.0)]
        )
        assert estimate == pytest.approx(10.0)
        assert variance == pytest.approx(1.0)

    def test_all_non_finite_raises(self):
        with pytest.raises(ValueError):
            combine_inverse_variance([(1.0, math.inf)])

    def test_zero_variance_floored(self):
        estimate, variance = combine_inverse_variance([(5.0, 0.0)])
        assert estimate == 5.0
        assert variance > 0


class TestRatioVariance:
    def test_zero_denominator(self):
        assert math.isinf(ratio_variance(1.0, 1.0, 0.0, 1.0))

    def test_shrinks_with_precision(self):
        loose = ratio_variance(10.0, 4.0, 5.0, 4.0)
        tight = ratio_variance(10.0, 1.0, 5.0, 1.0)
        assert tight < loose


class TestRunningStat:
    def test_matches_batch_formulas(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        stat = RunningStat()
        for value in values:
            stat.add(value)
        assert stat.count == 6
        assert stat.mean == pytest.approx(mean(values))
        assert stat.variance == pytest.approx(sample_variance(values))

    def test_empty(self):
        stat = RunningStat()
        assert math.isnan(stat.mean)
        assert stat.variance == 0.0
