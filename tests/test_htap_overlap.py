"""HTAP epoch double-buffering: overlap correctness, pinning, and CoW.

The contracts under test (the epoch split):

* ``EngineConfig(overlap=True)`` is **bit-identical** to sequential mode
  on every backend × data plane — estimators read the published
  :class:`~repro.hiddendb.epoch.StoreEpoch` and churn lands on the live
  store, becoming visible exactly at the next publish flip.
* Estimator queries run *concurrently* with ``apply_round`` churn, and
  deferred pages stay pinned to the pre-flip epoch: no
  ``StaleResultError`` for reads that started before a publish.
* Published epochs are immutable (mutations raise), and the heap blocks
  they share with the live store are copy-on-write: post-publish churn
  never leaks into the epoch.
* The fork round executor hands estimator state back over the strict-JSON
  seam bit-identically.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.api import Engine, EngineConfig, EstimationTask
from repro.core.aggregates import count_all
from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.errors import ExperimentError
from repro.hiddendb import ConjunctiveQuery, TopKInterface
from repro.hiddendb.database import HiddenDatabase, reading_epoch
from repro.hiddendb.epoch import FrozenRun, StoreEpoch, freeze_backend
from repro.hiddendb.schema import boolean_schema

ALGORITHMS = ("RESTART", "REISSUE", "RS")


def _fig_source(seed: int = 7):
    return skewed_source(
        [2 + (i % 5) for i in range(10)], exponent=0.4, seed=seed
    )


def _run_engine(
    backend: str,
    overlap: bool,
    plane: str | None = None,
    shards: int | None = None,
    executor: str = "thread",
    parallel: int = 1,
    rounds: int = 3,
    n: int = 1200,
    tmp_path=None,
):
    """One seeded multi-tenant churn run; returns every observable output."""
    source = _fig_source()
    config = EngineConfig(
        backend=backend,
        data_plane=plane,
        shards=shards,
        parallelism=parallel,
        overlap=overlap,
        round_executor=executor,
        k=10,
        budget_per_round=60,
        seed=3,
        store_dir=str(tmp_path) if tmp_path is not None else None,
    )
    engine = Engine(config, schema=source.schema)
    engine.load(source.batch_columns(n))
    schedule = FreshTupleSchedule(
        source, inserts_per_round=40, delete_fraction=0.01
    )
    for index, algorithm in enumerate(ALGORITHMS):
        engine.submit(
            EstimationTask(algorithm, [count_all()], algorithm,
                           seed=100 + index)
        )
    rng = random.Random(11)
    outputs = []
    for position in range(rounds):
        if position:
            engine.apply_updates(lambda db: apply_round(db, schedule, rng))
            engine.advance_round()
        reports = engine.run_round()
        outputs.append({
            name: (report.estimates, report.variances, report.queries_used)
            for name, report in reports.items()
        })
    outputs.append(engine.budget_ledger())
    return outputs


# ----------------------------------------------------------------------
# Overlap mode is bit-identical to sequential, everywhere
# ----------------------------------------------------------------------
@pytest.mark.parametrize("plane", ["vectorized", "scalar"])
@pytest.mark.parametrize(
    "backend,shards",
    [("blocked", None), ("packed", None), ("sharded", 4), ("mapped", None)],
)
def test_overlap_bit_identical_to_sequential(backend, shards, plane,
                                             tmp_path):
    sequential = _run_engine(backend, False, plane, shards,
                             tmp_path=tmp_path / "seq")
    overlapped = _run_engine(backend, True, plane, shards,
                             tmp_path=tmp_path / "ovl")
    assert sequential == overlapped


def test_fork_executor_bit_identical_to_sequential():
    sequential = _run_engine("packed", False)
    forked = _run_engine("packed", False, executor="fork", parallel=2)
    assert sequential == forked
    forked_overlap = _run_engine("packed", True, executor="fork", parallel=2)
    assert sequential == forked_overlap


# ----------------------------------------------------------------------
# Churn/read overlap stress: reads pinned to the pre-flip epoch
# ----------------------------------------------------------------------
def test_estimator_queries_overlap_concurrent_churn():
    """Estimator rounds run while apply_updates churns the live store.

    With overlap on, churn takes only the write lock, so it genuinely
    interleaves with the round — and because every read is pinned to the
    published epoch, the reports are bit-identical to running the same
    rounds with no concurrent churn at all (no ``StaleResultError``, no
    torn pages).
    """
    def build():
        source = _fig_source()
        engine = Engine(
            EngineConfig(overlap=True, k=10, budget_per_round=60, seed=3),
            schema=source.schema,
        )
        engine.load(source.batch_columns(1500))
        for index, algorithm in enumerate(ALGORITHMS):
            engine.submit(
                EstimationTask(algorithm, [count_all()], algorithm,
                               seed=100 + index)
            )
        return engine

    quiet = build()
    expected = [
        {name: (r.estimates, r.queries_used)
         for name, r in quiet.run_round().items()}
        for _ in range(2)
    ]

    engine = build()
    stop = threading.Event()
    churned = []
    rng = random.Random(23)
    domains = _fig_source().schema.domain_sizes

    def churn():
        while not stop.is_set():
            engine.apply_updates(lambda db: db.insert_many([
                (tuple(rng.randrange(d) for d in domains), ())
                for _ in range(20)
            ]))
            churned.append(20)

    # Publish the first epoch, then churn concurrently with both rounds.
    first = {
        name: (r.estimates, r.queries_used)
        for name, r in engine.run_round().items()
    }
    writer = threading.Thread(target=churn)
    writer.start()
    try:
        second_live = {
            name: (r.estimates, r.queries_used)
            for name, r in engine.run_round().items()
        }
    finally:
        stop.set()
        writer.join()
    # Rounds without an advance re-read the same epoch: the concurrent
    # rounds match the quiet engine's rounds, bit for bit...
    assert first == expected[0]
    assert second_live == expected[1]
    # ... and the concurrent churn genuinely landed on the live store
    # while the rounds ran (the overlap, not a serialization artifact).
    assert sum(churned) > 0
    assert len(engine.db) == 1500 + sum(churned)
    # The next flip makes the churn visible wholesale.
    engine.advance_round()
    assert len(engine.db.published) == 1500 + sum(churned)


def test_deferred_pages_survive_post_publish_churn():
    """A page materialised from an epoch never goes stale.

    On the live store a deferred columnar page raises
    ``StaleResultError`` once a mutation lands (PR 5 contract).  Pinned
    to a published epoch, the same page keeps resolving after arbitrary
    live churn — the epoch's mutation counter is frozen.
    """
    schema = boolean_schema(4)
    db = HiddenDatabase(schema)
    rng = random.Random(5)
    db.insert_many([
        (tuple(rng.randrange(2) for _ in range(4)), ()) for _ in range(300)
    ])
    interface = TopKInterface(db, k=8)
    interface.register_attr_order([0, 1, 2, 3])
    epoch = db.publish_epoch()
    with reading_epoch(db, epoch):
        result = interface.search(ConjunctiveQuery(((0, 1), (1, 0))))
    for _ in range(5):
        db.insert((1, 0, 1, 0), ())
    db.delete(next(db.tuples()).tid)
    # Read after churn: pinned to the pre-flip epoch, still resolves.
    page = result.tuples
    assert all(t.values[0] == 1 and t.values[1] == 0 for t in page)


# ----------------------------------------------------------------------
# Epoch immutability + copy-on-write isolation
# ----------------------------------------------------------------------
def _tiny_db(backend=None, **options):
    db = HiddenDatabase(
        boolean_schema(3), backend=backend,
        backend_options=options or None,
    )
    rng = random.Random(9)
    db.insert_many([
        (tuple(rng.randrange(2) for _ in range(3)), (float(i),))
        for i in range(50)
    ])
    return db


def test_epoch_rejects_mutation():
    db = _tiny_db()
    epoch = db.publish_epoch()
    with pytest.raises(ExperimentError):
        epoch.insert(next(db.tuples()))
    with pytest.raises(ExperimentError):
        epoch.delete(0)
    with pytest.raises(ExperimentError):
        epoch.bulk_delete([0, 1])
    index = epoch.ensure_index((0, 1, 2))
    with pytest.raises(ExperimentError):
        db.store.ensure_index((0, 1, 2))._keys.freeze().add(7)
    assert index.count_prefix([]) == len(epoch)


def test_epoch_is_isolated_from_live_churn():
    db = _tiny_db()
    db.store.ensure_index((0, 1, 2))
    epoch = db.publish_epoch()
    before_tids = sorted(t.tid for t in epoch.tuples())
    before_measures = {t.tid: t.measures for t in epoch.tuples()}
    # Kill, replace, and insert on the live store — all three mutation
    # shapes that touch shared heap-block columns in place.
    db.delete(before_tids[0])
    db.update_measures(before_tids[1], (99.5,))
    db.insert((1, 1, 1), (7.0,))
    assert sorted(t.tid for t in epoch.tuples()) == before_tids
    assert {t.tid: t.measures for t in epoch.tuples()} == before_measures
    assert epoch.get(before_tids[1]).measures == before_measures[
        before_tids[1]
    ]
    # The live store saw everything.
    assert len(db) == 50
    assert db.store.get(before_tids[1]).measures == (99.5,)


@pytest.mark.parametrize(
    "backend,options",
    [("blocked", {}), ("packed", {}), ("sharded", {"shards": 3}),
     ("mapped", {})],
)
def test_epoch_index_queries_match_live_at_publish(backend, options):
    db = _tiny_db(backend=backend, **options)
    db.store.ensure_index((0, 1, 2))
    live_index = db.store.ensure_index((0, 1, 2))
    expected = {
        prefix: list(live_index.iter_tids(list(prefix)))
        for prefix in ((), (0,), (1,), (0, 1), (1, 0, 1))
    }
    epoch = db.publish_epoch()
    for _ in range(10):
        db.insert((0, 0, 0), (1.0,))
    frozen_index = epoch.ensure_index((0, 1, 2))
    for prefix, tids in expected.items():
        assert list(frozen_index.iter_tids(list(prefix))) == tids
        assert frozen_index.range_tids(list(prefix)).tolist() == tids
        assert frozen_index.count_prefix(list(prefix)) == len(tids)


def test_round_index_pins_with_the_epoch():
    db = _tiny_db()
    epoch = db.publish_epoch()
    assert isinstance(epoch, StoreEpoch)
    assert epoch.round_index == 1
    db.advance_round()
    db.advance_round()
    assert db.current_round == 3
    with reading_epoch(db, epoch):
        assert db.current_round == 1
        assert len(db) == 50
    assert db.current_round == 3


def test_freeze_backend_views_are_stable():
    from repro.hiddendb.backends import make_backend

    for name, options in (
        ("blocked", {}), ("packed", {}), ("sharded", {"shards": 3}),
    ):
        backend = make_backend(name, key_bound=2**20, **options)
        keys = list(range(0, 3000, 7))
        backend.bulk_add(keys)
        frozen = freeze_backend(backend)
        assert len(frozen) == len(keys)
        backend.bulk_add(range(1, 100, 7))
        assert len(frozen) == len(keys)
        assert list(frozen.range_keys(0, 100)) == [
            k for k in keys if k < 100
        ]
        assert frozen.rank(1400) == sum(1 for k in keys if k < 1400)
        assert 14 in frozen and 15 not in frozen
        frozen.check_invariants()
        with pytest.raises(ExperimentError):
            frozen.add(5)


def test_frozen_run_wide_keys_and_int64_edge():
    run = FrozenRun([2**70, 2**80, 2**90])
    assert run.rank(2**75) == 1
    assert run.count_range(0, 2**100) == 3
    narrow = FrozenRun(FrozenRun([1, 5, 9])._run)
    # Probes at/past the int64 bound clamp instead of overflowing
    # searchsorted (a prefix hi can be exactly 2**63).
    assert narrow.rank(2**63) == 3
    assert narrow.count_range(-(2**70), 2**63) == 3


def test_overlap_refuses_on_query_hooks():
    source = _fig_source()
    engine = Engine(
        EngineConfig(overlap=True, k=10, budget_per_round=40, seed=1),
        schema=source.schema,
    )
    engine.load(source.batch_columns(400))
    handle = engine.submit(
        EstimationTask("hooked", [count_all()], "RS", seed=4)
    )
    handle.estimator.on_query = lambda: None
    with pytest.raises(ExperimentError, match="on_query"):
        engine.run_round()


def test_config_validates_round_executor():
    with pytest.raises(ExperimentError):
        EngineConfig(round_executor="carrier-pigeon")
    assert EngineConfig(round_executor="fork").round_executor == "fork"
    assert EngineConfig(overlap=True).overlap is True
