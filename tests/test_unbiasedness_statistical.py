"""Many-trial statistical unbiasedness smoke (marked ``slow``).

Runs RESTART / REISSUE / RS over many independent seeds on a small
synthetic database and asserts the COUNT and SUM round estimates land
inside analytic confidence bounds around the exact ground truth — on
*both* query planes, so the columnar plane is checked not just for page
parity (see ``test_query_plane_parity``) but for estimator-level
unbiasedness end to end.

The bound: across ``TRIALS`` independent seeds the trial mean is
approximately normal with standard error ``sqrt(sample_var / TRIALS)``,
so ``|mean - truth| < Z * stderr`` with Z = 4 fails a centred estimator
with probability < 1e-4 per assertion; the seeds are fixed, so a pass is
deterministic.

Skipped by default (``pytest -m slow`` or ``REPRO_RUN_SLOW=1`` runs it);
CI runs it in the nightly-style optional job and the coverage job.
"""

import math
import random

import pytest

from repro import (
    HiddenDatabase,
    ReissueEstimator,
    RestartEstimator,
    RsEstimator,
    TopKInterface,
    count_all,
    sum_measure,
)
from repro.core.variance import mean, sample_variance
from repro.data.synthetic import skewed_source
from repro.hiddendb.store import using_data_plane

pytestmark = pytest.mark.slow

DOMAINS = [4, 4, 3, 3]
TRIALS = 24
Z_BOUND = 4.0


def _build_db(plane):
    with using_data_plane(plane):
        source = skewed_source(
            DOMAINS, exponent=0.4, seed=7, measures=("m",),
            measure_sampler=lambda rng: (rng.uniform(10.0, 50.0),),
        )
        db = HiddenDatabase(source.schema)
        db.insert_many(source.batch_columns(1200, distinct=False))
    return db


def _churn(db, rng):
    tids = [t.tid for t in db.tuples()]
    rng.shuffle(tids)
    for tid in tids[:40]:
        db.delete(tid)
    sizes = db.schema.domain_sizes
    for _ in range(40):
        db.insert(
            bytes(rng.randrange(s) for s in sizes), (rng.uniform(10.0, 50.0),)
        )
    db.advance_round()


def _assert_within_bounds(estimates, truth, label):
    spread = math.sqrt(sample_variance(estimates) / len(estimates))
    if spread == 0:
        assert mean(estimates) == pytest.approx(truth), label
        return
    z = abs(mean(estimates) - truth) / spread
    assert z < Z_BOUND, (
        f"{label}: mean {mean(estimates):.2f} vs truth {truth:.2f} "
        f"(z={z:.2f} >= {Z_BOUND})"
    )


@pytest.mark.parametrize("plane", ["vectorized", "scalar"])
@pytest.mark.parametrize(
    "estimator_cls", [RestartEstimator, ReissueEstimator, RsEstimator]
)
def test_count_and_sum_round_estimates_unbiased(plane, estimator_cls):
    """Round-1 COUNT and SUM estimates centre on exact ground truth."""
    db = _build_db(plane)
    with using_data_plane(plane):
        specs = [count_all(), sum_measure(db.schema, "m")]
        count_truth = float(len(db))
        sum_truth = specs[1].ground_truth(db)
        counts, sums = [], []
        for seed in range(TRIALS):
            interface = TopKInterface(db, k=60)
            estimator = estimator_cls(
                interface, list(specs), budget_per_round=120, seed=seed
            )
            report = estimator.run_round()
            counts.append(report.estimates["count"])
            sums.append(report.estimates["sum_m"])
        _assert_within_bounds(
            counts, count_truth, f"{estimator_cls.name}/{plane}/count"
        )
        _assert_within_bounds(
            sums, sum_truth, f"{estimator_cls.name}/{plane}/sum"
        )


@pytest.mark.parametrize("plane", ["vectorized", "scalar"])
@pytest.mark.parametrize(
    "estimator_cls", [ReissueEstimator, RsEstimator]
)
def test_post_churn_round_estimates_unbiased(plane, estimator_cls):
    """Reissuing estimators stay centred on the *new* round's truth."""
    with using_data_plane(plane):
        spec = count_all()
        estimates = []
        for seed in range(TRIALS):
            db = _build_db(plane)
            rng = random.Random(100 + seed)
            interface = TopKInterface(db, k=60)
            estimator = estimator_cls(
                interface, [spec], budget_per_round=120, seed=seed
            )
            estimator.run_round()
            _churn(db, rng)
            report = estimator.run_round()
            # Churn contents are seeded per trial; collect the per-trial
            # error against that trial's exact size.
            estimates.append(report.estimates["count"] - float(len(db)))
        _assert_within_bounds(
            estimates, 0.0, f"{estimator_cls.name}/{plane}/post-churn count"
        )


@pytest.mark.parametrize("plane", ["vectorized", "scalar"])
def test_planes_produce_identical_estimates(plane):
    """Sanity anchor: a seeded estimator run is deterministic per plane."""
    db = _build_db(plane)
    with using_data_plane(plane):
        outputs = []
        for _ in range(2):
            interface = TopKInterface(db, k=60)
            estimator = RsEstimator(
                interface, [count_all()], budget_per_round=100, seed=3
            )
            outputs.append(estimator.run_round().estimates["count"])
        assert outputs[0] == outputs[1]


def test_scalar_and_columnar_estimates_bit_identical():
    """The same seeded run yields the *same float* on both planes."""

    def run(plane):
        db = _build_db(plane)
        with using_data_plane(plane):
            interface = TopKInterface(db, k=60)
            estimator = RsEstimator(
                interface,
                [count_all(), sum_measure(db.schema, "m")],
                budget_per_round=150,
                seed=9,
            )
            report = estimator.run_round()
            return report.estimates["count"], report.estimates["sum_m"]

    assert run("vectorized") == run("scalar")
