"""Cost-based self-tuning: model determinism, online migration, auto mode.

The contracts under test (see ``docs/tuning.md``):

* The cost model and controller are **deterministic**: the same recorded
  profile stream + the same priors produce the same decision sequence,
  replayable bit-for-bit — with and without ``auto``.
* ``TupleStore.migrate_backend`` is an online, content-preserving swap:
  estimates are **bit-identical** across a mid-run re-shard on every
  backend × both data planes, the mutation epoch does not advance, and
  readers pinned to a published epoch are unaffected.
* ``EngineConfig(auto=True)`` selects backend/shards/parallelism from
  the observed profile; explicitly pinned fields are never overridden.
* Regression (sharded rank caches): per-shard and composite rank caches
  populated before a shard-count migration must not leak stale ranks
  into post-migration queries.
"""

from __future__ import annotations

import random

import pytest

from repro.api import Engine, EngineConfig, EstimationTask
from repro.core.aggregates import count_all
from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.errors import ExperimentError
from repro.hiddendb import ConjunctiveQuery, TopKInterface
from repro.hiddendb.database import HiddenDatabase, reading_epoch
from repro.hiddendb.schema import Attribute, Schema
from repro.obs import OBS
from repro.tuning import (
    ACTION_INITIAL,
    ACTION_KEEP,
    ACTION_MIGRATE,
    Candidate,
    CostModel,
    DEFAULT_PRIORS,
    TuningController,
    WorkloadProfile,
    default_candidates,
    priors_from_baselines,
)

ALGORITHMS = ("RESTART", "REISSUE", "RS")

#: A recorded profile stream: cold start, small read-heavy store, then a
#: profile shift to a large delete-heavy store (the fixture the replay
#: determinism tests fold through the controller).
PROFILE_FIXTURE = (
    WorkloadProfile(store_size=10_000, churn_per_round=200.0,
                    delete_share=0.1, queries_per_round=300.0,
                    tenants=2, rounds=1),
    WorkloadProfile(store_size=10_000, churn_per_round=200.0,
                    delete_share=0.1, queries_per_round=300.0,
                    tenants=2, rounds=1),
    WorkloadProfile(store_size=1_000_000, churn_per_round=80_000.0,
                    delete_share=0.6, queries_per_round=300.0,
                    tenants=2, rounds=1),
    WorkloadProfile(store_size=1_000_000, churn_per_round=80_000.0,
                    delete_share=0.6, queries_per_round=300.0,
                    tenants=2, rounds=1),
    WorkloadProfile(store_size=950_000, churn_per_round=80_000.0,
                    delete_share=0.7, queries_per_round=300.0,
                    tenants=2, rounds=1),
)


def _controller(**kwargs):
    kwargs.setdefault("cpu_budget", 8)
    return TuningController(CostModel(DEFAULT_PRIORS), **kwargs)


# ----------------------------------------------------------------------
# Priors and candidate grid
# ----------------------------------------------------------------------
def test_priors_fall_back_to_defaults():
    assert priors_from_baselines({}) == DEFAULT_PRIORS
    assert priors_from_baselines("nonexistent/baselines.json") == (
        DEFAULT_PRIORS
    )


def test_priors_use_within_pair_ratios_only():
    priors = priors_from_baselines({
        "fig12_blocked": {"wall_seconds": 20.0},
        "fig12_packed": {"wall_seconds": 10.0},
        "sharded_fig12": {"wall_seconds": 20.0},
        "mapped_fig12": {"wall_seconds": 60.0},
    })
    assert priors["packed"] == pytest.approx(priors["blocked"] * 0.5)
    assert priors["mapped"] == pytest.approx(priors["sharded"] * 3.0)
    # A pair with one missing wall keeps the default.
    partial = priors_from_baselines({
        "fig12_blocked": {"wall_seconds": 20.0},
    })
    assert partial["packed"] == DEFAULT_PRIORS["packed"]


def test_priors_clamp_outliers():
    priors = priors_from_baselines({
        "fig12_blocked": {"wall_seconds": 1.0},
        "fig12_packed": {"wall_seconds": 1000.0},
    })
    assert priors["packed"] == pytest.approx(priors["blocked"] * 4.0)


def test_candidate_grid_respects_pins():
    grid = default_candidates(8, {"backend": "packed"})
    assert {candidate.backend for candidate in grid} == {"packed"}
    grid = default_candidates(8, {"shards": 4})
    assert {candidate.backend for candidate in grid} == {"sharded"}
    assert {candidate.shards for candidate in grid} == {4}
    grid = default_candidates(8, {"parallelism": 2})
    assert {candidate.parallelism for candidate in grid} == {2}


def test_unknown_backend_has_no_signature():
    model = CostModel(DEFAULT_PRIORS)
    with pytest.raises(ExperimentError):
        model.score(Candidate("btree9000"), WorkloadProfile())


# ----------------------------------------------------------------------
# The model prefers the right substrate per profile
# ----------------------------------------------------------------------
def test_small_store_prefers_packed_large_churny_prefers_sharded():
    model = CostModel(DEFAULT_PRIORS)
    grid = default_candidates(8)
    small = model.rank(grid, PROFILE_FIXTURE[0])[0][1]
    assert small.backend == "packed"
    big = model.rank(grid, PROFILE_FIXTURE[2])[0][1]
    assert big.backend == "sharded"
    assert big.shards == 8 and big.parallelism == 8


# ----------------------------------------------------------------------
# Determinism: same profiles + same priors => same decision sequence
# ----------------------------------------------------------------------
def test_replay_is_deterministic():
    runs = []
    for _ in range(3):
        controller = _controller()
        controller.initial_decision()
        controller.replay(PROFILE_FIXTURE)
        runs.append([d.to_dict() for d in controller.decisions])
    assert runs[0] == runs[1] == runs[2]
    actions = [d["action"] for d in runs[0]]
    assert actions[0] == ACTION_INITIAL
    assert ACTION_MIGRATE in actions
    # The profile shift (cooldown permitting) lands on sharded: the last
    # decision of the stream migrated there.
    assert runs[0][-1]["action"] == ACTION_MIGRATE
    assert runs[0][-1]["choice"]["backend"] == "sharded"


def test_observe_without_initial_decides_initial():
    controller = _controller()
    decision = controller.observe(PROFILE_FIXTURE[0])
    assert decision.action == ACTION_INITIAL
    assert controller.current == decision.choice


def test_hysteresis_keeps_near_ties():
    controller = _controller(improvement_threshold=0.99)
    controller.initial_decision()
    decisions = controller.replay(PROFILE_FIXTURE)
    assert all(d.action == ACTION_KEEP for d in decisions)
    assert any("hysteresis" in d.reason for d in decisions)


def test_cooldown_blocks_back_to_back_migrations():
    controller = _controller(cooldown_rounds=10)
    controller.initial_decision()
    # Alternate between profiles that each favor the other backend: the
    # first shift migrates, every later one sits out the cooldown.
    stream = [PROFILE_FIXTURE[0], PROFILE_FIXTURE[2], PROFILE_FIXTURE[0],
              PROFILE_FIXTURE[2], PROFILE_FIXTURE[0]]
    actions = [controller.observe(p).action for p in stream]
    assert actions.count(ACTION_MIGRATE) == 1
    assert any(
        "cooldown" in d.reason for d in controller.decisions
        if d.action == ACTION_KEEP
    )


def test_warmup_blocks_cold_migration():
    controller = _controller(warmup_rounds=3)
    controller.initial_decision()
    first = controller.observe(PROFILE_FIXTURE[2])
    assert first.action == ACTION_KEEP
    assert "warmup" in first.reason


# ----------------------------------------------------------------------
# Online migration: bit-identical estimates on every backend x plane
# ----------------------------------------------------------------------
def _fig_source(seed: int = 7):
    return skewed_source(
        [2 + (i % 5) for i in range(10)], exponent=0.4, seed=seed
    )


def _run_engine(backend, plane, shards=None, migrate_to=None, rounds=4,
                overlap=False):
    """One seeded multi-tenant churn run, optionally migrating the
    store's backend between rounds; returns every observable output."""
    source = _fig_source()
    config = EngineConfig(
        backend=backend, data_plane=plane, shards=shards, overlap=overlap,
        k=10, budget_per_round=60, seed=3,
    )
    engine = Engine(config, schema=source.schema)
    engine.load(source.batch_columns(1200))
    schedule = FreshTupleSchedule(
        source, inserts_per_round=40, delete_fraction=0.01
    )
    for index, algorithm in enumerate(ALGORITHMS):
        engine.submit(
            EstimationTask(algorithm, [count_all()], algorithm,
                           seed=100 + index)
        )
    rng = random.Random(11)
    outputs = []
    for position in range(rounds):
        if position:
            engine.apply_updates(lambda db: apply_round(db, schedule, rng))
            engine.advance_round()
        if migrate_to is not None and position == rounds // 2:
            target, options = migrate_to
            engine.apply_updates(
                lambda db: db.migrate_backend(target, options)
            )
            assert engine.backend == target
        reports = engine.run_round()
        outputs.append({
            name: (report.estimates, report.variances, report.queries_used)
            for name, report in reports.items()
        })
    outputs.append(engine.budget_ledger())
    return outputs


#: Each backend migrates to a genuinely different layout mid-run (the
#: sharded case is a shard-count re-shard, ISSUE satellite 6).
MIGRATIONS = [
    ("blocked", None, ("sharded", {"shards": 4})),
    ("packed", None, ("blocked", None)),
    ("sharded", 4, ("sharded", {"shards": 2})),
    ("mapped", None, ("packed", None)),
]


@pytest.mark.parametrize("plane", ["vectorized", "scalar"])
@pytest.mark.parametrize(
    "backend,shards,migrate_to", MIGRATIONS,
    ids=[f"{b}->{m[0]}{m[1] or ''}" for b, _, m in MIGRATIONS],
)
def test_migration_bit_identical(backend, shards, migrate_to, plane):
    baseline = _run_engine(backend, plane, shards)
    migrated = _run_engine(backend, plane, shards, migrate_to=migrate_to)
    assert baseline == migrated


def test_migration_bit_identical_under_overlap():
    baseline = _run_engine("packed", "vectorized", overlap=True)
    migrated = _run_engine("packed", "vectorized", overlap=True,
                           migrate_to=("sharded", {"shards": 4}))
    assert baseline == migrated


def test_migration_preserves_content_and_mutation_epoch():
    schema = Schema([Attribute("a", 4), Attribute("b", 4)], measures=("m",))
    db = HiddenDatabase(schema, backend="packed")
    for i in range(300):
        db.insert([i % 4, (i // 4) % 4], [float(i)])
    db.delete(7)
    db.store.ensure_index((0, 1))
    before = sorted((t.tid, t.values, t.score) for t in db.store.tuples())
    epoch_before = db.store.mutation_epoch
    db.migrate_backend("sharded", {"shards": 2})
    assert db.backend == "sharded"
    assert db.store.mutation_epoch == epoch_before
    after = sorted((t.tid, t.values, t.score) for t in db.store.tuples())
    assert before == after
    assert db.store.index_orders() == ((0, 1),)


def test_pinned_epoch_readers_unaffected_by_migration():
    schema = Schema([Attribute("a", 3)], measures=())
    db = HiddenDatabase(schema, backend="packed")
    for i in range(60):
        db.insert([i % 3])
    epoch = db.publish_epoch()
    with reading_epoch(db, epoch):
        pinned_before = sorted(t.tid for t in db.tuples())
    db.migrate_backend("blocked")
    with reading_epoch(db, epoch):
        assert sorted(t.tid for t in db.tuples()) == pinned_before
    assert sorted(t.tid for t in db.store.tuples()) == pinned_before


# ----------------------------------------------------------------------
# Regression: sharded rank caches across a shard-count migration
# ----------------------------------------------------------------------
def test_sharded_rank_caches_do_not_survive_reshard():
    """Prime per-shard and composite rank caches with real queries, then
    re-shard; post-migration results must match a fresh same-content
    database built directly on the target layout."""
    schema = Schema([Attribute("a", 5), Attribute("b", 5)], measures=())
    db = HiddenDatabase(schema, backend="sharded",
                        backend_options={"shards": 4})
    rng = random.Random(5)
    for _ in range(400):
        db.insert([rng.randrange(5), rng.randrange(5)])
    queries = [ConjunctiveQuery.root()] + [
        ConjunctiveQuery([(0, value)]) for value in range(5)
    ]
    interface = TopKInterface(db, k=20)
    primed = [interface.search(q).tuples for q in queries]
    db.migrate_backend("sharded", {"shards": 2})
    migrated = [interface.search(q).tuples for q in queries]
    assert migrated == primed  # content unchanged => same top-k pages
    fresh = HiddenDatabase(schema, backend="sharded",
                           backend_options={"shards": 2})
    for t in db.tuples():
        fresh.insert_tuple(t)
    fresh_interface = TopKInterface(fresh, k=20)
    assert [fresh_interface.search(q).tuples for q in queries] == migrated


# ----------------------------------------------------------------------
# EngineConfig(auto=True): selection, pins, bit-identity, reporting
# ----------------------------------------------------------------------
def test_auto_config_validates_and_round_trips():
    with pytest.raises(ExperimentError):
        EngineConfig(auto="yes")
    config = EngineConfig(auto=True, backend="packed")
    assert EngineConfig.from_dict(config.to_dict()) == config
    # Old payloads without the field read as auto=False.
    payload = config.to_dict()
    del payload["auto"]
    assert EngineConfig.from_dict(payload).auto is False


def _auto_engine(monkeypatch, **config_kwargs):
    monkeypatch.setenv("REPRO_TUNING_CPUS", "4")
    source = _fig_source()
    engine = Engine(
        EngineConfig(auto=True, k=10, budget_per_round=60, seed=3,
                     **config_kwargs),
        schema=source.schema,
    )
    return engine, source


def test_auto_initial_selection_from_priors(monkeypatch):
    engine, _ = _auto_engine(monkeypatch)
    assert engine.backend == "packed"  # best cold-start candidate
    report = engine.tuning_report()
    assert report["enabled"] is True
    assert report["decisions"][0]["action"] == ACTION_INITIAL


def test_auto_respects_pinned_backend(monkeypatch):
    engine, source = _auto_engine(monkeypatch, backend="blocked")
    assert engine.backend == "blocked"
    engine.load(source.batch_columns(2000))
    rng = random.Random(1)
    for _ in range(3):
        engine.apply_updates(
            lambda db: db.bulk_delete(db.store.random_tids(rng, 200))
        )
        engine.load(source.batch_columns(400))
        engine.advance_round()
    assert engine.backend == "blocked"  # pin survives every observation
    assert all(
        d["choice"]["backend"] == "blocked"
        for d in engine.tuning_report()["decisions"]
    )


def test_auto_migrates_on_profile_shift_and_reports(monkeypatch):
    engine, source = _auto_engine(monkeypatch)
    engine.load(source.batch_columns(500))
    engine.submit(EstimationTask("count", [count_all()], "RS", seed=9))
    engine.run_round()
    engine.advance_round()
    assert engine.backend == "packed"
    # Profile shift: grow hard with delete-heavy churn.
    rng = random.Random(2)
    for _ in range(3):
        engine.load(source.batch_columns(120_000))
        engine.apply_updates(
            lambda db: db.bulk_delete(db.store.random_tids(rng, 30_000))
        )
        engine.advance_round()
        engine.run_round()
    assert engine.backend == "sharded"
    report = engine.tuning_report()
    actions = [d["action"] for d in report["decisions"]]
    assert ACTION_MIGRATE in actions
    assert report["effective"]["backend"] == "sharded"
    assert engine.config.shards == report["effective"]["shards"]
    # The engine log and ledger kept working across the migration.
    assert engine["count"].rounds_run == 4


def test_auto_estimates_bit_identical_to_pinned(monkeypatch):
    """The same workload driven with auto (which migrates mid-run) and
    with every knob pinned produces identical estimate streams."""
    def run(auto):
        monkeypatch.setenv("REPRO_TUNING_CPUS", "4")
        source = _fig_source()
        config = (
            EngineConfig(auto=True, k=10, budget_per_round=60, seed=3)
            if auto else
            EngineConfig(backend="blocked", k=10, budget_per_round=60,
                         seed=3)
        )
        engine = Engine(config, schema=source.schema)
        engine.load(source.batch_columns(500))
        for index, algorithm in enumerate(ALGORITHMS):
            engine.submit(
                EstimationTask(algorithm, [count_all()], algorithm,
                               seed=100 + index)
            )
        rng = random.Random(2)
        outputs = []
        for _ in range(3):
            engine.load(source.batch_columns(60_000))
            engine.apply_updates(
                lambda db: db.bulk_delete(db.store.random_tids(rng, 15_000))
            )
            engine.advance_round()
            reports = engine.run_round()
            outputs.append({
                name: (report.estimates, report.queries_used)
                for name, report in reports.items()
            })
        return outputs, engine.backend

    auto_outputs, auto_backend = run(auto=True)
    pinned_outputs, pinned_backend = run(auto=False)
    assert auto_backend != pinned_backend  # auto really moved
    assert auto_outputs == pinned_outputs


def test_auto_with_existing_db_adopts_it(monkeypatch):
    monkeypatch.setenv("REPRO_TUNING_CPUS", "4")
    schema = Schema([Attribute("a", 3)], measures=())
    db = HiddenDatabase(schema, backend="mapped")
    engine = Engine(EngineConfig(auto=True), db=db)
    assert engine.backend == "mapped"
    report = engine.tuning_report()
    assert report["current"]["backend"] == "mapped"
    assert report["decisions"] == []  # adoption is not a decision


def test_tuning_report_disabled_shape():
    schema = Schema([Attribute("a", 3)], measures=())
    engine = Engine(EngineConfig(backend="packed"), schema=schema)
    report = engine.tuning_report()
    assert report["enabled"] is False
    assert report["effective"]["backend"] == "packed"
    assert "decisions" not in report


def test_tuning_metrics_counted():
    schema = Schema([Attribute("a", 3)], measures=())
    db = HiddenDatabase(schema, backend="packed")
    for i in range(30):
        db.insert([i % 3])
    OBS.reset()
    OBS.enable()
    try:
        db.migrate_backend("sharded", {"shards": 2})
        snapshot = OBS.snapshot()
    finally:
        OBS.disable()
        OBS.reset()
    # reset() zeroes values but keeps label series registered by earlier
    # tests, so ignore zero-valued series from other suites.
    migrations = {
        tuple(sorted(entry["labels"].items())): entry["value"]
        for entry in snapshot["counters"]
        if entry["name"] == "repro_tuning_migrations_total" and entry["value"]
    }
    assert migrations == {(("backend", "sharded"),): 1}
    walls = [
        entry for entry in snapshot["histograms"]
        if entry["name"] == "repro_tuning_migration_seconds"
    ]
    assert walls and walls[0]["count"] == 1
