"""Coverage for result laziness, the error hierarchy, and package wiring."""

import pytest

import repro
from repro import (
    ConjunctiveQuery,
    EstimationError,
    ExperimentError,
    QueryBudgetExhausted,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.hiddendb.result import QueryResult, QueryStatus, top_k_by_score
from repro.hiddendb.tuples import make_tuple


class TestLazyResults:
    def test_loader_called_once(self):
        calls = []

        def loader():
            calls.append(1)
            return [make_tuple(0, [0])]

        result = QueryResult(QueryStatus.OVERFLOW, k=1, loader=loader)
        assert len(result.tuples) == 1
        assert len(result.tuples) == 1
        assert len(calls) == 1

    def test_overflow_flag_without_materialisation(self):
        exploded = []
        result = QueryResult(
            QueryStatus.OVERFLOW, k=1, loader=lambda: exploded.append(1) or []
        )
        assert result.overflow
        assert not exploded  # reading the flag must not rank the page

    def test_eager_tuples(self):
        page = (make_tuple(0, [0]),)
        result = QueryResult(QueryStatus.VALID, k=5, tuples=page)
        assert result.tuples == page
        assert len(result) == 1

    def test_top_k_by_score_order(self):
        tuples = [
            make_tuple(0, [0], score=0.1),
            make_tuple(1, [0], score=0.9),
            make_tuple(2, [0], score=0.5),
        ]
        page = top_k_by_score(tuples, 2)
        assert [t.tid for t in page] == [1, 2]

    def test_top_k_tid_tiebreak(self):
        tuples = [make_tuple(i, [0], score=0.5) for i in (5, 1, 3)]
        page = top_k_by_score(tuples, 3)
        assert [t.tid for t in page] == [1, 3, 5]


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        (SchemaError, QueryError, QueryBudgetExhausted, EstimationError,
         ExperimentError),
    )
    def test_all_derive_from_repro_error(self, exc):
        if exc is QueryBudgetExhausted:
            instance = exc(5)
        else:
            instance = exc("boom")
        assert isinstance(instance, ReproError)

    def test_budget_error_carries_budget(self):
        error = QueryBudgetExhausted(42)
        assert error.budget == 42
        assert "42" in str(error)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackages_import(self):
        import repro.data
        import repro.experiments
        import repro.extensions
        import repro.marketplace

        assert repro.data.AUTOS_TOTAL_TUPLES
        assert repro.experiments.FIGURES
        assert repro.extensions.CountAssistedEstimator
        assert repro.marketplace.watch_schema

    def test_query_reexported(self):
        assert ConjunctiveQuery.root().num_predicates == 0
