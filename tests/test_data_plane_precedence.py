"""Regression tests for the data-plane selection precedence.

The contract (see :mod:`repro.hiddendb.store`): an explicit programmatic
setting — :func:`set_data_plane` or a :func:`using_data_plane` scope —
always wins over the ``REPRO_DATA_PLANE`` environment variable, which is
only a *default* consulted when nothing was set explicitly.
"""

import pytest

from repro.errors import SchemaError
from repro.hiddendb import store
from repro.hiddendb.store import (
    get_data_plane,
    overriding_data_plane,
    set_data_plane,
    using_data_plane,
)


@pytest.fixture(autouse=True)
def _restore_plane_state():
    """Leave the module-level selection exactly as we found it."""
    previous_explicit = store._data_plane
    yield
    store._data_plane = previous_explicit


def test_explicit_setting_beats_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_DATA_PLANE", "scalar")
    set_data_plane("vectorized")
    assert get_data_plane() == "vectorized"
    # ... and the other way around.
    monkeypatch.setenv("REPRO_DATA_PLANE", "vectorized")
    set_data_plane("scalar")
    assert get_data_plane() == "scalar"


def test_env_var_governs_when_nothing_set_explicitly(monkeypatch):
    store._data_plane = None
    monkeypatch.setenv("REPRO_DATA_PLANE", "scalar")
    assert get_data_plane() == "scalar"
    monkeypatch.delenv("REPRO_DATA_PLANE")
    assert get_data_plane() == "vectorized"


def test_env_var_is_read_lazily_not_frozen_at_import(monkeypatch):
    """Mutating the environment after import still changes the default."""
    store._data_plane = None
    monkeypatch.setenv("REPRO_DATA_PLANE", "vectorized")
    assert get_data_plane() == "vectorized"
    monkeypatch.setenv("REPRO_DATA_PLANE", "scalar")
    assert get_data_plane() == "scalar"


def test_invalid_env_var_only_raises_when_consulted(monkeypatch):
    monkeypatch.setenv("REPRO_DATA_PLANE", "quantum")
    set_data_plane("scalar")  # explicit setting shields the bad env value
    assert get_data_plane() == "scalar"
    store._data_plane = None  # nothing explicit -> the env value is read
    with pytest.raises(SchemaError):
        get_data_plane()


def test_set_data_plane_none_restores_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_DATA_PLANE", "scalar")
    set_data_plane("vectorized")
    assert get_data_plane() == "vectorized"
    set_data_plane(None)
    assert get_data_plane() == "scalar"


def test_set_data_plane_rejects_unknown_name():
    with pytest.raises(SchemaError):
        set_data_plane("quantum")


def test_set_data_plane_save_restore_round_trips(monkeypatch):
    """`prev = set_data_plane(x); set_data_plane(prev)` must restore even
    a never-explicitly-set state (not pin the effective default)."""
    store._data_plane = None
    monkeypatch.setenv("REPRO_DATA_PLANE", "vectorized")
    previous = set_data_plane("scalar")
    assert previous is None
    set_data_plane(previous)
    assert store._data_plane is None
    # ... so a later env change is still honoured.
    monkeypatch.setenv("REPRO_DATA_PLANE", "scalar")
    assert get_data_plane() == "scalar"
    # And an explicit prior setting round-trips as itself.
    set_data_plane("vectorized")
    assert set_data_plane("scalar") == "vectorized"
    assert set_data_plane(None) == "scalar"


def test_using_data_plane_scope_restores_unset_state(monkeypatch):
    store._data_plane = None
    monkeypatch.setenv("REPRO_DATA_PLANE", "scalar")
    with using_data_plane("vectorized"):
        assert get_data_plane() == "vectorized"
    # The scope must not pin an explicit setting on exit: the env default
    # stays in charge afterwards.
    assert store._data_plane is None
    assert get_data_plane() == "scalar"
    monkeypatch.setenv("REPRO_DATA_PLANE", "vectorized")
    assert get_data_plane() == "vectorized"


def test_context_local_override_beats_everything(monkeypatch):
    """overriding_data_plane (the engine facade's pin) outranks both the
    explicit process-wide setting and the environment variable."""
    monkeypatch.setenv("REPRO_DATA_PLANE", "vectorized")
    set_data_plane("vectorized")
    with overriding_data_plane("scalar"):
        assert get_data_plane() == "scalar"
        with overriding_data_plane("vectorized"):  # nests and restores
            assert get_data_plane() == "vectorized"
        assert get_data_plane() == "scalar"
        # A process-wide set inside the scope is shadowed there...
        set_data_plane("vectorized")
        assert get_data_plane() == "scalar"
    # ... but is in force once the scope exits.
    assert get_data_plane() == "vectorized"
    with pytest.raises(SchemaError):
        with overriding_data_plane("quantum"):
            pass
    with overriding_data_plane(None) as active:  # None = no-op
        assert active == get_data_plane()


def test_using_data_plane_none_is_a_no_op(monkeypatch):
    monkeypatch.delenv("REPRO_DATA_PLANE", raising=False)
    set_data_plane("scalar")
    with using_data_plane(None) as active:
        assert active == "scalar"
    assert get_data_plane() == "scalar"
