"""The typed error taxonomy: stable codes, wire mapping, rehydration.

Satellite contract of the service PR: every exception class carries a
stable machine-readable ``code`` and an HTTP status class, the
exception→wire mapping lives in exactly one place
(:func:`repro.errors.wire_error`), and clients rebuild the original
class from the wire payload (:func:`repro.errors.error_from_wire`).
"""

import pytest

from repro.errors import (
    ERROR_CLASSES,
    AdmissionError,
    DuplicateTaskError,
    EstimationError,
    ExperimentError,
    QueryBudgetExhausted,
    ReproError,
    SchemaError,
    StaleResultError,
    UnknownTaskError,
    WireFormatError,
    error_code,
    error_from_wire,
    http_status_of,
    wire_error,
)

#: The stable code/status table.  Changing any entry is a wire break and
#: must bump SCHEMA_VERSION — this test is the tripwire.
EXPECTED = {
    SchemaError: ("SCHEMA_INVALID", 400),
    QueryBudgetExhausted: ("BUDGET_EXHAUSTED", 429),
    StaleResultError: ("STALE_RESULT", 409),
    EstimationError: ("ESTIMATION_FAILED", 500),
    ExperimentError: ("CONFIG_INVALID", 400),
    UnknownTaskError: ("UNKNOWN_TASK", 404),
    DuplicateTaskError: ("DUPLICATE_TASK", 409),
    WireFormatError: ("WIRE_INVALID", 400),
    AdmissionError: ("ADMISSION_REJECTED", 429),
}


class TestCodes:
    @pytest.mark.parametrize(
        "cls,expected", EXPECTED.items(),
        ids=[cls.__name__ for cls in EXPECTED],
    )
    def test_code_and_status_are_stable(self, cls, expected):
        code, status = expected
        assert cls.code == code
        assert cls.http_status == status
        assert ERROR_CLASSES[code] is cls

    def test_codes_are_unique(self):
        codes = [cls.code for cls in EXPECTED]
        assert len(set(codes)) == len(codes)

    def test_unclassified_exceptions_map_to_internal(self):
        assert error_code(RuntimeError("boom")) == "INTERNAL"
        assert http_status_of(RuntimeError("boom")) == 500
        assert error_code(ReproError("x")) == "INTERNAL"


class TestBackwardCompatibility:
    """The migration contract: old except clauses keep working."""

    def test_task_errors_are_experiment_errors(self):
        assert issubclass(UnknownTaskError, ExperimentError)
        assert issubclass(DuplicateTaskError, ExperimentError)

    def test_wire_format_error_is_a_value_error(self):
        # Deprecation bridge (one release): wire decode used to raise
        # bare ValueError.
        assert issubclass(WireFormatError, ValueError)

    def test_everything_is_a_repro_error(self):
        for cls in EXPECTED:
            assert issubclass(cls, ReproError)


class TestWireMapping:
    def test_wire_error_payload_shape(self):
        payload = wire_error(UnknownTaskError("ghost"))
        assert payload == {
            "code": "UNKNOWN_TASK",
            "error_type": "UnknownTaskError",
            "message": payload["message"],
            "details": {"task": "ghost"},
        }
        assert "ghost" in payload["message"]

    def test_budget_details_carry_the_budget(self):
        exc = QueryBudgetExhausted(57)
        assert wire_error(exc)["details"] == {"budget": 57}

    def test_admission_details(self):
        exc = AdmissionError(
            "window exhausted", tenant="t1", retry_after_rounds=5,
            remaining=3,
        )
        details = wire_error(exc)["details"]
        assert details == {
            "tenant": "t1", "retry_after_rounds": 5, "remaining": 3,
        }

    def test_foreign_exception_payload(self):
        payload = wire_error(KeyError("oops"))
        assert payload["code"] == "INTERNAL"
        assert payload["error_type"] == "KeyError"


class TestRehydration:
    """error_from_wire rebuilds the typed exception a client should raise."""

    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError("bad attribute"),
            QueryBudgetExhausted(12),
            UnknownTaskError("ghost"),
            DuplicateTaskError("task 'x' already submitted"),
            WireFormatError("not json"),
            AdmissionError("nope", tenant="t", retry_after_rounds=2,
                           remaining=0),
        ],
        ids=lambda exc: type(exc).__name__,
    )
    def test_round_trip_preserves_class_and_details(self, exc):
        rebuilt = error_from_wire(wire_error(exc))
        assert type(rebuilt) is type(exc)
        assert str(rebuilt) == str(exc)
        assert wire_error(rebuilt)["details"] == wire_error(exc)["details"]

    def test_rehydrated_attributes_are_usable(self):
        rebuilt = error_from_wire(wire_error(QueryBudgetExhausted(9)))
        assert rebuilt.budget == 9
        rebuilt = error_from_wire(wire_error(UnknownTaskError("ghost")))
        assert rebuilt.name == "ghost"
        rebuilt = error_from_wire(wire_error(
            AdmissionError("x", tenant="t9", retry_after_rounds=4,
                           remaining=1)
        ))
        assert (rebuilt.tenant, rebuilt.retry_after_rounds,
                rebuilt.remaining) == ("t9", 4, 1)

    def test_unknown_code_degrades_to_repro_error(self):
        rebuilt = error_from_wire({
            "code": "FROM_THE_FUTURE", "error_type": "NewError",
            "message": "??", "details": {},
        })
        assert type(rebuilt) is ReproError
        assert "??" in str(rebuilt)

    def test_rehydrated_errors_are_catchable_as_before(self):
        with pytest.raises(ExperimentError):
            raise error_from_wire(wire_error(UnknownTaskError("x")))
        with pytest.raises(ValueError):
            raise error_from_wire(wire_error(WireFormatError("x")))
