"""Unit and behavioural tests for the three estimators."""

import math
import random

import pytest

from repro import (
    EstimationError,
    HiddenDatabase,
    ReissueEstimator,
    RestartEstimator,
    RsEstimator,
    TopKInterface,
    avg_measure,
    count_all,
    count_where,
    size_change,
)
from repro.core.estimators.base import shared_pushdown
from repro.data import autos_snapshot, SnapshotPoolSchedule, apply_round

ALL_ESTIMATORS = (RestartEstimator, ReissueEstimator, RsEstimator)


def medium_env(n_total=6000, n_init=5400, seed=7):
    schema, payloads = autos_snapshot(total=n_total, seed=seed)
    db = HiddenDatabase(schema)
    for values, measures in payloads[:n_init]:
        db.insert(values, measures)
    schedule = SnapshotPoolSchedule(
        payloads[n_init:], inserts_per_round=30, delete_fraction=0.002
    )
    return db, schedule


class TestConstruction:
    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_requires_positive_budget(self, cls, small_interface):
        with pytest.raises(EstimationError):
            cls(small_interface, [count_all()], budget_per_round=0)

    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_requires_specs(self, cls, small_interface):
        with pytest.raises(EstimationError):
            cls(small_interface, [], budget_per_round=10)

    def test_rs_bootstrap_validation(self, small_interface):
        with pytest.raises(ValueError):
            RsEstimator(
                small_interface, [count_all()], budget_per_round=10,
                bootstrap_per_group=1,
            )

    def test_shared_pushdown_intersection(self, small_schema):
        a = count_where(small_schema, {"color": "blue", "size": "m"})
        b = count_where(small_schema, {"color": "blue"})
        assert shared_pushdown([a, b]) == {0: 1}
        assert shared_pushdown([a, b, count_all()]) == {}

    def test_pushdown_shapes_tree(self, small_interface, small_schema):
        spec = count_where(small_schema, {"color": "blue"})
        estimator = RestartEstimator(
            small_interface, [spec], budget_per_round=10
        )
        assert estimator.tree.fixed == {0: 1}

    def test_pushdown_disabled(self, small_interface, small_schema):
        spec = count_where(small_schema, {"color": "blue"})
        estimator = RestartEstimator(
            small_interface, [spec], budget_per_round=10,
            push_selection=False,
        )
        assert estimator.tree.fixed == {}


class TestRoundMechanics:
    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_budget_respected(self, cls, small_interface):
        estimator = cls(small_interface, [count_all()], budget_per_round=17)
        report = estimator.run_round()
        assert report.queries_used <= 17

    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_report_contents(self, cls, small_interface):
        estimator = cls(small_interface, [count_all()], budget_per_round=20)
        report = estimator.run_round()
        assert report.round_index == 1
        assert "count" in report.estimates
        assert "count" in report.variances
        assert estimator.history == [report]

    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_multi_round_history(self, cls, small_interface, small_db):
        estimator = cls(small_interface, [count_all()], budget_per_round=25)
        estimator.run_round()
        small_db.advance_round()
        report = estimator.run_round()
        assert report.round_index == 2
        assert len(estimator.history) == 2

    def test_restart_keeps_no_records(self, small_interface):
        estimator = RestartEstimator(
            small_interface, [count_all()], budget_per_round=25
        )
        estimator.run_round()
        assert estimator.records == []

    def test_reissue_accumulates_records(self, small_interface, small_db):
        estimator = ReissueEstimator(
            small_interface, [count_all()], budget_per_round=25
        )
        estimator.run_round()
        first = len(estimator.records)
        small_db.advance_round()
        estimator.run_round()
        assert len(estimator.records) >= first
        assert all(r.last_round == 2 for r in estimator.records[:first])

    def test_rs_first_round_restart_like(self, small_interface):
        estimator = RsEstimator(
            small_interface, [count_all()], budget_per_round=25
        )
        report = estimator.run_round()
        assert report.drilldowns_updated == 0
        assert report.drilldowns_new > 0


class TestAccuracy:
    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_first_round_estimate_reasonable(self, cls):
        db, _ = medium_env()
        interface = TopKInterface(db, k=50)
        estimator = cls(interface, [count_all()], budget_per_round=300, seed=2)
        report = estimator.run_round()
        assert report.estimates["count"] == pytest.approx(len(db), rel=0.5)

    @pytest.mark.parametrize("cls", (ReissueEstimator, RsEstimator))
    def test_tracking_improves_over_rounds(self, cls):
        db, schedule = medium_env()
        interface = TopKInterface(db, k=50)
        estimator = cls(interface, [count_all()], budget_per_round=250, seed=4)
        rng = random.Random(0)
        errors = []
        for round_number in range(12):
            if round_number:
                apply_round(db, schedule, rng)
                db.advance_round()
            report = estimator.run_round()
            errors.append(abs(report.estimates["count"] / len(db) - 1))
        assert sum(errors[-4:]) / 4 < sum(errors[:4]) / 4 + 0.02

    def test_avg_estimate_tracks_truth(self):
        db, schedule = medium_env()
        interface = TopKInterface(db, k=50)
        spec = avg_measure(db.schema, "price")
        estimator = RsEstimator(interface, [spec], budget_per_round=300,
                                seed=1)
        rng = random.Random(1)
        for round_number in range(5):
            if round_number:
                apply_round(db, schedule, rng)
                db.advance_round()
            report = estimator.run_round()
        truth = spec.ground_truth(db)
        assert report.estimates[spec.name] == pytest.approx(truth, rel=0.3)


class TestSizeChange:
    def test_reissue_delta_estimator_under_pure_growth(self):
        db, _ = medium_env()
        schema = db.schema
        interface = TopKInterface(db, k=50)
        count = count_all()
        estimator = ReissueEstimator(
            interface, [count, size_change(count, name="growth")],
            budget_per_round=300, seed=3,
        )
        estimator.run_round()
        # Round 2: nothing changes => the delta estimate must be exactly 0.
        db.advance_round()
        report = estimator.run_round()
        assert report.estimates["growth"] == 0.0

    def test_restart_size_change_is_difference(self, small_interface,
                                               small_db):
        count = count_all()
        estimator = RestartEstimator(
            small_interface, [count, size_change(count, name="growth")],
            budget_per_round=30, seed=0,
        )
        first = estimator.run_round()
        small_db.advance_round()
        second = estimator.run_round()
        expected = second.estimates["count"] - first.estimates["count"]
        assert second.estimates["growth"] == pytest.approx(expected)

    def test_first_round_size_change_nan(self, small_interface):
        count = count_all()
        estimator = ReissueEstimator(
            small_interface, [count, size_change(count, name="growth")],
            budget_per_round=30,
        )
        report = estimator.run_round()
        assert math.isnan(report.estimates["growth"])


class TestRsBehaviour:
    def test_static_database_keeps_growing_the_pool(self):
        """Unlike REISSUE, RS keeps initiating new drill-downs every round
        (its whole point), and its active pool keeps growing."""
        db, _ = medium_env()
        interface = TopKInterface(db, k=50)
        estimator = RsEstimator(
            interface, [count_all()], budget_per_round=250, seed=6,
        )
        estimator.run_round()
        pool_sizes = [len(estimator.records)]
        for _ in range(3):
            db.advance_round()
            report = estimator.run_round()
            assert report.drilldowns_new >= estimator.bootstrap_per_group
            pool_sizes.append(len(estimator.records))
        assert pool_sizes == sorted(pool_sizes)
        assert pool_sizes[-1] > pool_sizes[0]

    def test_records_grow_without_bound_of_reissue(self):
        db, _ = medium_env()
        interface = TopKInterface(db, k=50)
        rs = RsEstimator(interface, [count_all()], budget_per_round=200,
                         seed=8)
        reissue = ReissueEstimator(interface, [count_all()],
                                   budget_per_round=200, seed=8)
        for _ in range(6):
            rs.run_round()
            reissue.run_round()
            db.advance_round()
        assert len(rs.records) > len(reissue.records)
