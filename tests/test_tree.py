"""Unit tests for the query tree and drill-down signatures."""

import random

import pytest

from repro import QueryError, QueryTree, TopKInterface


class TestStructure:
    def test_default_free_order(self, small_schema):
        tree = QueryTree(small_schema)
        assert tree.free_order == (0, 1, 2)
        assert tree.max_depth == 3

    def test_num_leaves(self, small_schema):
        assert QueryTree(small_schema).num_leaves() == 24

    def test_fixed_attributes_shrink_tree(self, small_schema):
        tree = QueryTree(small_schema, fixed={1: 2})
        assert tree.free_order == (0, 2)
        assert tree.num_leaves() == 8

    def test_fixed_out_of_range_value(self, small_schema):
        with pytest.raises(QueryError):
            QueryTree(small_schema, fixed={1: 9})

    def test_fixed_out_of_range_attribute(self, small_schema):
        with pytest.raises(QueryError):
            QueryTree(small_schema, fixed={7: 0})

    def test_custom_free_order(self, small_schema):
        tree = QueryTree(small_schema, free_order=[2, 0, 1])
        assert tree.free_order == (2, 0, 1)

    def test_free_order_must_cover_non_fixed(self, small_schema):
        with pytest.raises(QueryError):
            QueryTree(small_schema, fixed={0: 1}, free_order=[1])
        with pytest.raises(QueryError):
            QueryTree(small_schema, fixed={0: 1}, free_order=[0, 1, 2])

    def test_attr_order_puts_fixed_first(self, small_schema):
        tree = QueryTree(small_schema, fixed={2: 1})
        assert tree.attr_order == (2, 0, 1)


class TestQueries:
    def test_query_at_depth_zero_is_fixed_only(self, small_schema):
        tree = QueryTree(small_schema, fixed={1: 2})
        query = tree.query_at((0, 0), 0)
        assert query.predicates == ((1, 2),)

    def test_query_at_depth(self, small_schema):
        tree = QueryTree(small_schema)
        query = tree.query_at((1, 2, 3), 2)
        assert query.predicates == ((0, 1), (1, 2))

    def test_query_at_leaf(self, small_schema):
        tree = QueryTree(small_schema)
        query = tree.query_at((1, 2, 3), 3)
        assert query.predicates == ((0, 1), (1, 2), (2, 3))

    def test_query_at_bad_depth(self, small_schema):
        tree = QueryTree(small_schema)
        with pytest.raises(QueryError):
            tree.query_at((0, 0, 0), 4)


class TestProbabilities:
    def test_root_probability_is_one(self, small_schema):
        assert QueryTree(small_schema).selection_probability(0) == 1.0

    def test_probability_by_depth(self, small_schema):
        tree = QueryTree(small_schema)
        assert tree.selection_probability(1) == pytest.approx(1 / 2)
        assert tree.selection_probability(2) == pytest.approx(1 / 6)
        assert tree.selection_probability(3) == pytest.approx(1 / 24)

    def test_level_probabilities_sum_to_one(self, small_schema):
        """Sum of p over all nodes at any level is 1 (unbiasedness core)."""
        tree = QueryTree(small_schema)
        for depth in range(tree.max_depth + 1):
            count = 1
            for i in range(depth):
                count *= small_schema.attributes[tree.free_order[i]].size
            assert count * tree.selection_probability(depth) == pytest.approx(1.0)

    def test_subtree_probability_relative_to_subtree(self, small_schema):
        tree = QueryTree(small_schema, fixed={0: 1})
        assert tree.selection_probability(0) == 1.0
        assert tree.selection_probability(2) == pytest.approx(1 / 12)


class TestSignatures:
    def test_random_signature_in_range(self, small_schema):
        tree = QueryTree(small_schema)
        rng = random.Random(0)
        for _ in range(50):
            signature = tree.random_signature(rng)
            assert len(signature) == 3
            for position, value in enumerate(signature):
                size = small_schema.attributes[tree.free_order[position]].size
                assert 0 <= value < size

    def test_signatures_uniform_over_leaves(self, small_schema):
        tree = QueryTree(small_schema)
        rng = random.Random(7)
        counts = {}
        draws = 24 * 400
        for _ in range(draws):
            counts[tree.random_signature(rng)] = (
                counts.get(tree.random_signature(rng), 0) + 1
            )
        # Every leaf hit, roughly evenly (loose 3x bound).
        assert len(counts) == 24
        assert max(counts.values()) < 3 * draws / 24

    def test_register_creates_index(self, small_db):
        interface = TopKInterface(small_db, k=5)
        tree = QueryTree(small_db.schema, fixed={1: 0})
        tree.register(interface)
        assert tree.attr_order in small_db.store._indexes
