"""Old entry points vs the ``repro.api`` facade: bit-identical estimates.

Two oracles:

* the *manual* legacy path — build ``HiddenDatabase`` / ``TopKInterface``
  / an estimator class by hand and drive rounds yourself (the seed
  quick start);
* the *runner* legacy path — a verbatim port of the pre-facade
  ``Experiment._run_trial_round`` loop (shared interface, estimator dict).

Both must produce exactly the same estimate stream as the
:class:`repro.api.Engine` / config-routed :class:`Experiment`, on every
(backend, data plane) combination.
"""

import math
import random

import pytest

from repro import HiddenDatabase, TopKInterface, count_all, sum_measure
from repro.api import Engine, EngineConfig, EstimationTask
from repro.core.estimators import ESTIMATOR_CLASSES
from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.experiments import EstimatorFactory, Experiment
from repro.hiddendb.backends import using_backend
from repro.hiddendb.store import using_data_plane

BACKENDS = ("blocked", "packed")
PLANES = ("scalar", "vectorized")

K = 15
BUDGET = 60
ROUNDS = 3
SEED = 11


def _build_env(backend, seed=3):
    source = skewed_source(
        [8, 10, 12, 6, 4],
        exponent=0.4,
        measures=("price",),
        measure_sampler=lambda rng: (rng.uniform(1.0, 100.0),),
        seed=seed,
    )
    db = HiddenDatabase(source.schema, backend=backend)
    db.insert_many(source.batch_columns(1500))
    schedule = FreshTupleSchedule(
        source, inserts_per_round=40, delete_fraction=0.01
    )
    return db, schedule


def _specs(schema):
    return [count_all(), sum_measure(schema, "price")]


def _same_estimates(a: dict, b: dict) -> bool:
    if set(a) != set(b):
        return False
    for name in a:
        x, y = a[name], b[name]
        if math.isnan(x) and math.isnan(y):
            continue
        if x != y:
            return False
    return True


def _assert_streams_equal(old, new):
    assert len(old) == len(new)
    for position, (a, b) in enumerate(zip(old, new)):
        assert _same_estimates(a, b), (
            f"round {position}: legacy {a} != facade {b}"
        )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("plane", PLANES)
@pytest.mark.parametrize("estimator", ("RESTART", "REISSUE", "RS"))
def test_manual_legacy_path_matches_engine(backend, plane, estimator):
    # Legacy: hand-built database, interface, estimator class, churn loop.
    with using_data_plane(plane):
        db, schedule = _build_env(backend)
        interface = TopKInterface(db, K)
        legacy = ESTIMATOR_CLASSES[estimator](
            interface, _specs(db.schema), budget_per_round=BUDGET, seed=SEED
        )
        rng = random.Random(5)
        old_stream = []
        for position in range(ROUNDS):
            if position:
                apply_round(db, schedule, rng)
                db.advance_round()
            old_stream.append(dict(legacy.run_round().estimates))

    # Facade: same environment rebuilt identically, driven by an Engine.
    with using_data_plane(plane):
        db, schedule = _build_env(backend)
    engine = Engine(
        EngineConfig(k=K, budget_per_round=BUDGET, data_plane=plane), db=db
    )
    engine.submit(
        EstimationTask("tenant", _specs(db.schema), estimator, seed=SEED)
    )
    rng = random.Random(5)
    new_stream = []
    for position in range(ROUNDS):
        if position:
            engine.apply_updates(lambda d: apply_round(d, schedule, rng))
            engine.advance_round()
        new_stream.append(dict(engine.run_round()["tenant"].estimates))

    _assert_streams_equal(old_stream, new_stream)


def _legacy_runner_estimates(backend, trials=2):
    """Verbatim port of the pre-facade Experiment._run_trial_round loop."""
    factories = ["RESTART", "REISSUE", "RS"]
    streams = {name: [] for name in factories}
    for trial in range(trials):
        seed = 1000 * trial
        with using_backend(backend):
            db, schedule = _build_env(backend, seed=seed)
        specs = _specs(db.schema)
        interface = TopKInterface(db, K)
        estimators = {
            name: ESTIMATOR_CLASSES[name](
                interface, specs, budget_per_round=BUDGET,
                seed=seed + 17 + index,
            )
            for index, name in enumerate(factories)
        }
        schedule_rng = random.Random(seed + 5)
        for position in range(ROUNDS):
            if position > 0:
                apply_round(db, schedule, schedule_rng)
                db.advance_round()
            for name, est in estimators.items():
                streams[name].append(dict(est.run_round().estimates))
    return streams


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("plane", PLANES)
def test_experiment_runner_matches_legacy_loop(backend, plane):
    with using_data_plane(plane):
        old = _legacy_runner_estimates(backend)

    experiment = Experiment(
        "parity",
        lambda seed: _build_env(backend, seed=seed),
        _specs,
        estimators=[
            EstimatorFactory("RESTART", "RESTART"),
            EstimatorFactory("REISSUE", "REISSUE"),
            EstimatorFactory("RS", "RS"),
        ],
        rounds=ROUNDS,
        trials=2,
        config=EngineConfig(
            backend=backend, data_plane=plane, k=K, budget_per_round=BUDGET
        ),
    )
    result = experiment.run()
    for name, old_stream in old.items():
        new_stream = [
            dict(snapshot)
            for trial in result.estimates[name]
            for snapshot in trial
        ]
        _assert_streams_equal(old_stream, new_stream)


@pytest.mark.parametrize("backend", BACKENDS)
def test_legacy_kwargs_and_config_spellings_agree(backend):
    """`Experiment(k=..., backend=...)` == `Experiment(config=...)`."""

    def run(**kwargs):
        return Experiment(
            "spelling",
            lambda seed: _build_env(backend, seed=seed),
            _specs,
            estimators=[EstimatorFactory("RS", "RS")],
            rounds=2,
            trials=1,
            **kwargs,
        ).run()

    via_kwargs = run(k=K, budget_per_round=BUDGET, backend=backend)
    via_config = run(
        config=EngineConfig(backend=backend, k=K, budget_per_round=BUDGET)
    )
    for trial_old, trial_new in zip(
        via_kwargs.estimates["RS"], via_config.estimates["RS"]
    ):
        _assert_streams_equal(trial_old, trial_new)


def test_experiment_honours_config_seed():
    """`config=EngineConfig(seed=...)` must govern trial seeding exactly
    like the legacy `base_seed=` spelling (explicit base_seed still wins)."""

    def run(**kwargs):
        return Experiment(
            "seeding",
            lambda seed: _build_env("blocked", seed=seed),
            _specs,
            estimators=[EstimatorFactory("RS", "RS")],
            rounds=2,
            trials=1,
            **kwargs,
        ).run()

    via_base_seed = run(k=K, budget_per_round=BUDGET, base_seed=42)
    via_config = run(config=EngineConfig(k=K, budget_per_round=BUDGET, seed=42))
    for trial_old, trial_new in zip(
        via_base_seed.estimates["RS"], via_config.estimates["RS"]
    ):
        _assert_streams_equal(trial_old, trial_new)
    default_seed = run(k=K, budget_per_round=BUDGET)
    assert not all(
        _same_estimates(a, b)
        for a, b in zip(
            via_config.estimates["RS"][0], default_seed.estimates["RS"][0]
        )
    ), "seed=42 must actually change the trial stream"
    # An explicit base_seed beats the config's seed.
    override = run(
        base_seed=42,
        config=EngineConfig(k=K, budget_per_round=BUDGET, seed=7),
    )
    for trial_old, trial_new in zip(
        via_base_seed.estimates["RS"], override.estimates["RS"]
    ):
        _assert_streams_equal(trial_old, trial_new)
