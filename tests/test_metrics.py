"""Unit tests for experiment result containers and metrics."""

import math

import pytest

from repro import ExperimentError
from repro.experiments.metrics import ExperimentResult, relative_error


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)

    def test_nan_propagates(self):
        assert math.isnan(relative_error(math.nan, 1.0))
        assert math.isnan(relative_error(1.0, math.nan))

    def test_zero_truth(self):
        assert math.isinf(relative_error(1.0, 0.0))
        assert relative_error(0.0, 0.0) == 0.0

    def test_sign_insensitive(self):
        assert relative_error(-110.0, -100.0) == pytest.approx(0.1)


def build_result() -> ExperimentResult:
    """Two estimators, two trials, three rounds, one spec."""
    result = ExperimentResult("demo", ["A", "B"], ["count"])
    truths = [100.0, 110.0, 120.0]
    estimates = {
        "A": [[100.0, 100.0, 100.0], [110.0, 121.0, 132.0]],
        "B": [[90.0, 99.0, 108.0], [90.0, 99.0, 108.0]],
    }
    for trial in range(2):
        result.start_trial()
        for position, truth in enumerate(truths):
            result.record_truth(position + 1, {"count": truth})
            for estimator in ("A", "B"):
                result.record_report(
                    estimator,
                    {"count": estimates[estimator][trial][position]},
                    queries_used=10,
                    drilldowns=position + 1,
                )
    return result


class TestExperimentResult:
    def test_shape(self):
        result = build_result()
        assert result.num_trials == 2
        assert result.num_rounds == 3
        assert result.rounds == [1, 2, 3]

    def test_rel_errors_matrix(self):
        result = build_result()
        matrix = result.rel_errors("A", "count")
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == pytest.approx(0.0)
        assert matrix[1, 1] == pytest.approx(0.1)

    def test_mean_series(self):
        result = build_result()
        series = result.mean_rel_error_series("B", "count")
        assert series == pytest.approx([0.1, 0.1, 0.1])

    def test_final_and_tail(self):
        result = build_result()
        assert result.final_rel_error("B", "count") == pytest.approx(0.1)
        assert result.tail_rel_error("B", "count", tail=2) == pytest.approx(0.1)

    def test_estimate_series_and_spread(self):
        result = build_result()
        series = result.estimate_series("A", "count")
        assert series[0] == pytest.approx(105.0)
        spread = result.estimate_spread("A", "count")
        assert spread[0] == pytest.approx(7.0710678, rel=1e-3)

    def test_truth_series(self):
        result = build_result()
        assert result.truth_series("count") == [100.0, 110.0, 120.0]

    def test_cumulative_counters(self):
        result = build_result()
        assert result.cumulative_queries("A") == [10.0, 20.0, 30.0]
        assert result.cumulative_drilldowns("A") == [1.0, 3.0, 6.0]

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ExperimentError):
            build_result().rel_errors("nope", "count")

    def test_unknown_spec_gives_nan(self):
        result = build_result()
        series = result.mean_rel_error_series("A", "ghost")
        assert all(math.isnan(v) for v in series)
