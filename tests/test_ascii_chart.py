"""Unit tests for the ASCII chart and table renderers."""

import math

from repro.experiments import render_chart, render_table


class TestChart:
    def test_contains_markers_and_legend(self):
        text = render_chart({"A": [1.0, 2.0, 3.0], "B": [3.0, 2.0, 1.0]})
        assert "*" in text and "o" in text
        assert "A" in text and "B" in text

    def test_labels_rendered(self):
        text = render_chart({"x": [1.0, 2.0]}, y_label="err", x_label="round")
        assert "err" in text
        assert "round" in text

    def test_log_scale_annotated(self):
        text = render_chart({"x": [0.01, 10.0]}, log_y=True, y_label="err")
        assert "log scale" in text

    def test_empty_series(self):
        assert "no finite data" in render_chart({"x": []})

    def test_nan_values_skipped(self):
        text = render_chart({"x": [math.nan, 1.0, math.nan, 2.0]})
        assert "*" in text

    def test_constant_series_no_crash(self):
        assert render_chart({"x": [5.0, 5.0, 5.0]})

    def test_single_point(self):
        assert render_chart({"x": [1.0]})


class TestTable:
    def test_alignment_and_headers(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0].endswith("bb")
        assert len(lines) == 4

    def test_float_formatting(self):
        text = render_table(["v"], [[0.000123], [123456.0], [float("nan")]])
        assert "1.230e-04" in text
        assert "1.235e+05" in text or "123456" in text
        assert "nan" in text

    def test_empty_rows(self):
        assert render_table(["a"], [])
