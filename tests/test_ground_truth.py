"""Unit tests for the incremental ground-truth tracker."""

import math
import random

import pytest

from repro import (
    avg_measure,
    count_all,
    count_where,
    running_average,
    size_change,
    sum_measure,
)
from repro.experiments import GroundTruthTracker
from tests.conftest import fill_random


class TestRunningTotals:
    def test_initial_scan(self, small_db):
        tracker = GroundTruthTracker(small_db, [count_all()])
        assert tracker.current("count") == len(small_db)

    def test_insert_updates_totals(self, small_db, small_schema):
        spec = sum_measure(small_schema, "price")
        tracker = GroundTruthTracker(small_db, [spec])
        before = tracker.current(spec.name)
        small_db.insert([0, 0, 0], (25.0,))
        assert tracker.current(spec.name) == pytest.approx(before + 25.0)

    def test_delete_updates_totals(self, small_db):
        tracker = GroundTruthTracker(small_db, [count_all()])
        small_db.delete(next(small_db.tuples()).tid)
        assert tracker.current("count") == len(small_db)

    def test_measure_update_reflected(self, small_db, small_schema):
        spec = sum_measure(small_schema, "price")
        tracker = GroundTruthTracker(small_db, [spec])
        victim = next(small_db.tuples())
        delta = 100.0 - victim.measures[0]
        before = tracker.current(spec.name)
        small_db.update_measures(victim.tid, (100.0,))
        assert tracker.current(spec.name) == pytest.approx(before + delta)

    def test_verify_against_scan_after_churn(self, small_db, small_schema):
        specs = [count_all(), sum_measure(small_schema, "price"),
                 count_where(small_schema, {"color": "red"})]
        tracker = GroundTruthTracker(small_db, specs)
        rng = random.Random(0)
        for _ in range(40):
            if rng.random() < 0.5 and len(small_db) > 1:
                small_db.delete(rng.choice([t.tid for t in small_db.tuples()]))
            else:
                fill_random(small_db, 1, seed=rng.randrange(9999))
        tracker.verify_against_scan()


class TestSnapshots:
    def test_ratio_spec(self, small_db, small_schema):
        spec = avg_measure(small_schema, "price")
        tracker = GroundTruthTracker(small_db, [spec])
        snapshot = tracker.record_round(1)
        assert snapshot[spec.name] == pytest.approx(
            spec.ground_truth(small_db)
        )

    def test_size_change_needs_history(self, small_db):
        count = count_all()
        tracker = GroundTruthTracker(
            small_db, [count, size_change(count, name="growth")]
        )
        first = tracker.record_round(1)
        assert math.isnan(first["growth"])
        small_db.insert([0, 0, 0], (1.0,))
        small_db.advance_round()
        second = tracker.record_round(2)
        assert second["growth"] == 1.0

    def test_running_average(self, small_db):
        count = count_all()
        tracker = GroundTruthTracker(
            small_db, [count, running_average(2, count, name="ravg")]
        )
        first = tracker.record_round(1)
        assert first["ravg"] == len(small_db)
        n1 = len(small_db)
        small_db.insert([0, 0, 0], (1.0,))
        second = tracker.record_round(2)
        assert second["ravg"] == pytest.approx((n1 + len(small_db)) / 2)

    def test_truth_lookup(self, small_db):
        tracker = GroundTruthTracker(small_db, [count_all()])
        tracker.record_round(1)
        assert tracker.truth(1, "count") == len(small_db)
