"""Storage-backend tests: packed-engine internals plus cross-backend parity.

The parity tests are the contract that makes backends swappable: the same
seeded insert/delete/query workload must produce identical query results —
statuses (overflow flags included), pages, and counts — on every backend.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Attribute, HiddenDatabase, Schema, SchemaError, TopKInterface
from repro.hiddendb import (
    MappedBackend,
    PackedArrayBackend,
    ShardedBackend,
    available_backends,
    get_default_backend,
    make_backend,
    set_default_backend,
    using_backend,
    using_backend_options,
)
from repro.hiddendb.query import ConjunctiveQuery
from repro.hiddendb.store import SortedKeyList


BACKENDS = ("blocked", "packed", "sharded", "mapped")


# ----------------------------------------------------------------------
# Registry / default management
# ----------------------------------------------------------------------
class TestRegistry:
    def test_both_engines_registered(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_make_backend_types(self):
        assert isinstance(make_backend("blocked"), SortedKeyList)
        assert isinstance(make_backend("packed"), PackedArrayBackend)
        assert isinstance(make_backend("sharded"), ShardedBackend)
        assert isinstance(make_backend("mapped"), MappedBackend)

    def test_make_backend_options(self):
        sharded = make_backend("sharded", shards=3, inner="blocked")
        assert sharded.num_shards == 3
        assert sharded.inner_name == "blocked"
        with pytest.raises(SchemaError):
            make_backend("packed", shards=3)  # option the engine lacks

    def test_default_backend_options_scope(self):
        with using_backend_options("sharded", {"shards": 5}):
            assert make_backend("sharded").num_shards == 5
            # Explicit options beat the scoped default.
            assert make_backend("sharded", shards=2).num_shards == 2
            # Defaults are keyed per engine: other backends are untouched
            # (this would raise if the sharded options leaked).
            assert isinstance(make_backend("packed"), PackedArrayBackend)
        from repro.hiddendb.backends import DEFAULT_SHARDS

        assert make_backend("sharded").num_shards == DEFAULT_SHARDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(SchemaError):
            make_backend("btree9000")
        with pytest.raises(SchemaError):
            set_default_backend("btree9000")
        with pytest.raises(SchemaError):
            HiddenDatabase(Schema([Attribute("a", 2)]), backend="btree9000")

    def test_using_backend_scopes_default(self):
        before = get_default_backend()
        with using_backend("packed"):
            assert get_default_backend() == "packed"
            db = HiddenDatabase(Schema([Attribute("a", 2)]))
            assert db.backend == "packed"
        assert get_default_backend() == before

    def test_backend_visible_through_interface_and_session(self):
        from repro.hiddendb.session import QuerySession

        db = HiddenDatabase(Schema([Attribute("a", 2)]), backend="packed")
        interface = TopKInterface(db, k=3)
        session = QuerySession(interface)
        assert interface.backend == "packed"
        assert session.backend == "packed"


# ----------------------------------------------------------------------
# PackedArrayBackend internals
# ----------------------------------------------------------------------
class TestPackedArrayBackend:
    def test_empty(self):
        keys = PackedArrayBackend()
        assert len(keys) == 0
        assert keys.rank(10) == 0
        assert 5 not in keys
        assert list(keys.iter_range(0, 100)) == []

    def test_key_bound_selects_representation(self):
        assert PackedArrayBackend(key_bound=2**62).is_packed
        assert not PackedArrayBackend(key_bound=2**200).is_packed
        assert not PackedArrayBackend().is_packed

    def test_wide_keys_fall_back_to_list(self):
        keys = PackedArrayBackend(key_bound=2**200)
        huge = 2**180
        keys.add(huge)
        keys.add(huge + 1)
        assert keys.rank(huge + 1) == 1
        assert list(keys.iter_range(huge, huge + 2)) == [huge, huge + 1]

    def test_duplicates_and_remove(self):
        keys = PackedArrayBackend([3, 3], key_bound=100)
        keys.add(3)
        assert len(keys) == 3
        assert keys.count_range(3, 4) == 3
        keys.remove(3)
        assert keys.count_range(3, 4) == 2
        keys.check_invariants()

    def test_remove_missing_raises(self):
        keys = PackedArrayBackend([1, 3], key_bound=100)
        with pytest.raises(ValueError):
            keys.remove(2)
        keys.remove(1)
        with pytest.raises(ValueError):
            keys.remove(1)

    def test_deferred_delete_then_query(self):
        """Deletes buffered in the dead list stay invisible to queries."""
        keys = PackedArrayBackend(range(100), key_bound=1000, min_buffer=512)
        for value in range(0, 50, 2):
            keys.remove(value)
        assert keys._dead  # still buffered, not compacted
        assert len(keys) == 75
        assert keys.rank(50) == 25
        assert 4 not in keys
        assert 5 in keys
        assert list(keys.iter_range(0, 6)) == [1, 3, 5]
        keys.check_invariants()

    def test_compaction_round_trip(self):
        keys = PackedArrayBackend(key_bound=10**6, min_buffer=16)
        rng = random.Random(0)
        reference: list[int] = []
        for _ in range(3000):
            if reference and rng.random() < 0.45:
                victim = rng.choice(reference)
                reference.remove(victim)
                keys.remove(victim)
            else:
                value = rng.randrange(500)
                reference.append(value)
                keys.add(value)
        keys.check_invariants()
        assert list(keys) == sorted(reference)

    def test_rank_cache_invalidated_on_mutation(self):
        keys = PackedArrayBackend(range(10), key_bound=100)
        assert keys.rank(5) == 5
        keys.add(2)
        assert keys.rank(5) == 6
        keys.remove(2)
        keys.remove(2)
        assert keys.rank(5) == 4

    def test_bulk_ops(self):
        keys = PackedArrayBackend(key_bound=10**6)
        keys.bulk_add(range(0, 1000, 2))
        keys.bulk_add([1, 3, 5])
        keys.bulk_remove([0, 2, 4])
        keys.check_invariants()
        assert len(keys) == 500
        assert list(keys.iter_range(0, 7)) == [1, 3, 5, 6]
        with pytest.raises(ValueError):
            keys.bulk_remove([1, 999_999])

    def test_range_keys_zero_copy_and_buffered_paths(self):
        import numpy as np

        keys = PackedArrayBackend(range(0, 100, 2), key_bound=1000,
                                  min_buffer=512)
        clean = keys.range_keys(10, 30)
        assert isinstance(clean, np.ndarray)  # packed run slice
        assert clean.tolist() == list(range(10, 30, 2))
        keys.add(11)       # buffered tail key inside the range
        keys.remove(12)    # buffered dead key inside the range
        merged = keys.range_keys(10, 30)
        assert list(merged) == [10, 11, 14, 16, 18, 20, 22, 24, 26, 28]
        assert list(merged) == list(keys.iter_range(10, 30))
        assert list(keys.range_keys(30, 10)) == []

    def test_range_keys_wide_key_list_path(self):
        keys = PackedArrayBackend(key_bound=2**200, min_buffer=512)
        huge = 2**180
        keys.bulk_add([huge, huge + 2, huge + 4])
        assert keys.range_keys(huge, huge + 3) == [huge, huge + 2]
        assert keys.range_keys(huge + 5, huge) == []


# ----------------------------------------------------------------------
# Backend parity: same ops, same answers
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=50)),
        max_size=120,
    )
)
def test_backends_agree_on_random_op_streams(operations):
    """Both engines expose an identical multiset after any add/remove mix."""
    engines = {
        "blocked": make_backend("blocked", block_size=4),
        "packed": PackedArrayBackend(key_bound=64, min_buffer=8),
        "sharded": ShardedBackend(num_shards=3, key_bound=64, block_size=16),
        "mapped": MappedBackend(key_bound=64, min_buffer=8),
    }
    reference: list[int] = []
    for is_remove, value in operations:
        if is_remove and value in reference:
            reference.remove(value)
            for engine in engines.values():
                engine.remove(value)
        elif not is_remove:
            reference.append(value)
            for engine in engines.values():
                engine.add(value)
    reference.sort()
    for name, engine in engines.items():
        engine.check_invariants()
        assert list(engine) == reference, name
        assert len(engine) == len(reference), name
        for probe in (0, 7, 25, 51):
            expected = sum(1 for v in reference if v < probe)
            assert engine.rank(probe) == expected, name
        assert list(engine.iter_range(5, 30)) == [
            v for v in reference if 5 <= v < 30
        ], name
        # The array-native variant returns the same contents for any range.
        for lo, hi in ((5, 30), (0, 51), (10, 10), (30, 5)):
            assert list(engine.range_keys(lo, hi)) == list(
                engine.iter_range(lo, hi)
            ), name


def _seeded_churn(backend: str, rounds: int = 6):
    """One seeded insert/delete/query workload; returns observable outputs."""
    schema = Schema(
        [Attribute("a", 3), Attribute("b", 4), Attribute("c", 5)],
        measures=("m",),
    )
    db = HiddenDatabase(schema, backend=backend)
    interface = TopKInterface(db, k=4)
    interface.register_attr_order((0, 1, 2))
    rng = random.Random(99)
    observations = []
    for _ in range(rounds):
        db.insert_many(
            (
                bytes(
                    [rng.randrange(3), rng.randrange(4), rng.randrange(5)]
                ),
                (round(rng.uniform(1, 100), 2),),
            )
            for _ in range(120)
        )
        victims = db.store.random_tids(rng, 40)
        db.bulk_delete(victims)
        db.advance_round()
        for a in range(3):
            for predicates in (((0, a),), ((0, a), (1, a))):
                result = interface.search(ConjunctiveQuery(predicates))
                observations.append(
                    (
                        predicates,
                        result.status,
                        tuple(t.tid for t in result.tuples),
                    )
                )
    index = db.store.ensure_index((0, 1, 2))
    counts = tuple(
        index.count_prefix(prefix)
        for prefix in ([], [0], [1], [2], [0, 1], [2, 3], [1, 2, 4])
    )
    return observations, counts, len(db)


def test_backend_parity_on_seeded_churn_workload():
    """Identical seeded churn => identical statuses, pages and counts.

    RandomScore is seeded per database, so even the overflow pages (top-k
    by score) must match tuple for tuple — any divergence is a backend bug.
    """
    blocked = _seeded_churn("blocked")
    for name in ("packed", "sharded", "mapped"):
        other = _seeded_churn(name)
        assert blocked[2] == other[2], name  # database size
        assert blocked[1] == other[1], name  # prefix counts
        for left, right in zip(blocked[0], other[0]):
            # predicates, status (overflow flag), page tids
            assert left == right, name


# ----------------------------------------------------------------------
# Array-native bulk fast paths
# ----------------------------------------------------------------------
class TestArrayBulkPaths:
    """ndarray batches must behave exactly like iterable batches."""

    def _fresh(self, name):
        if name == "blocked":
            return SortedKeyList()
        if name == "sharded":
            return ShardedBackend(num_shards=4, key_bound=2**40)
        if name == "mapped":
            return MappedBackend(key_bound=2**40)
        return PackedArrayBackend(key_bound=2**40)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_array_bulk_add_matches_iterable(self, name):
        rng = random.Random(13)
        keys = [rng.randrange(0, 1000) for _ in range(500)]
        via_array = self._fresh(name)
        via_array.bulk_add(np.array(keys, dtype=np.int64))
        via_iter = self._fresh(name)
        via_iter.bulk_add(keys)
        via_array.check_invariants()
        assert list(via_array) == list(via_iter) == sorted(keys)
        assert len(via_array) == 500

    @pytest.mark.parametrize("name", BACKENDS)
    def test_array_bulk_remove_matches_iterable(self, name):
        rng = random.Random(29)
        keys = sorted(rng.randrange(0, 200) for _ in range(300))
        victims = rng.sample(keys, 120)
        via_array = self._fresh(name)
        via_array.bulk_add(np.array(keys, dtype=np.int64))
        via_array.bulk_remove(np.array(victims, dtype=np.int64))
        via_iter = self._fresh(name)
        via_iter.bulk_add(keys)
        via_iter.bulk_remove(victims)
        via_array.check_invariants()
        via_iter.check_invariants()
        assert list(via_array) == list(via_iter)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_array_bulk_remove_missing_raises_and_preserves(self, name):
        backend = self._fresh(name)
        backend.bulk_add(np.array([1, 3, 3, 7], dtype=np.int64))
        with pytest.raises(ValueError):
            backend.bulk_remove(np.array([3, 3, 3], dtype=np.int64))
        with pytest.raises(ValueError):
            backend.bulk_remove(np.array([2], dtype=np.int64))

    @pytest.mark.parametrize("name", BACKENDS)
    def test_array_ops_interleave_with_scalar_ops(self, name):
        backend = self._fresh(name)
        backend.add(50)
        backend.bulk_add(np.arange(0, 100, 2, dtype=np.int64))
        backend.remove(50)
        backend.bulk_remove(np.arange(0, 50, 2, dtype=np.int64))
        backend.check_invariants()
        assert list(backend) == list(range(50, 100, 2))
        assert backend.rank(60) == 5
        assert backend.count_range(50, 60) == 5

    @pytest.mark.parametrize("name", BACKENDS)
    def test_empty_array_batches_are_noops(self, name):
        backend = self._fresh(name)
        backend.bulk_add(np.empty(0, dtype=np.int64))
        backend.bulk_remove(np.empty(0, dtype=np.int64))
        assert len(backend) == 0

    def test_sharded_parallel_workers_match_sequential(self):
        rng = random.Random(41)
        keys = np.array(
            [rng.randrange(2**40) for _ in range(5000)], dtype=np.int64
        )
        parallel = ShardedBackend(num_shards=8, key_bound=2**40, workers=4)
        sequential = ShardedBackend(num_shards=8, key_bound=2**40, workers=0)
        for engine in (parallel, sequential):
            engine.bulk_add(keys)
        victims = np.sort(keys[:: 3])
        for engine in (parallel, sequential):
            engine.bulk_remove(victims)
            engine.check_invariants()
        assert list(parallel) == list(sequential)

    def test_unpacked_engine_routes_array_to_generic_path(self):
        backend = PackedArrayBackend(key_bound=2**300)
        assert not backend.is_packed
        backend.bulk_add(np.array([5, 1, 5], dtype=np.int64))
        backend.check_invariants()
        assert list(backend) == [1, 5, 5]
        backend.bulk_remove(np.array([5, 5], dtype=np.int64))
        assert list(backend) == [1]

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=50), max_size=80),
        st.data(),
    )
    def test_property_array_parity(self, keys, data):
        for name in BACKENDS:
            backend = self._fresh(name)
            backend.bulk_add(np.array(keys, dtype=np.int64))
            backend.check_invariants()
            assert list(backend) == sorted(keys)
            if keys:
                victims = data.draw(
                    st.lists(st.sampled_from(keys), max_size=len(keys)),
                    label=f"victims-{name}",
                )
                from collections import Counter

                removable = []
                budget = Counter(keys)
                for key in victims:
                    if budget[key] > 0:
                        budget[key] -= 1
                        removable.append(key)
                backend.bulk_remove(np.array(removable, dtype=np.int64))
                backend.check_invariants()
                assert list(backend) == sorted(budget.elements())


# ----------------------------------------------------------------------
# Sharded engine internals
# ----------------------------------------------------------------------
class TestShardedBackend:
    def test_keys_land_in_their_hash_shard(self):
        engine = ShardedBackend(num_shards=4, key_bound=10**6)
        engine.bulk_add(np.arange(100, dtype=np.int64))
        for shard_index, shard in enumerate(engine._shards):
            assert all(key % 4 == shard_index for key in shard)
        engine.check_invariants()

    def test_range_keys_merges_shard_slices_sorted(self):
        rng = random.Random(17)
        keys = [rng.randrange(10**6) for _ in range(2000)]
        engine = ShardedBackend(num_shards=5, key_bound=10**6)
        engine.bulk_add(np.array(keys, dtype=np.int64))
        merged = engine.range_keys(100, 900_000)
        expected = sorted(k for k in keys if 100 <= k < 900_000)
        assert list(merged) == expected
        assert list(engine.iter_range(100, 900_000)) == expected

    def test_failed_bulk_remove_leaves_composite_untouched(self):
        engine = ShardedBackend(num_shards=4, key_bound=10**6)
        engine.bulk_add(np.arange(0, 64, dtype=np.int64))
        before = list(engine)
        with pytest.raises(ValueError):
            # Victims cover several shards; 999_983 is missing — the
            # pre-mutation verification must reject the whole batch.
            engine.bulk_remove(
                np.array([0, 1, 2, 3, 999_983], dtype=np.int64)
            )
        assert list(engine) == before
        assert len(engine) == 64
        engine.check_invariants()

    def test_failed_small_bulk_remove_is_atomic_despite_inner_paths(self):
        # Small batches hit the packed inner's per-key removal loop, which
        # partially applies before raising; the sharded pre-check must
        # keep the composite fully intact anyway (regression: the old
        # rollback desynced size vs content here).
        engine = ShardedBackend(num_shards=2, key_bound=10**6)
        engine.bulk_add(np.arange(100, dtype=np.int64))
        with pytest.raises(ValueError):
            engine.bulk_remove([0, 2, 4, 999_998, 1, 3])
        assert len(engine) == 100
        assert list(engine) == list(range(100))
        engine.check_invariants()

    def test_failed_bulk_remove_duplicate_occurrences(self):
        engine = ShardedBackend(num_shards=2, key_bound=100)
        engine.bulk_add([7, 7, 8])
        with pytest.raises(ValueError):
            engine.bulk_remove([7, 7, 7])  # one occurrence too many
        assert list(engine) == [7, 7, 8]
        engine.check_invariants()

    def test_wide_keys_shard_via_chunked_modulo(self):
        rng = random.Random(23)
        keys = [rng.randrange(2**180) for _ in range(300)]
        engine = ShardedBackend(num_shards=3, key_bound=2**180)
        engine.bulk_add(keys)
        engine.check_invariants()
        assert list(engine) == sorted(keys)
        lo, hi = sorted(rng.sample(keys, 2))
        assert list(engine.range_keys(lo, hi)) == [
            k for k in sorted(keys) if lo <= k < hi
        ]

    def test_rank_cache_invalidated_on_mutation(self):
        engine = ShardedBackend(num_shards=2, key_bound=100)
        engine.bulk_add(np.arange(10, dtype=np.int64))
        assert engine.rank(5) == 5
        engine.add(2)
        assert engine.rank(5) == 6
        engine.remove(2)
        engine.remove(2)
        assert engine.rank(5) == 4

    def test_single_shard_degenerates_cleanly(self):
        engine = ShardedBackend(num_shards=1, key_bound=1000)
        engine.bulk_add([5, 1, 5])
        assert list(engine) == [1, 5, 5]
        assert engine.count_range(0, 6) == 3

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(SchemaError):
            ShardedBackend(num_shards=0)

    def test_database_backend_options_reach_the_indexes(self):
        schema = Schema([Attribute("a", 3), Attribute("b", 4)])
        db = HiddenDatabase(
            schema, backend="sharded", backend_options={"shards": 3}
        )
        index = db.store.ensure_index((0, 1))
        assert isinstance(index._keys, ShardedBackend)
        assert index._keys.num_shards == 3
