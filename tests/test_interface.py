"""Unit and property tests for the restrictive top-k search interface."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Attribute,
    ConjunctiveQuery,
    HiddenDatabase,
    QueryStatus,
    Schema,
    TopKInterface,
)
from tests.conftest import fill_random


class TestStatuses:
    def test_underflow(self, small_schema):
        db = HiddenDatabase(small_schema)
        interface = TopKInterface(db, k=5)
        result = interface.search(ConjunctiveQuery.root())
        assert result.status is QueryStatus.UNDERFLOW
        assert result.tuples == ()

    def test_valid_returns_all_matches(self, small_schema):
        db = HiddenDatabase(small_schema)
        db.insert([0, 0, 0])
        db.insert([0, 1, 0])
        interface = TopKInterface(db, k=5)
        result = interface.search(ConjunctiveQuery.root())
        assert result.status is QueryStatus.VALID
        assert len(result) == 2

    def test_overflow_returns_exactly_k(self, small_interface):
        result = small_interface.search(ConjunctiveQuery.root())
        assert result.status is QueryStatus.OVERFLOW
        assert len(result.tuples) == small_interface.k

    def test_k_must_be_positive(self, small_db):
        with pytest.raises(ValueError):
            TopKInterface(small_db, k=0)


class TestRanking:
    def test_page_is_top_k_by_score(self, small_db):
        interface = TopKInterface(small_db, k=7)
        page = interface.search(ConjunctiveQuery.root()).tuples
        page_scores = [t.score for t in page]
        all_scores = sorted((t.score for t in small_db.tuples()), reverse=True)
        assert page_scores == all_scores[:7]

    def test_page_order_descending(self, small_db):
        interface = TopKInterface(small_db, k=7)
        page = interface.search(ConjunctiveQuery.root()).tuples
        assert list(page) == sorted(
            page, key=lambda t: (-t.score, t.tid)
        )


class TestStats:
    def test_counters(self, small_schema):
        db = HiddenDatabase(small_schema)
        db.insert([0, 0, 0])
        interface = TopKInterface(db, k=5)
        interface.search(ConjunctiveQuery.root())  # valid
        interface.search(ConjunctiveQuery([(0, 1)]))  # underflow
        assert interface.stats.queries == 2
        assert interface.stats.valid == 1
        assert interface.stats.underflow == 1

    def test_record_unit(self):
        """Direct unit coverage of the counter state machine."""
        from repro.hiddendb.interface import InterfaceStats

        stats = InterfaceStats()
        assert stats.as_dict() == {
            "queries": 0, "underflow": 0, "valid": 0, "overflow": 0,
        }
        for status, repeats in (
            (QueryStatus.VALID, 3),
            (QueryStatus.UNDERFLOW, 2),
            (QueryStatus.OVERFLOW, 4),
        ):
            for _ in range(repeats):
                stats.record(status)
        assert stats.as_dict() == {
            "queries": 9, "underflow": 2, "valid": 3, "overflow": 4,
        }
        assert stats.queries == (
            stats.underflow + stats.valid + stats.overflow
        )

    def test_tallies_identical_across_query_planes(self, small_schema):
        """The columnar plane classifies every query exactly like the
        scalar oracle, so the VALID/OVERFLOW/EMPTY tallies must match."""
        from repro.hiddendb.store import using_data_plane

        queries = [
            ConjunctiveQuery.root(),
            ConjunctiveQuery([(0, 0)]),
            ConjunctiveQuery([(0, 1), (1, 2)]),
            ConjunctiveQuery([(0, 1), (1, 2), (2, 3)]),
            ConjunctiveQuery([(2, 2)]),  # scan path
        ]

        def tallies(plane):
            with using_data_plane(plane):
                db = HiddenDatabase(small_schema)
                fill_random(db, 80, seed=4)
                interface = TopKInterface(db, k=6)
                interface.register_attr_order((0, 1, 2))
                for query in queries:
                    interface.search(query)
                return interface.stats.as_dict()

        columnar = tallies("vectorized")
        assert columnar == tallies("scalar")
        assert columnar["queries"] == len(queries)

    def test_session_exposes_interface_stats(self, open_session):
        open_session.search(ConjunctiveQuery.root())
        assert open_session.stats is open_session.interface.stats
        assert open_session.stats.queries == 1


class TestPrefixVsScan:
    def test_prefix_path_equals_scan_path(self, small_db):
        """The indexed evaluation must agree with the full-scan oracle."""
        indexed = TopKInterface(small_db, k=4)
        indexed.register_attr_order((0, 1, 2))
        scanning = TopKInterface(small_db, k=4)  # no index registered
        queries = [
            ConjunctiveQuery.root(),
            ConjunctiveQuery([(0, 0)]),
            ConjunctiveQuery([(0, 1), (1, 2)]),
            ConjunctiveQuery([(0, 1), (1, 2), (2, 3)]),
            ConjunctiveQuery([(1, 0)]),  # not a prefix: falls back to scan
        ]
        for query in queries:
            a = indexed.search(query)
            b = scanning.search(query)
            assert a.status == b.status, query
            assert [t.tid for t in a.tuples] == [t.tid for t in b.tuples]


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=400),
    st.integers(min_value=1, max_value=12),
    st.lists(st.integers(0, 3), min_size=0, max_size=3),
    st.randoms(use_true_random=False),
)
def test_indexed_matches_oracle_on_random_databases(n, k, raw_prefix, rnd):
    """Any prefix query: indexed result == naive full scan result."""
    schema = Schema(
        [Attribute("a", 2), Attribute("b", 3), Attribute("c", 4)]
    )
    db = HiddenDatabase(schema)
    fill_random(db, n, seed=rnd.randrange(10_000))
    sizes = schema.domain_sizes
    predicates = [
        (i, v % sizes[i]) for i, v in enumerate(raw_prefix)
    ]
    query = ConjunctiveQuery(predicates)
    indexed = TopKInterface(db, k=k)
    indexed.register_attr_order((0, 1, 2))
    scanning = TopKInterface(db, k=k)
    a = indexed.search(query)
    b = scanning.search(query)
    assert a.status == b.status
    assert [t.tid for t in a.tuples] == [t.tid for t in b.tuples]
