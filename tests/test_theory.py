"""Unit tests for the Theorem 3.2 / Eq. (16) calculators."""

import pytest

from repro.core.theory import (
    reissue_beats_restart,
    reissue_error_ratio_bound,
    reissue_variance_ratio_no_change,
    restart_expected_cost_lower_bound,
)


class TestDepthBound:
    def test_basic_value(self):
        # log(100000/100) / log(10) = 3.
        assert restart_expected_cost_lower_bound(100_000, 100, 10) == (
            pytest.approx(3.0)
        )

    def test_tiny_database_is_free(self):
        assert restart_expected_cost_lower_bound(5, 10, 4) == 0.0

    def test_monotone_in_n(self):
        shallow = restart_expected_cost_lower_bound(10_000, 100, 10)
        deep = restart_expected_cost_lower_bound(10_000_000, 100, 10)
        assert deep > shallow

    def test_validation(self):
        with pytest.raises(ValueError):
            restart_expected_cost_lower_bound(0, 1, 2)
        with pytest.raises(ValueError):
            restart_expected_cost_lower_bound(10, 1, 1)


class TestErrorRatioBound:
    def test_below_one_for_large_deep_database(self):
        bound = reissue_error_ratio_bound(1_000_000, 10_000, 100, [2] * 30)
        assert bound < 1.0

    def test_no_deletions_still_bounded(self):
        bound = reissue_error_ratio_bound(1_000_000, 0, 100, [2] * 30)
        assert bound > 0.0

    def test_decreases_with_deletions(self):
        light = reissue_error_ratio_bound(100_000, 1_000, 100, [4] * 20)
        heavy = reissue_error_ratio_bound(100_000, 50_000, 100, [4] * 20)
        assert heavy < light  # survival factor (1 - nd/n) dominates

    def test_validation(self):
        with pytest.raises(ValueError):
            reissue_error_ratio_bound(10, 11, 1, [2])
        with pytest.raises(ValueError):
            reissue_error_ratio_bound(10, 1, 1, [])

    def test_degenerate_small_database(self):
        assert reissue_error_ratio_bound(5, 1, 10, [2, 2]) == 1.0


class TestDecision:
    def test_deep_database_favours_reissue(self):
        assert reissue_beats_restart(1_000_000, 1_000, 100, [4] * 20)

    def test_k1_shallow_regime_can_favour_restart(self):
        """Figure 7's setting: k=1, shallow tree, heavy churn.

        With one huge-fan-out level the expected fresh drill-down is barely
        one query deep, and a 10% deletion rate makes the Theorem 3.2 bound
        exceed 1 — the sufficient condition for REISSUE no longer holds.
        """
        assert not reissue_beats_restart(1_000, 100, 1, [900])
        assert reissue_error_ratio_bound(1_000, 100, 1, [900]) > 1.0


class TestNoChangeVarianceRatio:
    def test_half_at_equal_counts(self):
        """h1 = h = h' => ratio <= 0.5 regardless of h2 (§3.2.1)."""
        for h2 in (1, 10, 1000):
            ratio = reissue_variance_ratio_no_change(50, h2, 50, 50)
            assert ratio <= 0.5

    def test_zero_new_drilldowns(self):
        assert reissue_variance_ratio_no_change(50, 0, 50, 50) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            reissue_variance_ratio_no_change(0, 1, 1, 1)
