"""Scalar-vs-columnar *query plane* parity.

PR 2 proved the load path byte-identical across data planes; this module
proves the same for the query path introduced with the columnar top-k
plane: for every backend, page size, and query class (empty, underfull,
overflowing, ad-hoc scan), the pages returned by the columnar plane —
tids, values, measures, scores, order, status — and the interface's
stats counters must match the scalar reference plane bit for bit, before
and after churn rounds.
"""

import random

import numpy as np
import pytest

from repro.data.schedules import FreshTupleSchedule, apply_round
from repro.data.synthetic import skewed_source
from repro.errors import StaleResultError
from repro.hiddendb import HiddenDatabase, TopKInterface
from repro.hiddendb.query import ConjunctiveQuery
from repro.hiddendb.store import using_data_plane

#: Narrow schema: int64 keys, a measure for SUM-path coverage.
NARROW_DOMAINS = [3, 4, 2]

#: Wide fig12-style schema: mixed-radix keys exceed 64 bits.
WIDE_DOMAINS = [2 + (i % 7) for i in range(20)]


def _page(result):
    return (
        result.status.value,
        [(t.tid, t.values, t.measures, t.score) for t in result.tuples],
    )


def _stats(interface):
    return interface.stats.as_dict()


def _narrow_queries():
    return [
        ConjunctiveQuery(()),                      # root
        ConjunctiveQuery(((0, 0),)),               # prefix depth 1
        ConjunctiveQuery(((0, 1),)),
        ConjunctiveQuery(((0, 2),)),               # possibly empty
        ConjunctiveQuery(((0, 0), (1, 2))),        # prefix depth 2
        ConjunctiveQuery(((0, 1), (1, 3), (2, 1))),  # leaf
        ConjunctiveQuery(((1, 0),)),               # ad-hoc: scan
        ConjunctiveQuery(((2, 1),)),               # ad-hoc: scan
        ConjunctiveQuery(((1, 3), (2, 0))),        # ad-hoc: scan, sparse
    ]


def _wide_queries():
    return [
        ConjunctiveQuery(()),
        ConjunctiveQuery(((0, 0),)),
        ConjunctiveQuery(((0, 1), (1, 2))),
        ConjunctiveQuery(((5, 1),)),               # ad-hoc: scan
    ]


def _run_workload(plane, backend, domains, k, queries, n=2500, rounds=3):
    """Load, query, churn, and re-query one database under a plane."""
    with using_data_plane(plane):
        source = skewed_source(
            domains, exponent=0.5, seed=11, measures=("m",),
            measure_sampler=lambda rng: (rng.uniform(0.0, 100.0),),
        )
        db = HiddenDatabase(source.schema, backend=backend)
        db.insert_many(source.batch_columns(n, distinct=False))
        interface = TopKInterface(db, k=k)
        interface.register_attr_order(tuple(range(len(domains))))
        pages = [_page(interface.search(query)) for query in queries]
        schedule = FreshTupleSchedule(
            source, inserts_per_round=60, delete_fraction=0.02
        )
        schedule_rng = random.Random(23)
        for _ in range(rounds):
            apply_round(db, schedule, schedule_rng)
            db.advance_round()
            pages.extend(_page(interface.search(query)) for query in queries)
        return pages, _stats(interface)


class TestQueryPlaneParity:
    @pytest.mark.parametrize("backend", ["blocked", "packed"])
    @pytest.mark.parametrize("k", [1, 10, 100])
    def test_pages_byte_identical_narrow(self, backend, k):
        queries = _narrow_queries()
        columnar = _run_workload(
            "vectorized", backend, NARROW_DOMAINS, k, queries
        )
        scalar = _run_workload("scalar", backend, NARROW_DOMAINS, k, queries)
        assert columnar == scalar

    @pytest.mark.parametrize("backend", ["blocked", "packed"])
    @pytest.mark.parametrize("k", [1, 100])
    def test_pages_byte_identical_wide_keys(self, backend, k):
        queries = _wide_queries()
        columnar = _run_workload(
            "vectorized", backend, WIDE_DOMAINS, k, queries, n=1500, rounds=2
        )
        scalar = _run_workload(
            "scalar", backend, WIDE_DOMAINS, k, queries, n=1500, rounds=2
        )
        assert columnar == scalar

    def test_underflow_and_valid_and_overflow_statuses(self):
        """The three status classes appear and agree on both planes."""
        queries = _narrow_queries()
        (_, stats_columnar) = _run_workload(
            "vectorized", "blocked", NARROW_DOMAINS, 100, queries
        )
        (_, stats_scalar) = _run_workload(
            "scalar", "blocked", NARROW_DOMAINS, 100, queries
        )
        assert stats_columnar == stats_scalar
        assert stats_columnar["overflow"] > 0
        assert stats_columnar["valid"] > 0

    def test_empty_database_underflows(self):
        for plane in ("vectorized", "scalar"):
            with using_data_plane(plane):
                source = skewed_source(NARROW_DOMAINS, seed=1)
                db = HiddenDatabase(source.schema)
                interface = TopKInterface(db, k=5)
                interface.register_attr_order((0, 1, 2))
                root = interface.search(ConjunctiveQuery(()))
                scan = interface.search(ConjunctiveQuery(((1, 1),)))
                assert root.underflow and root.tuples == ()
                assert scan.underflow and scan.tuples == ()

    def test_scan_parity_with_scalar_remainder(self):
        """Scan queries over a mixed heap (blocks + dict rows) agree."""

        def run(plane):
            with using_data_plane(plane):
                source = skewed_source(
                    NARROW_DOMAINS, seed=5, measures=("m",),
                    measure_sampler=lambda rng: (rng.uniform(0, 10),),
                )
                db = HiddenDatabase(source.schema)
                db.insert_many(source.batch_columns(300, distinct=False))
                db.insert([1, 2, 0], (3.5,))  # dict-side rows
                db.insert([1, 1, 1], (4.5,))
                db.delete(17)
                interface = TopKInterface(db, k=7)
                # No registered order: every query takes the scan path.
                return [
                    _page(interface.search(q)) for q in _narrow_queries()
                ], _stats(interface)

        assert run("vectorized") == run("scalar")


class TestDeferredPageSemantics:
    def _interface(self, n=200, k=5):
        source = skewed_source(
            NARROW_DOMAINS, seed=3, measures=("m",),
            measure_sampler=lambda rng: (1.0,),
        )
        db = HiddenDatabase(source.schema)
        db.insert_many(source.batch_columns(n, distinct=False))
        interface = TopKInterface(db, k=k)
        interface.register_attr_order((0, 1, 2))
        return db, interface

    def test_valid_result_len_does_not_materialize(self):
        with using_data_plane("vectorized"):
            _, interface = self._interface()
            result = interface.search(ConjunctiveQuery(((0, 0), (1, 3))))
            if result.valid:
                assert result.page is not None
                assert len(result) == result.page.matching
                assert result._tuples is None  # still deferred

    def test_stale_valid_page_read_raises(self):
        with using_data_plane("vectorized"):
            db, interface = self._interface(n=50, k=200)
            result = interface.search(ConjunctiveQuery(()))
            assert result.valid  # k exceeds the database size
            db.delete(0)  # mutate before the page is read
            with pytest.raises(StaleResultError):
                _ = result.tuples

    def test_overflow_page_reads_current_state_like_scalar(self):
        """Overflow loaders re-read at access time on BOTH planes, so a
        post-mutation read agrees across planes (leaf-overflow outcomes
        are consumed mid-round by the intra-round driver)."""

        def page_after_mutation(plane):
            with using_data_plane(plane):
                source = skewed_source(NARROW_DOMAINS, seed=3)
                db = HiddenDatabase(source.schema)
                db.insert_many(source.batch_columns(200, distinct=False))
                interface = TopKInterface(db, k=5)
                interface.register_attr_order((0, 1, 2))
                result = interface.search(ConjunctiveQuery(((0, 1),)))
                assert result.overflow
                db.delete(next(t.tid for t in db.tuples()
                               if t.values[0] == 1))
                db.insert([1, 0, 0])
                return _page(result)

        assert page_after_mutation("vectorized") == page_after_mutation(
            "scalar"
        )

    def test_scan_overflow_page_is_query_time_snapshot_like_scalar(self):
        """The scalar scan branch captures its matches eagerly and ranks
        lazily; the columnar plane must return the same page even when the
        top match is deleted between query and read."""

        def page_after_mutation(plane):
            with using_data_plane(plane):
                source = skewed_source(NARROW_DOMAINS, seed=3)
                db = HiddenDatabase(source.schema)
                db.insert_many(source.batch_columns(200, distinct=False))
                interface = TopKInterface(db, k=5)  # no index: scan path
                result = interface.search(ConjunctiveQuery(((0, 1),)))
                assert result.overflow
                victim = max(
                    (t for t in db.tuples() if t.values[0] == 1),
                    key=lambda t: (t.score, -t.tid),
                )
                db.delete(victim.tid)
                db.insert([1, 0, 0])
                return _page(result)

        assert page_after_mutation("vectorized") == page_after_mutation(
            "scalar"
        )

    def test_leaf_overflow_contribution_under_intra_round_hook(self):
        """Regression: a drill-down ending at an overflowing leaf has its
        page read AFTER the intra-round hook mutated the store; both
        planes must complete and agree."""
        from repro import QueryTree, count_all
        from repro.core.drilldown import drill_from_root
        from repro.hiddendb.session import QuerySession

        def run(plane):
            with using_data_plane(plane):
                source = skewed_source([2, 2], exponent=0.0, seed=1)
                db = HiddenDatabase(source.schema)
                db.insert_many(source.batch_columns(80, distinct=False))
                interface = TopKInterface(db, k=5)
                tree = QueryTree(db.schema)
                tree.register(interface)
                rng = random.Random(0)

                def mutate():
                    db.insert(
                        bytes(
                            rng.randrange(s)
                            for s in db.schema.domain_sizes
                        )
                    )

                session = QuerySession(interface, on_query=mutate)
                outcome = drill_from_root(
                    session, tree, tree.random_signature(rng)
                )
                assert outcome.leaf_overflow
                return count_all().contribution(outcome, tree)

        assert run("vectorized") == run("scalar")

    def test_freeze_pins_page_against_mutation(self):
        with using_data_plane("vectorized"):
            db, interface = self._interface(n=50, k=200)
            result = interface.search(ConjunctiveQuery(()))
            assert result.valid  # k exceeds the database size
            result.freeze()
            db.delete(0)
            # The frozen page reflects pre-mutation state: tid 0 is still
            # on it, and reading it does not raise.
            assert 0 in [t.tid for t in result.tuples]

    def test_advance_round_alone_keeps_pages_readable(self):
        with using_data_plane("vectorized"):
            db, interface = self._interface()
            result = interface.search(ConjunctiveQuery(((0, 1),)))
            db.advance_round()  # no content mutation
            assert len(result.tuples) == len(result)

    def test_page_order_matches_tie_break(self):
        with using_data_plane("vectorized"):
            _, interface = self._interface(k=100)
            result = interface.search(ConjunctiveQuery(()))
            page = result.tuples
            keys = [(-t.score, t.tid) for t in page]
            assert keys == sorted(keys)

    def test_gather_unsorted_input_preserves_order(self):
        with using_data_plane("vectorized"):
            db, _ = self._interface()
            tids = np.array([7, 3, 11, 5], dtype=np.int64)
            rows = db.store.gather(tids)
            assert rows.batch.tids.tolist() == [7, 3, 11, 5]
            for row, tid in enumerate(tids):
                assert rows.materialize_row(row).tid == int(tid)
