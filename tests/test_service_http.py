"""Service plane end-to-end: HTTP parity, SSE, governor, typed errors.

The headline acceptance criterion of the service PR: estimates obtained
through the HTTP service are **bit-identical** to driving the
:class:`~repro.api.Engine` directly with the same config — on every
backend × data plane, sequential or parallel.  Around it: the SSE stream
delivers completed rounds while later rounds still execute, observers
respond during a long round (the PR 5 lock-narrowing contract carried
through the transport), governor degradation is visible in outcomes and
telemetry, and errors cross the wire as typed payloads.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import HiddenDatabase
from repro.api import Engine, EngineConfig, EstimationTask
from repro.core.aggregates import count_all, sum_measure
from repro.core.estimators.base import RoundReport
from repro.data.synthetic import skewed_source
from repro.errors import (
    AdmissionError,
    DuplicateTaskError,
    UnknownTaskError,
    WireFormatError,
)
from repro.service import (
    STATUS_DEFERRED,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_REFUSED,
    BudgetGovernor,
    GovernorConfig,
    ServiceApp,
    ServiceClient,
    ServiceServer,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _source(seed: int = 3):
    return skewed_source(
        [8, 10, 6, 4],
        exponent=0.4,
        measures=("price",),
        measure_sampler=lambda rng: (rng.uniform(1.0, 100.0),),
        seed=seed,
    )


def _engine(backend=None, shards=None, plane=None, parallelism=None,
            n=600, budget=40):
    source = _source()
    config = EngineConfig(
        backend=backend,
        shards=shards,
        data_plane=plane,
        parallelism=parallelism,
        k=8,
        budget_per_round=budget,
        seed=3,
    )
    db = HiddenDatabase(
        source.schema,
        backend=config.backend,
        block_size=config.block_size,
        backend_options=config.backend_factory_options(),
    )
    db.insert_many(source.batch_columns(n))
    return Engine(config, db=db)


class _Service:
    """A ServiceServer on a background thread (ephemeral port)."""

    def __init__(self, app: ServiceApp, heartbeat: float = 0.1):
        self.server = ServiceServer(app, port=0, heartbeat=heartbeat)
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def go():
            await self.server.start()
            self._ready.set()
            await self.server.serve_forever()

        asyncio.run(go())

    def __enter__(self) -> ServiceClient:
        self.thread.start()
        assert self._ready.wait(10), "server failed to start"
        return ServiceClient("127.0.0.1", self.server.port, timeout=30)

    def __exit__(self, *exc_info) -> None:
        if self.thread.is_alive():
            try:
                ServiceClient(
                    "127.0.0.1", self.server.port, timeout=5
                ).shutdown()
            except OSError:
                pass
        self.thread.join(timeout=15)
        assert not self.thread.is_alive(), "server did not shut down"


class _GatedEstimator:
    """Estimator whose rounds block until the test releases them."""

    def __init__(self, interface, started, releases):
        self.interface = interface
        self.on_query = None
        self._started = started
        self._releases = releases
        self._round = 0

    def run_round(self) -> RoundReport:
        index = self._round
        self._round += 1
        self._started[index].set()
        assert self._releases[index].wait(timeout=30), "released too late"
        return RoundReport(
            round_index=self.interface.current_round,
            estimates={"count": float(index + 1)},
            variances={"count": 0.0},
            queries_used=1,
        )


def _gated_factory(started, releases):
    def factory(interface, specs, budget_per_round=1, seed=0, **options):
        return _GatedEstimator(interface, started, releases)

    return factory


# ----------------------------------------------------------------------
# Parity: HTTP-obtained estimates are bit-identical to direct Engine use
# ----------------------------------------------------------------------
TENANTS = (("alpha", "RS", 30), ("beta", "REISSUE", 40),
           ("gamma", "RESTART", 20))


def _direct_reports(backend, shards, plane, rounds):
    engine = _engine(backend=backend, shards=shards, plane=plane)
    specs = [count_all(), sum_measure(engine.db.schema, "price")]
    for name, estimator, budget in TENANTS:
        engine.submit(EstimationTask(name, specs, estimator, budget=budget))
    per_round = []
    for position in range(rounds):
        if position:
            engine.advance_round()
        per_round.append(engine.run_round())
    return per_round


@pytest.mark.parametrize("plane", ["vectorized", "scalar"])
@pytest.mark.parametrize(
    "backend,shards",
    [("blocked", None), ("packed", None), ("sharded", 2)],
)
def test_http_estimates_bit_identical_to_direct_engine(
    backend, shards, plane
):
    rounds = 2
    direct = _direct_reports(backend, shards, plane, rounds)
    app = ServiceApp(_engine(
        backend=backend, shards=shards, plane=plane, parallelism=2,
    ))
    wire_specs = [{"kind": "count"},
                  {"kind": "sum", "measure": "price"}]
    with _Service(app) as client:
        for name, estimator, budget in TENANTS:
            client.submit(
                name=name, estimator=estimator, specs=wire_specs,
                budget=budget,
            )
        response = client.run_rounds(
            rounds=rounds, advance=True, parallel=2,
        )
    assert len(response["results"]) == rounds
    for position, result in enumerate(response["results"]):
        for outcome in result["outcomes"]:
            assert outcome["status"] == STATUS_OK
            served = RoundReport.from_dict(outcome["report"])
            expected = direct[position][outcome["task"]]
            assert served.estimates == expected.estimates
            assert served.variances == expected.variances
            assert served.queries_used == expected.queries_used


def test_reports_and_ledger_match_direct_engine():
    rounds = 2
    direct_engine = _engine()
    specs = [count_all()]
    direct_engine.submit(EstimationTask("t", specs, "RS", budget=25))
    direct = []
    for position in range(rounds):
        if position:
            direct_engine.advance_round()
        direct.append(direct_engine.run_round()["t"])

    app = ServiceApp(_engine())
    with _Service(app) as client:
        client.submit(name="t", specs=[{"kind": "count"}], budget=25)
        client.run_rounds(rounds=rounds, advance=True)
        served = client.reports("t")
        ledger = client.ledger()
    assert served["rounds_run"] == rounds
    assert served["queries_total"] == sum(r.queries_used for r in direct)
    for payload, expected in zip(served["reports"], direct):
        report = RoundReport.from_dict(payload)
        assert report.estimates == expected.estimates
        assert report.queries_used == expected.queries_used
    assert ledger["ledger"] == direct_engine.budget_ledger()


# ----------------------------------------------------------------------
# SSE: completed rounds stream while later rounds still execute
# ----------------------------------------------------------------------
def test_sse_delivers_reports_during_a_multi_round_request():
    app = ServiceApp(_engine(n=100))
    started = [threading.Event(), threading.Event()]
    releases = [threading.Event(), threading.Event()]
    app.engine.submit(EstimationTask(
        "gated", [count_all()], _gated_factory(started, releases),
    ))
    with _Service(app) as client:
        events: list[dict] = []

        def collect():
            for event in client.stream(timeout=10):
                events.append(event)
                if len(events) >= 2:
                    return

        collector = threading.Thread(target=collect, daemon=True)
        collector.start()
        runner = threading.Thread(
            target=client.run_rounds, kwargs={"rounds": 2}, daemon=True,
        )
        runner.start()
        try:
            assert started[0].wait(10)
            releases[0].set()  # round 1 completes; round 2 blocks
            assert started[1].wait(10)
            deadline = time.monotonic() + 10
            while not events and time.monotonic() < deadline:
                time.sleep(0.02)
            # Round 1's report crossed the stream while round 2 is still
            # in flight inside the same POST /v1/rounds request.
            assert runner.is_alive()
            assert events, "no SSE event during the in-flight request"
            assert events[0]["task"] == "gated"
            report = RoundReport.from_dict(events[0]["report"])
            assert report.estimates == {"count": 1.0}
        finally:
            releases[0].set()
            releases[1].set()
        runner.join(15)
        collector.join(15)
        assert not runner.is_alive()
        assert [e["seq"] for e in events] == sorted(
            {e["seq"] for e in events}
        ), "SSE delivered gaps or duplicates"


def test_sse_replay_delivers_already_published_reports():
    app = ServiceApp(_engine(n=100))
    with _Service(app) as client:
        client.submit(name="t", specs=[{"kind": "count"}], budget=10)
        client.run_rounds(rounds=2)
        events = []
        for event in client.stream(timeout=3):
            events.append(event)
            if len(events) >= 2:
                break
    assert [e["round_index"] for e in events] == [1, 1]
    assert [e["seq"] for e in events] == [1, 2]


# ----------------------------------------------------------------------
# Observer responsiveness during a long round (through the transport)
# ----------------------------------------------------------------------
def test_observers_respond_over_http_during_a_long_round():
    app = ServiceApp(_engine(n=100))
    started = [threading.Event()]
    releases = [threading.Event()]
    app.engine.submit(EstimationTask(
        "slow", [count_all()], _gated_factory(started, releases),
    ))
    with _Service(app) as client:
        runner = threading.Thread(
            target=client.run_rounds, kwargs={"rounds": 1}, daemon=True,
        )
        runner.start()
        try:
            assert started[0].wait(10)
            begin = time.monotonic()
            health = client.health()
            ledger = client.ledger()
            telemetry = client.telemetry()
            elapsed = time.monotonic() - begin
            assert elapsed < 5.0, "observers blocked behind the round"
            assert health["status"] == "ok"
            assert ledger["ledger"]["slow"]["rounds"] == 0
            assert telemetry["round_index"] == health["round_index"]
        finally:
            releases[0].set()
        runner.join(15)
        assert not runner.is_alive()
        assert client.ledger()["ledger"]["slow"]["rounds"] == 1


# ----------------------------------------------------------------------
# Governor through the wire: degradation observable, never silent
# ----------------------------------------------------------------------
def test_degradation_ladder_is_observable_over_http():
    governor = BudgetGovernor(GovernorConfig(
        queries_per_window=60, window_rounds=100, max_deferrals=2,
    ))
    app = ServiceApp(_engine(n=200, budget=40), governor)
    with _Service(app) as client:
        client.submit(name="t", specs=[{"kind": "count"}])  # budget 40
        statuses, records = [], []
        for _ in range(4):
            result = client.run_rounds(rounds=1)["results"][0]
            outcome = result["outcomes"][0]
            statuses.append(outcome["status"])
            records.append(outcome["governor"])
        telemetry = client.telemetry()
        ledger = client.ledger()
    # 60 allowance, 40/round: ok → degraded (0.4*40=16 ≤ 20 left) →
    # deferred twice (nothing fits the 4 remaining).
    assert statuses == [
        STATUS_OK, STATUS_DEGRADED, STATUS_DEFERRED, STATUS_DEFERRED,
    ]
    assert records[0] is None
    assert records[1]["action"] == "shrink_k"
    assert records[1]["granted"] == 16
    assert records[2]["action"] == "widen_rounds"
    usage = telemetry["governor"]["tenants"]["t"]
    assert usage["degraded_rounds"] == 1
    assert usage["deferred_rounds"] == 2
    assert usage["queries_total"] == 56
    # The engine's ledger shows the shrunken round really spent less.
    assert ledger["ledger"]["t"]["queries_total"] == 56
    assert ledger["ledger"]["t"]["queries_last_round"] == 16


def test_single_tenant_refusal_is_a_typed_429():
    governor = BudgetGovernor(GovernorConfig(
        queries_per_window=1, window_rounds=10, max_deferrals=0,
    ))
    app = ServiceApp(_engine(n=100, budget=40), governor)
    with _Service(app) as client:
        client.submit(name="t", specs=[{"kind": "count"}])
        with pytest.raises(AdmissionError) as excinfo:
            client.run_rounds(rounds=1)
        exc = excinfo.value
        assert exc.tenant == "t"
        assert exc.retry_after_rounds is not None
        assert exc.http_status == 429


def test_multi_tenant_refusal_does_not_fail_other_tenants():
    governor = BudgetGovernor(GovernorConfig(
        queries_per_window=25, window_rounds=100, max_deferrals=0,
    ))
    app = ServiceApp(_engine(n=200, budget=40), governor)
    with _Service(app) as client:
        client.submit(name="small", specs=[{"kind": "count"}], budget=10)
        client.submit(name="big", specs=[{"kind": "count"}], budget=40)
        # Round 1: small allowed (10 ≤ 25); big shrinks (16 ≤ 15 fails →
        # nothing fits after small committed... drive to refusal).
        outcomes = {}
        for _ in range(3):
            result = client.run_rounds(rounds=1)["results"][0]
            outcomes = {o["task"]: o for o in result["outcomes"]}
            if outcomes["big"]["status"] == STATUS_REFUSED:
                break
        assert outcomes["big"]["status"] == STATUS_REFUSED
        assert outcomes["big"]["error"]["code"] == "ADMISSION_REJECTED"
        # The refused tenant never silently poisons its neighbour.
        assert outcomes["small"]["status"] in (STATUS_OK, STATUS_DEGRADED)


def test_max_tenants_rejects_submissions_with_429():
    governor = BudgetGovernor(GovernorConfig(max_tenants=1))
    app = ServiceApp(_engine(n=100), governor)
    with _Service(app) as client:
        client.submit(name="first", specs=[{"kind": "count"}])
        with pytest.raises(AdmissionError):
            client.submit(name="second", specs=[{"kind": "count"}])


# ----------------------------------------------------------------------
# Typed errors over the wire
# ----------------------------------------------------------------------
def test_typed_errors_cross_the_wire():
    app = ServiceApp(_engine(n=100))
    with _Service(app) as client:
        with pytest.raises(UnknownTaskError) as excinfo:
            client.reports("ghost")
        assert excinfo.value.name == "ghost"

        client.submit(name="t", specs=[{"kind": "count"}])
        with pytest.raises(DuplicateTaskError):
            client.submit(name="t", specs=[{"kind": "count"}])

        with pytest.raises(WireFormatError):
            client.submit(name="bad", specs=[{"kind": "warp"}])

        with pytest.raises(WireFormatError):
            client.submit(name="empty", specs=[])

        with pytest.raises(UnknownTaskError):
            client.run_rounds(tasks=["ghost"])


def test_malformed_bodies_and_routes():
    import http.client

    app = ServiceApp(_engine(n=100))
    with _Service(app) as client:
        connection = http.client.HTTPConnection(
            "127.0.0.1", app_port(client), timeout=10
        )
        connection.request(
            "POST", "/v1/tasks", body=b"not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 400
        connection.close()

        with pytest.raises(Exception) as excinfo:
            client.request("GET", "/v1/nope")
        assert "no route" in str(excinfo.value)

        with pytest.raises(Exception):
            client.request("DELETE", "/v1/tasks")


def app_port(client: ServiceClient) -> int:
    return client.port


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_clean_shutdown_with_open_stream():
    import http.client

    app = ServiceApp(_engine(n=100))
    service = _Service(app)
    client = service.__enter__()
    client.submit(name="t", specs=[{"kind": "count"}], budget=5)
    client.run_rounds(rounds=1)
    # Leave an SSE connection hanging mid-stream, then shut down: the
    # server must still wind down promptly (it cancels the stream).
    connection = http.client.HTTPConnection(
        "127.0.0.1", client.port, timeout=10
    )
    connection.request("GET", "/v1/stream")
    assert connection.getresponse().status == 200
    assert client.shutdown()["status"] == "shutting down"
    service.thread.join(timeout=15)
    assert not service.thread.is_alive()
    connection.close()
    with pytest.raises(OSError):
        ServiceClient("127.0.0.1", client.port, timeout=2).health()


def test_every_response_is_version_stamped():
    app = ServiceApp(_engine(n=100))
    with _Service(app) as client:
        client.submit(name="t", specs=[{"kind": "count"}], budget=5)
        payloads = [
            client.health(), client.ledger(), client.telemetry(),
            client.run_rounds(rounds=1), client.reports("t"),
        ]
    for payload in payloads:
        assert payload["schema_version"] == 1
