"""Unit tests for the RS budget water-filling allocator."""

import itertools
import math

import pytest

from repro.core.allocation import (
    GroupParams,
    combined_variance,
    integer_allocation,
    waterfill,
)


def brute_force_best(groups, budget):
    """Exhaustive integer optimum on small instances."""
    ranges = []
    for group in groups:
        cap = int(min(group.upper, budget // group.cost))
        ranges.append(range(cap + 1))
    best = None
    best_allocation = None
    for combo in itertools.product(*ranges):
        cost = sum(c * g.cost for c, g in zip(combo, groups))
        if cost > budget + 1e-9:
            continue
        allocation = {g.key: c for g, c in zip(groups, combo)}
        variance = combined_variance(groups, allocation)
        if best is None or variance < best - 1e-12:
            best = variance
            best_allocation = allocation
    return best, best_allocation


class TestValidation:
    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            GroupParams("x", alpha=-1, beta=0, cost=1)

    def test_zero_cost_rejected(self):
        with pytest.raises(ValueError):
            GroupParams("x", alpha=1, beta=0, cost=0)


class TestWaterfill:
    def test_empty_budget(self):
        groups = [GroupParams("a", 1.0, 0.1, 1.0, upper=10)]
        assert waterfill(groups, 0)["a"] == 0.0

    def test_respects_upper_bounds(self):
        groups = [GroupParams("a", 1.0, 0.5, 1.0, upper=3)]
        allocation = waterfill(groups, 100)
        assert allocation["a"] <= 3

    def test_budget_constraint_respected(self):
        groups = [
            GroupParams("a", 1.0, 0.1, 2.0, upper=50),
            GroupParams("b", 4.0, 0.0, 3.0, upper=math.inf),
        ]
        allocation = waterfill(groups, 60)
        spend = sum(
            allocation[g.key] * g.cost for g in groups
        )
        assert spend <= 60 + 1e-6

    def test_zero_alpha_group_gets_single_verification(self):
        """No observed change => verify once, spend the rest on new."""
        groups = [
            GroupParams("stale", alpha=0.0, beta=0.2, cost=2.0, upper=40),
            GroupParams("new", alpha=5.0, beta=0.0, cost=5.0),
        ]
        allocation = waterfill(groups, 100)
        assert allocation["stale"] == pytest.approx(1.0)
        assert allocation["new"] > 10

    def test_big_change_prefers_cheap_updates(self):
        """alpha_update ~ alpha_new but updates cost less => update first."""
        groups = [
            GroupParams("old", alpha=5.0, beta=0.05, cost=2.0, upper=20),
            GroupParams("new", alpha=5.0, beta=0.0, cost=6.0),
        ]
        allocation = integer_allocation(groups, 60)
        assert allocation["old"] == 20  # group exhausted before new work


class TestIntegerAllocation:
    @pytest.mark.parametrize("budget", [5, 11, 23, 37])
    def test_close_to_brute_force(self, budget):
        groups = [
            GroupParams("a", alpha=2.0, beta=0.05, cost=2.0, upper=8),
            GroupParams("b", alpha=6.0, beta=0.0, cost=3.0, upper=12),
        ]
        allocation = integer_allocation(groups, budget)
        mine = combined_variance(groups, allocation)
        best, _ = brute_force_best(groups, budget)
        assert mine <= best * 1.25 + 1e-9

    def test_three_groups_vs_brute_force(self):
        groups = [
            GroupParams("a", alpha=1.0, beta=0.02, cost=2.0, upper=6),
            GroupParams("b", alpha=3.0, beta=0.10, cost=2.5, upper=6),
            GroupParams("c", alpha=8.0, beta=0.0, cost=4.0, upper=8),
        ]
        allocation = integer_allocation(groups, 30)
        mine = combined_variance(groups, allocation)
        best, _ = brute_force_best(groups, 30)
        assert mine <= best * 1.25 + 1e-9

    def test_spends_leftover_budget(self):
        groups = [
            GroupParams("a", alpha=2.0, beta=0.0, cost=1.0, upper=100),
        ]
        allocation = integer_allocation(groups, 10)
        assert allocation["a"] == 10


class TestCorollary41Regime:
    def test_no_change_sends_budget_to_new(self):
        """sigma_c^2 = 0 => h1 minimal (Corollary 4.1's first case)."""
        old = GroupParams("old", alpha=0.0, beta=0.3, cost=2.0, upper=50)
        new = GroupParams("new", alpha=10.0, beta=0.0, cost=5.0)
        allocation = integer_allocation([old, new], 200)
        assert allocation["old"] <= 1
        assert allocation["new"] >= 35

    def test_total_change_reduces_to_reissue(self):
        """sigma_c ~ sigma_d and cheaper updates => update everything."""
        old = GroupParams("old", alpha=10.0, beta=0.2, cost=2.0, upper=30)
        new = GroupParams("new", alpha=10.0, beta=0.0, cost=6.0)
        allocation = integer_allocation([old, new], 100)
        assert allocation["old"] == 30
