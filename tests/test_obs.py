"""Unit tests for the ``repro.obs`` observability plane.

Registry semantics (get-or-create handles, catalog enforcement, reset in
place), span tracing (nesting, bounded log, tree formatting), exports
(strict-JSON snapshot, Prometheus text exposition), the configuration
precedence helpers, and the race-safe :class:`InterfaceStats` counters.
"""

from __future__ import annotations

import json
import re
import threading

import pytest

from repro.errors import ExperimentError
from repro.hiddendb.interface import InterfaceStats, QueryStatus
from repro.obs import (
    CATALOG,
    OBS,
    SIZE_BUCKETS,
    TIME_BUCKETS,
    MetricsRegistry,
    SpanLog,
    format_span_tree,
    get_default_observability,
    kind_of,
    register_metric,
    set_default_observability,
    using_observability,
)


@pytest.fixture(autouse=True)
def _pristine_obs():
    """Leave the global registry disabled and zeroed around every test."""
    OBS.reset()
    OBS.disable()
    previous = set_default_observability(None)
    yield
    OBS.reset()
    OBS.disable()
    set_default_observability(previous)


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
def test_kind_of_known_and_unknown():
    assert kind_of("repro_queries_total") == "counter"
    assert kind_of("repro_round_seconds") == "histogram"
    assert kind_of("repro_shard_keys") == "gauge"
    with pytest.raises(ExperimentError):
        kind_of("repro_nonexistent_total")


def test_register_metric_idempotent_and_kind_locked():
    register_metric("repro_test_ext_total", "counter", "An extension.")
    assert kind_of("repro_test_ext_total") == "counter"
    # Same kind again: no-op.
    register_metric("repro_test_ext_total", "counter", "Again.")
    with pytest.raises(ExperimentError):
        register_metric("repro_test_ext_total", "gauge", "Flip.")
    with pytest.raises(ExperimentError):
        register_metric("repro_test_bad", "meter", "Unknown kind.")
    CATALOG.pop("repro_test_ext_total")


def test_registry_rejects_uncataloged_and_wrong_kind():
    registry = MetricsRegistry()
    with pytest.raises(ExperimentError):
        registry.counter("repro_not_cataloged_total")
    with pytest.raises(ExperimentError):
        registry.gauge("repro_queries_total")  # cataloged as a counter


# ----------------------------------------------------------------------
# Handles
# ----------------------------------------------------------------------
def test_get_or_create_returns_same_handle():
    registry = MetricsRegistry()
    a = registry.counter("repro_queries_total", {"status": "valid"})
    b = registry.counter("repro_queries_total", {"status": "valid"})
    assert a is b
    other = registry.counter("repro_queries_total", {"status": "overflow"})
    assert other is not a
    a.inc()
    a.inc(4)
    assert a.value == 5
    assert other.value == 0


def test_histogram_bucket_defaults_by_suffix():
    registry = MetricsRegistry()
    seconds = registry.histogram("repro_round_seconds")
    rows = registry.histogram("repro_bulk_merge_rows", {"op": "add"})
    assert seconds.bounds == TIME_BUCKETS
    assert rows.bounds == SIZE_BUCKETS
    rows.observe(3.0)
    rows.observe(1000.0)
    # bisect places 3.0 above le=1, 1000 above le=256.
    assert rows.count == 2
    assert rows.total == 1003.0
    assert rows.counts[1] == 1  # (1, 4]
    assert sum(rows.counts) == 2
    assert rows.mean == 501.5


def test_reset_zeroes_in_place_and_handles_stay_valid():
    registry = MetricsRegistry()
    counter = registry.counter("repro_rounds_total")
    counter.inc(7)
    registry.reset()
    assert counter.value == 0
    counter.inc()
    assert registry.counter("repro_rounds_total") is counter
    assert counter.value == 1


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_spans_nest_and_record_parent_ids():
    registry = MetricsRegistry()
    registry.enable()
    with registry.span("engine.run_round"):
        with registry.span("round.task"):
            pass
        with registry.span("round.task"):
            pass
    records = registry.spans.records()
    assert [r["name"] for r in records] == [
        "round.task", "round.task", "engine.run_round",
    ]
    root = records[-1]
    assert root["parent"] is None
    assert all(r["parent"] == root["id"] for r in records[:2])
    assert all(r["seconds"] >= 0.0 for r in records)
    tree = format_span_tree(records)
    assert "engine.run_round" in tree
    assert "  round.task" in tree  # child line indents under its root
    assert "x2" in tree  # the two task spans collapse into one line


def test_disabled_span_is_shared_noop():
    registry = MetricsRegistry()
    a = registry.span("x")
    b = registry.span("y")
    assert a is b
    with a:
        pass
    assert len(registry.spans) == 0


def test_span_log_bounded_with_drop_count():
    log = SpanLog(limit=4)
    for _ in range(6):
        with log.span("s"):
            pass
    assert len(log) == 4
    assert log.dropped == 2
    log.clear()
    assert len(log) == 0
    assert log.dropped == 0


def test_span_log_jsonl_round_trips():
    log = SpanLog()
    with log.span("outer"):
        pass
    lines = log.to_jsonl().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["name"] == "outer"


def test_format_span_tree_empty():
    assert format_span_tree([]) == "(no spans recorded)"


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def test_snapshot_is_strict_json_and_sorted():
    registry = MetricsRegistry()
    registry.counter("repro_queries_total", {"status": "valid"}).inc(3)
    registry.gauge("repro_worker_utilization").set(0.5)
    registry.histogram("repro_round_seconds").observe(0.02)
    snap = registry.snapshot()
    json.dumps(snap, allow_nan=False)  # must not raise
    assert snap["enabled"] is False
    assert snap["counters"][0]["labels"] == {"status": "valid"}
    assert snap["counters"][0]["value"] == 3
    [histogram] = snap["histograms"]
    assert histogram["count"] == 1
    # Cumulative buckets end at the total count with the +Inf edge
    # wire-encoded as a string (repro.core.wire.encode_float).
    assert histogram["buckets"][-1][1] == 1
    assert histogram["buckets"][-1][0] == "inf"
    assert snap["spans"] == {"recorded": 0, "dropped": 0}


def test_summary_headlines():
    registry = MetricsRegistry()
    registry.counter("repro_queries_total", {"status": "valid"}).inc(6)
    registry.counter("repro_queries_total", {"status": "overflow"}).inc(2)
    registry.counter(
        "repro_rank_cache_hits_total", {"backend": "packed"}
    ).inc(9)
    registry.counter(
        "repro_rank_cache_misses_total", {"backend": "packed"}
    ).inc(1)
    registry.histogram("repro_epoch_publish_seconds").observe(0.25)
    summary = registry.summary()
    assert summary["queries"] == {"overflow": 2, "valid": 6, "total": 8}
    assert summary["rank_cache"]["hit_rate"] == 0.9
    assert summary["publish_flip"]["count"] == 1
    assert summary["publish_flip"]["mean_seconds"] == 0.25


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    registry.counter("repro_queries_total", {"status": "valid"}).inc(3)
    registry.histogram("repro_round_seconds").observe(0.02)
    text = registry.to_prometheus()
    assert text.endswith("\n")
    assert "# HELP repro_queries_total " in text
    assert "# TYPE repro_queries_total counter" in text
    assert '# TYPE repro_round_seconds histogram' in text
    assert 'repro_queries_total{status="valid"} 3' in text
    assert 'repro_round_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_round_seconds_count 1" in text
    sample = re.compile(
        r"^repro_[a-z0-9_]+(_bucket|_sum|_count)?"
        r"(\{[a-zA-Z0-9_]+=\"[^\"]*\"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})?"
        r" [0-9eE.+-]+$"
    )
    comment = re.compile(r"^# (HELP|TYPE) repro_[a-z0-9_]+ .+$")
    for line in text.splitlines():
        assert sample.match(line) or comment.match(line), line
    # Bucket counts are cumulative and non-decreasing.
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_round_seconds_bucket")
    ]
    assert counts == sorted(counts)


def test_label_escaping():
    registry = MetricsRegistry()
    registry.counter(
        "repro_queries_total", {"status": 'we"ird\\nl\n'}
    ).inc()
    line = [
        ln for ln in registry.to_prometheus().splitlines()
        if ln.startswith("repro_queries_total{")
    ][0]
    assert '\\"' in line and "\\\\" in line and "\\n" in line
    assert "\n" not in line


# ----------------------------------------------------------------------
# Precedence helpers
# ----------------------------------------------------------------------
def test_default_observability_env_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    assert get_default_observability() is False
    monkeypatch.setenv("REPRO_OBS", "1")
    assert get_default_observability() is True
    monkeypatch.setenv("REPRO_OBS", "off")
    assert get_default_observability() is False
    # Programmatic default beats the env var in both directions.
    set_default_observability(True)
    assert get_default_observability() is True
    monkeypatch.setenv("REPRO_OBS", "on")
    set_default_observability(False)
    assert get_default_observability() is False


def test_using_observability_scopes_default_and_enabled():
    assert OBS.enabled is False
    with using_observability(True) as active:
        assert active is True
        assert OBS.enabled is True
        assert get_default_observability() is True
    assert OBS.enabled is False
    assert get_default_observability() is False
    with using_observability(None) as active:  # None = no-op
        assert active is False
        assert OBS.enabled is False


# ----------------------------------------------------------------------
# InterfaceStats (satellite: race-safe counters)
# ----------------------------------------------------------------------
def test_interface_stats_record_and_to_dict():
    stats = InterfaceStats()
    stats.record(QueryStatus.VALID)
    stats.record(QueryStatus.OVERFLOW)
    stats.record(QueryStatus.UNDERFLOW)
    assert stats.to_dict() == {
        "queries": 3, "underflow": 1, "valid": 1, "overflow": 1,
    }
    assert stats.as_dict() == stats.to_dict()


def test_interface_stats_merge():
    a, b = InterfaceStats(), InterfaceStats()
    a.record(QueryStatus.VALID)
    b.record(QueryStatus.OVERFLOW)
    b.record(QueryStatus.OVERFLOW)
    a.merge(b)
    assert a.to_dict() == {
        "queries": 3, "underflow": 0, "valid": 1, "overflow": 2,
    }
    # The source is untouched and still usable.
    assert b.to_dict()["queries"] == 2


def test_interface_stats_concurrent_records_and_merges():
    stats = InterfaceStats()
    per_thread, threads = 500, 8

    def pound():
        local = InterfaceStats()
        for i in range(per_thread):
            local.record(
                QueryStatus.VALID if i % 2 else QueryStatus.OVERFLOW
            )
            stats.record(QueryStatus.UNDERFLOW)
        stats.merge(local)

    workers = [threading.Thread(target=pound) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    total = stats.to_dict()
    assert total["queries"] == 2 * per_thread * threads
    assert total["underflow"] == per_thread * threads
    assert total["valid"] + total["overflow"] == per_thread * threads
    # Snapshot invariant: parts always sum to the whole.
    assert (
        total["underflow"] + total["valid"] + total["overflow"]
        == total["queries"]
    )


# ----------------------------------------------------------------------
# Windowed deltas (MetricsRegistry.delta)
# ----------------------------------------------------------------------
def test_delta_windows_counters_histograms_not_gauges():
    registry = MetricsRegistry()
    queries = registry.counter("repro_queries_total", {"status": "valid"})
    wall = registry.histogram("repro_round_seconds")
    level = registry.gauge("repro_worker_utilization")
    queries.inc(5)
    wall.observe(0.02)
    level.set(0.25)
    window_start = registry.snapshot()
    queries.inc(3)
    wall.observe(0.04)
    wall.observe(10.0)
    level.set(0.75)
    # A metric born *inside* the window deltas against zero.
    registry.counter("repro_queries_total", {"status": "overflow"}).inc(2)

    delta = registry.delta(window_start)
    json.dumps(delta, allow_nan=False)  # same strict-JSON contract
    counters = {
        entry["labels"]["status"]: entry["value"]
        for entry in delta["counters"]
        if entry["name"] == "repro_queries_total"
    }
    assert counters == {"valid": 3, "overflow": 2}
    [histogram] = [
        entry for entry in delta["histograms"]
        if entry["name"] == "repro_round_seconds"
    ]
    assert histogram["count"] == 2
    assert histogram["sum"] == pytest.approx(10.04)
    # Bucket increases are cumulative within the window and end at the
    # windowed count.
    cumulative = [count for _, count in histogram["buckets"]]
    assert cumulative == sorted(cumulative)
    assert cumulative[-1] == 2
    # Gauges are levels, not totals: current value, not a difference.
    [gauge] = [
        entry for entry in delta["gauges"]
        if entry["name"] == "repro_worker_utilization"
    ]
    assert gauge["value"] == 0.75


def test_delta_against_empty_baseline_is_snapshot():
    registry = MetricsRegistry()
    registry.counter("repro_queries_total", {"status": "valid"}).inc(4)
    assert registry.delta(None) == registry.snapshot()
    assert registry.delta({}) == registry.snapshot()


def test_delta_consistent_under_concurrent_increments():
    """A delta taken mid-increment is a consistent prefix: never
    negative, never torn, and successive windows sum to the total."""
    registry = MetricsRegistry()
    counter = registry.counter("repro_queries_total", {"status": "valid"})
    wall = registry.histogram("repro_round_seconds")
    per_thread, threads = 4000, 6

    def pound():
        for i in range(per_thread):
            counter.inc()
            wall.observe(0.001 * (i % 7))

    workers = [threading.Thread(target=pound) for _ in range(threads)]
    window_start = registry.snapshot()
    for worker in workers:
        worker.start()
    try:
        last_value = 0
        while any(worker.is_alive() for worker in workers):
            delta = registry.delta(window_start)
            [entry] = delta["counters"]
            assert entry["value"] >= last_value >= 0
            last_value = entry["value"]  # same base => monotone windows
            [histogram] = delta["histograms"]
            cumulative = [count for _, count in histogram["buckets"]]
            assert all(count >= 0 for count in cumulative)
            assert cumulative == sorted(cumulative)
            assert cumulative[-1] == histogram["count"] >= 0
    finally:
        for worker in workers:
            worker.join()
    # Quiesced: the full-run window accounts for every increment...
    total = registry.delta(window_start)
    assert total["counters"][0]["value"] == per_thread * threads
    assert total["histograms"][0]["count"] == per_thread * threads
    # ...and adjacent windows partition exactly (no loss, no double
    # count): a fresh window sees only what landed after its start.
    mid = registry.snapshot()
    counter.inc(10)
    wall.observe(1.0)
    tail = registry.delta(mid)
    assert tail["counters"][0]["value"] == 10
    assert tail["histograms"][0]["count"] == 1
    assert registry.delta(window_start)["counters"][0]["value"] == (
        per_thread * threads + 10
    )
