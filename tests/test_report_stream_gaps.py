"""``Engine.stream_reports`` gap accounting under report-log eviction.

The contract (see :meth:`repro.api.engine.Engine.stream_reports`): the
bounded report log never replays as if it were contiguous — wherever
eviction opened a hole, the stream yields a ``(GAP_TASK,
ReportGap(dropped))`` marker whose ``dropped`` count is **exact**, even
when a fast producer races a slow consumer mid-iteration.  The invariant
throughout: reports yielded + gap ``dropped`` totals == reports produced.
"""

from __future__ import annotations

import threading
import time

from repro import HiddenDatabase
from repro.api import Engine, EngineConfig, EstimationTask
from repro.api.engine import GAP_TASK, ReportGap
from repro.core.aggregates import count_all
from repro.data.synthetic import skewed_source


def _engine(report_log_limit: int) -> Engine:
    source = skewed_source([8, 10, 6, 4], exponent=0.4, seed=3)
    config = EngineConfig(
        backend="packed",
        k=8,
        budget_per_round=10,
        seed=3,
        report_log_limit=report_log_limit,
    )
    db = HiddenDatabase(source.schema, backend=config.backend)
    db.insert_many(source.batch_columns(400))
    engine = Engine(config, db=db)
    engine.submit(EstimationTask("t", [count_all()], "RS"))
    return engine


def _run_rounds(engine: Engine, rounds: int) -> None:
    for _ in range(rounds):
        engine.run_round()
        engine.advance_round()


def _drain(stream):
    reports, dropped = [], 0
    for name, entry in stream:
        if name == GAP_TASK:
            assert isinstance(entry, ReportGap)
            assert entry.dropped > 0
            dropped += entry.dropped
        else:
            reports.append((name, entry))
    return reports, dropped


def test_gap_marker_counts_pre_stream_evictions_exactly():
    engine = _engine(report_log_limit=5)
    _run_rounds(engine, 12)
    entries = list(engine.stream_reports())
    assert entries[0][0] == GAP_TASK
    assert entries[0][1] == ReportGap(dropped=7)
    assert [name for name, _ in entries[1:]] == ["t"] * 5
    # Accounting is exact: yielded + dropped == produced.
    assert len(entries) - 1 + entries[0][1].dropped == 12


def test_no_gap_when_log_never_overflowed():
    engine = _engine(report_log_limit=8)
    _run_rounds(engine, 8)
    reports, dropped = _drain(engine.stream_reports())
    assert dropped == 0
    assert len(reports) == 8


def test_task_filter_still_yields_gap_markers():
    engine = _engine(report_log_limit=3)
    _run_rounds(engine, 9)
    entries = list(engine.stream_reports(task="t"))
    assert entries[0] == (GAP_TASK, ReportGap(dropped=6))
    assert len(entries) == 4


def test_restarted_stream_reports_the_gap_again():
    engine = _engine(report_log_limit=4)
    _run_rounds(engine, 6)
    first_reports, first_dropped = _drain(engine.stream_reports())
    again_reports, again_dropped = _drain(engine.stream_reports())
    # Streams are independent cursors over the same retained window.
    assert first_dropped == again_dropped == 2
    assert len(first_reports) == len(again_reports) == 4


def test_mid_iteration_eviction_yields_exact_dropped_count():
    """Eviction racing a paused consumer: the marker counts exactly the
    entries that slid out from under the cursor."""
    engine = _engine(report_log_limit=4)
    _run_rounds(engine, 4)
    stream = engine.stream_reports()
    head = [next(stream), next(stream)]  # cursor at absolute index 2
    assert all(name == "t" for name, _ in head)
    # 6 more rounds: log now holds [6..10); indexes 2..6 are gone.
    _run_rounds(engine, 6)
    name, gap = next(stream)
    assert name == GAP_TASK
    assert gap == ReportGap(dropped=4)
    tail = list(stream)
    assert len(head) + gap.dropped + len(tail) == 10


def test_slow_consumer_racing_live_producer_accounts_every_report():
    """A producer thread churning rounds while a slow consumer drains one
    live stream: however the race interleaves, every yielded gap carries
    an exact positive count, the running ``seen + dropped`` total never
    exceeds production, and a full drain afterwards accounts for every
    one of the produced reports."""
    rounds_total = 40
    engine = _engine(report_log_limit=3)

    producer = threading.Thread(
        target=_run_rounds, args=(engine, rounds_total)
    )
    producer.start()

    seen, dropped = 0, 0
    for name, entry in engine.stream_reports():
        if name == GAP_TASK:
            assert entry.dropped > 0
            dropped += entry.dropped
        else:
            seen += 1
        # seen + dropped tracks a prefix of the execution log: it can
        # trail production but never overshoot it.
        assert seen + dropped <= rounds_total
        time.sleep(0.002)  # slow consumer: let eviction race the cursor
    producer.join(timeout=60)
    assert not producer.is_alive()

    # The raced stream must have hit at least one eviction gap (the log
    # holds 3 entries; the producer outran a 2ms/entry consumer).
    assert dropped > 0

    # A fresh full drain is exact over the whole history: the leading
    # gap counts everything evicted since the first report, and the
    # retained window supplies the rest.
    reports, total_dropped = _drain(engine.stream_reports())
    assert total_dropped + len(reports) == rounds_total
    assert len(reports) == 3
