"""Unit tests for the dynamic hidden database wrapper."""

from repro import HiddenDatabase
from repro.hiddendb.ranking import MeasureScore, RecencyScore


class TestRounds:
    def test_starts_at_round_one(self, small_schema):
        assert HiddenDatabase(small_schema).current_round == 1

    def test_advance_round(self, small_schema):
        db = HiddenDatabase(small_schema)
        assert db.advance_round() == 2
        assert db.current_round == 2


class TestMutations:
    def test_insert_assigns_tid_and_score(self, small_schema):
        db = HiddenDatabase(small_schema)
        a = db.insert([0, 1, 2], (5.0,))
        b = db.insert([1, 0, 0], (1.0,))
        assert a.tid != b.tid
        assert 0.0 <= a.score <= 1.0  # RandomScore default

    def test_insert_accepts_bytes(self, small_schema):
        db = HiddenDatabase(small_schema)
        t = db.insert(bytes([1, 2, 3]))
        assert t.values == bytes([1, 2, 3])

    def test_explicit_tid_advances_allocator(self, small_schema):
        db = HiddenDatabase(small_schema)
        db.insert([0, 0, 0], tid=10)
        assert db.insert([0, 0, 1]).tid == 11

    def test_delete(self, small_schema):
        db = HiddenDatabase(small_schema)
        t = db.insert([0, 0, 0])
        db.delete(t.tid)
        assert len(db) == 0

    def test_update_measures(self, small_schema):
        db = HiddenDatabase(small_schema)
        t = db.insert([0, 0, 0], (5.0,))
        updated = db.update_measures(t.tid, (7.0,))
        assert updated.measures == (7.0,)
        assert db.store.get(t.tid).measures == (7.0,)

    def test_bulk_load_counts(self, small_schema):
        from repro.hiddendb.tuples import make_tuple

        db = HiddenDatabase(small_schema)
        loaded = db.bulk_load(
            make_tuple(i, [0, 0, 0]) for i in range(5)
        )
        assert loaded == 5
        assert len(db) == 5


class TestRankingPolicies:
    def test_measure_score_descending(self, small_schema):
        db = HiddenDatabase(small_schema, ranking=MeasureScore("price"))
        cheap = db.insert([0, 0, 0], (1.0,))
        pricey = db.insert([0, 0, 1], (99.0,))
        assert pricey.score > cheap.score

    def test_measure_score_ascending(self, small_schema):
        db = HiddenDatabase(
            small_schema, ranking=MeasureScore("price", descending=False)
        )
        cheap = db.insert([0, 0, 0], (1.0,))
        pricey = db.insert([0, 0, 1], (99.0,))
        assert cheap.score > pricey.score

    def test_recency_score(self, small_schema):
        db = HiddenDatabase(small_schema, ranking=RecencyScore())
        first = db.insert([0, 0, 0])
        second = db.insert([0, 0, 1])
        assert second.score > first.score
