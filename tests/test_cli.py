"""Unit tests for the experiments CLI."""

from repro.experiments.cli import main


class TestList:
    def test_list_prints_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "fig21" in out
        assert "ablation_parent_check" in out


class TestRun:
    def test_unknown_figure(self, capsys):
        assert main(["run", "fig99"]) == 2

    def test_run_tiny_figure(self, capsys):
        code = main([
            "run", "fig02", "--scale", "0.01", "--trials", "1",
            "--rounds", "2", "--budget", "40",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "RESTART" in out

    def test_out_file(self, tmp_path, capsys):
        target = tmp_path / "results.txt"
        code = main([
            "run", "fig02", "--scale", "0.01", "--trials", "1",
            "--rounds", "2", "--budget", "40", "--out", str(target),
        ])
        assert code == 0
        assert "fig02" in target.read_text()
