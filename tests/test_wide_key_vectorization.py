"""Wide-key (>64-bit schema) vectorization parity tests.

Two hot spots of wide-schema workloads (fig12's m=50 keys span ~157 bits)
got vectorized twins in PR 5; these tests pin them to their scalar oracles:

* :func:`repro.hiddendb.backends.mod_many` — the chunked int64-limb modulo
  behind ``PrefixIndex.range_tids`` (and sharded partitioning) must equal
  the per-key ``%`` loop for any modulus class (power of two, small,
  48-bit Horner, and the big-modulus double-and-add path covering the
  rest of ``[2**48, 2**63)``).
* The packed engine's wide-run rank probe (top-63-bit ``searchsorted``
  window + exact bisect) must equal a plain ``bisect_left`` over the live
  key list.
"""

from __future__ import annotations

import random
from bisect import bisect_left

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Attribute, Schema
from repro.hiddendb import PackedArrayBackend, mod_many, shift_many
from repro.hiddendb.store import PrefixIndex
from repro.hiddendb.tuples import make_tuple


# ----------------------------------------------------------------------
# mod_many: the chunked limb reduction vs the per-key loop
# ----------------------------------------------------------------------
MODULI = (
    1,
    2,
    7,
    2**16,
    2**31 - 1,        # largest "small" modulus (direct product path)
    2**31 + 11,       # forces the 16-bit-digit Horner multiply
    2**48,            # the default tid_span (power-of-two mask path)
    2**48 - 59,       # largest Horner-capable modulus class
    2**50 + 1,        # beyond the Horner bound: double-and-add path
    2**55 - 55,       # mid-band non-power-of-two (double-and-add)
    2**62 + 2**61 + 1,  # wide bit pattern high in the band
    2**63 - 25,       # largest supported non-power-of-two modulus
    12345678901234,
)


@pytest.mark.parametrize("modulus", MODULI)
def test_mod_many_matches_scalar_loop(modulus):
    rng = random.Random(modulus % 997)
    keys = [rng.randrange(2**200) for _ in range(500)]
    keys += [0, 1, modulus, modulus - 1 if modulus > 1 else 0, 2**63, 2**64]
    assert mod_many(keys, modulus).tolist() == [k % modulus for k in keys]


def test_mod_many_int64_arrays_and_empty_input():
    arr = np.array([0, 5, 17, 2**40], dtype=np.int64)
    assert mod_many(arr, 7).tolist() == [0, 5, 3, (2**40) % 7]
    assert mod_many([], 97).tolist() == []
    with pytest.raises(ValueError):
        mod_many([1], 0)


def test_mod_many_modulus_bound():
    # Remainders are int64, so moduli past 2**63 are rejected up front
    # instead of overflowing the output vector.
    with pytest.raises(ValueError):
        mod_many([5], 2**63 + 1)
    with pytest.raises(ValueError):
        mod_many([2**100], 2**70)
    # 2**63 itself is a power of two whose remainders still fit.
    keys = [2**64 + 3, 7, 2**63 - 1]
    assert mod_many(keys, 2**63).tolist() == [k % 2**63 for k in keys]
    arr = np.array([-1, 5, 2**62], dtype=np.int64)
    assert mod_many(arr, 2**63).tolist() == [
        int(v) % 2**63 for v in arr
    ]


def test_mod_many_rejects_negative_keys_on_the_limb_path():
    # Regression: a negative key used to hang the limb decomposition
    # (arithmetic shift converges to -1, never 0).
    with pytest.raises(ValueError):
        mod_many([-1, 5], 7)
    # The power-of-two mask path matches % for negatives, like int64.
    assert mod_many([-1, 5], 8).tolist() == [-1 % 8, 5 % 8]
    assert mod_many(np.array([-1, 5], dtype=np.int64), 7).tolist() == [
        -1 % 7, 5 % 7,
    ]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2**250), max_size=50),
    st.integers(min_value=1, max_value=2**52),
)
def test_mod_many_property_parity(keys, modulus):
    assert mod_many(keys, modulus).tolist() == [k % modulus for k in keys]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2**250), max_size=50),
    st.integers(min_value=2**48, max_value=2**63 - 1),
)
def test_mod_many_big_modulus_band_parity(keys, modulus):
    # Regression: non-power-of-two moduli in [2**48, 2**63) used to drop
    # silently to the per-key scalar loop; the exact double-and-add
    # reduction now covers the whole band and must match % bit for bit.
    assert mod_many(keys, modulus).tolist() == [k % modulus for k in keys]


def test_mod_many_chunking_boundary():
    """Inputs longer than one chunk stay exact across the seams."""
    modulus = 2**31 + 11
    keys = [(i * 2**97 + i) for i in range(10000)]
    assert mod_many(keys, modulus).tolist() == [k % modulus for k in keys]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2**200), max_size=40),
    st.integers(min_value=0, max_value=140),
)
def test_shift_many_matches_scalar(keys, shift):
    # Keep results in int64 range, as the probe-array contract requires.
    shift = max(shift, max(keys, default=0).bit_length() - 62)
    shift = max(shift, 0)
    assert shift_many(keys, shift).tolist() == [k >> shift for k in keys]


# ----------------------------------------------------------------------
# Wide-run rank probe vs the plain bisect oracle
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=2**100)),
        min_size=1,
        max_size=200,
    ),
    st.lists(st.integers(min_value=0, max_value=2**100), max_size=20),
)
def test_wide_rank_probe_matches_bisect(operations, probes):
    engine = PackedArrayBackend(key_bound=2**100, min_buffer=8)
    reference: list[int] = []
    for is_remove, value in operations:
        if is_remove and value in reference:
            reference.remove(value)
            engine.remove(value)
        else:
            reference.append(value)
            engine.add(value)
    reference.sort()
    engine.check_invariants()
    for probe in probes + reference[:10]:
        assert engine.rank(probe) == bisect_left(reference, probe)


def test_wide_rank_probe_array_built_after_compaction():
    keys = PackedArrayBackend(
        range(0, 10000, 3), key_bound=2**100, min_buffer=8
    )
    # Construction sorts into the run directly, so the probe array exists.
    assert keys._run_hi is not None
    assert keys.rank(9000) == len(range(0, 9000, 3))
    # Out-of-universe probes bypass the probe window but stay exact.
    assert keys.rank(2**101) == len(keys)
    assert keys.rank(-5) == 0


def test_small_wide_runs_skip_the_probe_array():
    keys = PackedArrayBackend([2**70, 2**71], key_bound=2**80)
    assert keys._run_hi is None  # below the build threshold
    assert keys.rank(2**70 + 1) == 1


# ----------------------------------------------------------------------
# range_tids on a wide schema: vectorized twin of iter_tids
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["blocked", "packed", "sharded"])
def test_range_tids_parity_on_wide_schema(backend):
    schema = Schema([Attribute(f"A{i}", 2 + i % 5) for i in range(40)])
    index = PrefixIndex(
        schema,
        tuple(range(40)),
        backend=backend,
        backend_options={"shards": 3} if backend == "sharded" else None,
    )
    assert not index.codec.fits_int64  # the wide path is what we test
    rng = random.Random(3)
    for tid in range(600):
        values = bytes(rng.randrange(schema.attributes[a].size)
                       for a in range(40))
        index.add(make_tuple(tid, values, (), 0.5))
    for prefix in ([], [0], [1], [0, 1], [1, 2, 3]):
        vectorized = index.range_tids(prefix)
        assert vectorized.dtype == np.int64
        assert vectorized.tolist() == list(index.iter_tids(prefix))
