"""Unit tests for the tuple store (heap + indexes + event stream)."""

import pytest

from repro import SchemaError
from repro.hiddendb.store import TupleStore
from repro.hiddendb.tuples import make_tuple


@pytest.fixture
def store(small_schema):
    return TupleStore(small_schema)


class TestHeap:
    def test_insert_and_get(self, store):
        t = make_tuple(1, [0, 1, 2], (5.0,))
        store.insert(t)
        assert len(store) == 1
        assert store.get(1) is t
        assert 1 in store

    def test_duplicate_tid_rejected(self, store):
        store.insert(make_tuple(1, [0, 0, 0]))
        with pytest.raises(SchemaError):
            store.insert(make_tuple(1, [1, 1, 1]))

    def test_delete_returns_tuple(self, store):
        t = make_tuple(2, [1, 0, 0])
        store.insert(t)
        assert store.delete(2) is t
        assert 2 not in store

    def test_delete_missing_raises(self, store):
        with pytest.raises(KeyError):
            store.delete(99)

    def test_tuples_iteration(self, store):
        for tid in range(5):
            store.insert(make_tuple(tid, [0, 0, 0]))
        assert {t.tid for t in store.tuples()} == set(range(5))


class TestIndexes:
    def test_ensure_index_backfills(self, store):
        store.insert(make_tuple(0, [1, 2, 3]))
        index = store.ensure_index((0, 1, 2))
        assert index.count_prefix([1]) == 1

    def test_indexes_track_mutations(self, store):
        index = store.ensure_index((0, 1, 2))
        store.insert(make_tuple(0, [1, 0, 0]))
        store.insert(make_tuple(1, [1, 1, 0]))
        assert index.count_prefix([1]) == 2
        store.delete(0)
        assert index.count_prefix([1]) == 1

    def test_multiple_orders_stay_consistent(self, store):
        first = store.ensure_index((0, 1, 2))
        second = store.ensure_index((2, 1, 0))
        store.insert(make_tuple(0, [1, 2, 3]))
        assert first.count_prefix([1]) == 1
        assert second.count_prefix([3]) == 1

    def test_ensure_index_is_idempotent(self, store):
        assert store.ensure_index((0, 1, 2)) is store.ensure_index((0, 1, 2))


class TestReplace:
    def test_replace_measures_only(self, store):
        store.insert(make_tuple(0, [1, 1, 1], (5.0,)))
        store.replace(make_tuple(0, [1, 1, 1], (9.0,)))
        assert store.get(0).measures == (9.0,)
        assert len(store) == 1

    def test_replace_with_value_change_moves_indexes(self, store):
        index = store.ensure_index((0, 1, 2))
        store.insert(make_tuple(0, [0, 0, 0], (1.0,)))
        store.replace(make_tuple(0, [1, 0, 0], (1.0,)))
        assert index.count_prefix([0]) == 0
        assert index.count_prefix([1]) == 1


class TestEvents:
    def test_listener_sees_inserts_and_deletes(self, store):
        events = []
        store.subscribe(lambda event, t: events.append((event, t.tid)))
        store.insert(make_tuple(0, [0, 0, 0]))
        store.delete(0)
        assert events == [("insert", 0), ("delete", 0)]

    def test_replace_emits_delete_then_insert(self, store):
        events = []
        store.insert(make_tuple(0, [0, 0, 0], (1.0,)))
        store.subscribe(lambda event, t: events.append((event, t.measures[0])))
        store.replace(make_tuple(0, [0, 0, 0], (2.0,)))
        assert events == [("delete", 1.0), ("insert", 2.0)]


class TestRandomTids:
    def test_sample_size(self, small_db):
        import random

        sample = small_db.store.random_tids(random.Random(0), 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_sample_all_when_count_exceeds(self, small_db):
        import random

        sample = small_db.store.random_tids(random.Random(0), 10_000)
        assert len(sample) == len(small_db)
