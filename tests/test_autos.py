"""Unit tests for the Yahoo! Autos surrogate."""

from repro.data import (
    AUTOS_DOMAIN_SIZES,
    AUTOS_TOTAL_TUPLES,
    autos_schema,
    autos_snapshot,
)


class TestSchema:
    def test_published_shape(self):
        schema = autos_schema()
        assert schema.num_attributes == 38
        assert min(schema.domain_sizes) == 2
        assert max(schema.domain_sizes) == 38
        assert schema.domain_sizes == AUTOS_DOMAIN_SIZES

    def test_measures(self):
        assert autos_schema().measures == ("price", "mileage")

    def test_published_total(self):
        assert AUTOS_TOTAL_TUPLES == 188_917


class TestSnapshot:
    def test_scaled_snapshot(self):
        schema, payloads = autos_snapshot(total=500, seed=0)
        assert len(payloads) == 500
        values = {v for v, _ in payloads}
        assert len(values) == 500  # all distinct

    def test_payloads_valid(self):
        schema, payloads = autos_snapshot(total=100, seed=1)
        for values, measures in payloads:
            schema.validate_values(values)
            price, mileage = measures
            assert price > 0
            assert mileage >= 0

    def test_deterministic_by_seed(self):
        _, a = autos_snapshot(total=50, seed=5)
        _, b = autos_snapshot(total=50, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        _, a = autos_snapshot(total=50, seed=5)
        _, b = autos_snapshot(total=50, seed=6)
        assert a != b

    def test_prices_plausibly_lognormal(self):
        _, payloads = autos_snapshot(total=2000, seed=2)
        prices = sorted(p for _, (p, _) in payloads)
        median = prices[len(prices) // 2]
        assert 5_000 < median < 40_000
