"""Property tests for the vectorized mixed-radix key codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.hiddendb.store import KeyCodec


def _random_codec_inputs(draw, max_attrs, max_radix, tid_span):
    num_attrs = draw(st.integers(min_value=1, max_value=max_attrs))
    radices = draw(
        st.lists(
            st.integers(min_value=2, max_value=max_radix),
            min_size=num_attrs, max_size=num_attrs,
        )
    )
    order = draw(st.permutations(list(range(num_attrs))))
    n = draw(st.integers(min_value=0, max_value=40))
    rows = [
        [draw(st.integers(min_value=0, max_value=r - 1)) for r in radices]
        for _ in range(n)
    ]
    tids = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=tid_span - 1),
                min_size=n, max_size=n, unique=True,
            )
        )
    )
    return radices, order, rows, tids


@st.composite
def narrow_cases(draw):
    # Small radices and a small tid span: the whole universe fits int64.
    return _random_codec_inputs(draw, max_attrs=6, max_radix=8, tid_span=2**20)


@st.composite
def wide_cases(draw):
    # Forty-plus digits blow far past 64 bits -> the limb fallback path.
    return _random_codec_inputs(
        draw, max_attrs=48, max_radix=9, tid_span=2**48
    )


class TestEncodeMany:
    @settings(max_examples=60, deadline=None)
    @given(narrow_cases())
    def test_int64_path_matches_scalar(self, case):
        radices, order, rows, tids = case
        codec = KeyCodec(
            [radices[a] for a in order], order, tid_span=2**20
        )
        values = np.array(rows, dtype=np.uint8).reshape(len(rows), len(radices))
        keys = codec.encode_many(values, np.array(tids, dtype=np.int64))
        assert keys.dtype == np.int64
        expected = [
            codec.encode(bytes(row), tid) for row, tid in zip(rows, tids)
        ]
        assert keys.tolist() == expected

    @settings(max_examples=40, deadline=None)
    @given(wide_cases())
    def test_wide_fallback_matches_scalar(self, case):
        radices, order, rows, tids = case
        codec = KeyCodec(
            [radices[a] for a in order], order, tid_span=2**48
        )
        values = np.array(rows, dtype=np.uint8).reshape(len(rows), len(radices))
        keys = codec.encode_many(values, np.array(tids, dtype=np.int64))
        expected = [
            codec.encode(bytes(row), tid) for row, tid in zip(rows, tids)
        ]
        assert list(keys) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.one_of(narrow_cases(), wide_cases()))
    def test_round_trip_decode(self, case):
        radices, order, rows, tids = case
        tid_span = 2**48
        codec = KeyCodec([radices[a] for a in order], order, tid_span)
        values = np.array(rows, dtype=np.uint8).reshape(len(rows), len(radices))
        tid_vec = np.array(tids, dtype=np.int64) % tid_span
        keys = codec.encode_many(values, tid_vec)
        decoded_values, decoded_tids = codec.decode_many(keys)
        assert np.array_equal(decoded_values, values)
        assert decoded_tids.tolist() == tid_vec.tolist()


class TestEdgeCases:
    def test_empty_batch_encodes_to_empty_int64(self):
        codec = KeyCodec((3, 5), (0, 1), tid_span=100)
        keys = codec.encode_many(
            np.empty((0, 2), dtype=np.uint8), np.empty(0, dtype=np.int64)
        )
        assert keys.dtype == np.int64 and len(keys) == 0
        values, tids = codec.decode_many(keys)
        assert values.shape == (0, 2) and len(tids) == 0

    def test_empty_batch_on_wide_codec(self):
        codec = KeyCodec((200,) * 12, tuple(range(12)), tid_span=2**48)
        assert not codec.fits_int64
        keys = codec.encode_many(
            np.empty((0, 12), dtype=np.uint8), np.empty(0, dtype=np.int64)
        )
        assert len(keys) == 0

    def test_fits_int64_boundary(self):
        # 2**14 values * 2**48 tid span = exactly 2**62 keys: fits.
        assert KeyCodec((2,) * 14, tuple(range(14)), 2**48).fits_int64
        # One more doubling pushes the bound to 2**63: still fits (keys
        # are < bound), but beyond that the wide path takes over.
        assert KeyCodec((2,) * 15, tuple(range(15)), 2**48).fits_int64
        assert not KeyCodec((2,) * 16, tuple(range(16)), 2**48).fits_int64

    def test_wide_path_returns_python_ints(self):
        codec = KeyCodec((7,) * 50, tuple(range(50)), tid_span=2**48)
        values = np.full((3, 50), 6, dtype=np.uint8)
        keys = codec.encode_many(values, np.array([0, 1, 2]))
        assert keys.dtype == object
        assert all(isinstance(k, int) for k in keys.tolist())
        assert keys[2] - keys[1] == 1  # tid is the least significant digit

    def test_length_mismatch_rejected(self):
        codec = KeyCodec((3, 5), (0, 1), tid_span=100)
        with pytest.raises(SchemaError):
            codec.encode_many(
                np.zeros((2, 2), dtype=np.uint8), np.zeros(3, dtype=np.int64)
            )

    def test_attr_order_permutes_digits(self):
        codec = KeyCodec((5, 3), (1, 0), tid_span=10)
        # order (1, 0): attribute 1 is the most significant digit.
        key = codec.encode(bytes([2, 4]), tid=7)
        assert key == ((4 * 3) + 2) * 10 + 7
        keys = codec.encode_many(
            np.array([[2, 4]], dtype=np.uint8), np.array([7])
        )
        assert keys.tolist() == [key]
