"""The cost model: score candidate engine configs against a workload.

Everything here is a *pure function* of its inputs — no wall clock, no
randomness, no hidden process state — so the controller's decision
sequence replays exactly from a recorded profile stream (the determinism
contract tested in ``tests/test_tuning.py``).

Inputs
------
* A :class:`WorkloadProfile` — the observed store-size/churn/query shape
  of a window of rounds, gathered by the engine from its own counters
  plus a windowed :meth:`repro.obs.MetricsRegistry.delta` snapshot.
* Per-backend **cost signatures**
  (:data:`repro.hiddendb.backends.BACKEND_COST_SIGNATURES`) — unitless
  ratios describing how each storage engine's probe, bulk-maintenance
  and fixed per-round costs relate.
* **Priors** derived from ``benchmarks/baselines.json``
  (:func:`priors_from_baselines`) — measured relative wall times of the
  shipped backends on the fig-12 workload, used to scale the signatures
  toward reality.  A missing or partial baselines file falls back to
  :data:`DEFAULT_PRIORS`.

The scored quantity is an abstract *probe-equivalent cost per round*:

``queries x probe x log2(n) / round_workers``  (rank probes are
logarithmic in the run length, and independent tenants fan out across
round workers) ``+ churn x bulk_per_row x (1 + delete_penalty x
delete_share) / maintenance_workers`` (bulk merges are linear in churned
rows, delete-heavy mixes cost extra on layouts that compact, and only
the sharded engine divides the work across workers) ``+ round_fixed``
(per-shard dispatch overhead for the sharded engine, flat fsync overhead
for the mapped engine).

Absolute values are meaningless; only the *ordering* of candidates
matters, plus the ratio the controller's hysteresis threshold is applied
to.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from typing import Mapping, Sequence

from ..errors import ExperimentError
from ..hiddendb.backends import (
    BACKEND_COST_SIGNATURES,
    available_backends,
)

#: Fallback per-backend priors (relative wall time, min-normalized to
#: 1.0) used when no baselines file is available.  Ordering mirrors the
#: shipped ``benchmarks/baselines.json``.
DEFAULT_PRIORS: dict[str, float] = {
    "blocked": 1.0,
    "packed": 0.95,
    "sharded": 1.2,
    "mapped": 2.5,
}

#: Baselines.json key pairs whose walls measure the *same* workload on
#: two backends (raw fig-12 loop for blocked/packed; engine-at-scale for
#: sharded/mapped).  Only within-pair ratios are comparable — the pairs
#: run different harnesses, so their absolute walls must never be
#: compared against each other.
_BASELINE_RATIO_PAIRS: tuple[tuple[str, str, str, str], ...] = (
    ("packed", "fig12_packed", "blocked", "fig12_blocked"),
    ("mapped", "mapped_fig12", "sharded", "sharded_fig12"),
)


def priors_from_baselines(
    source: str | Mapping | None = None,
) -> dict[str, float]:
    """Per-backend relative cost priors from a baselines payload.

    ``source`` is a path to a ``baselines.json``, an already-parsed
    mapping, or ``None`` to probe the repository's
    ``benchmarks/baselines.json`` relative to the current directory.

    Starts from :data:`DEFAULT_PRIORS` and refines it with measured
    *within-pair* wall ratios (:data:`_BASELINE_RATIO_PAIRS`): e.g. the
    packed prior becomes the blocked prior scaled by the measured
    packed/blocked wall ratio.  Ratios are clamped to a sane band so one
    stale outlier baseline nudges rather than dominates; pairs without
    both walls keep the defaults.  Deterministic: same payload, same
    priors.
    """
    payload: Mapping | None = None
    if isinstance(source, Mapping):
        payload = source
    else:
        path = source
        if path is None:
            candidate = os.path.join("benchmarks", "baselines.json")
            path = candidate if os.path.exists(candidate) else None
        if path is not None:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                payload = None
    priors = dict(DEFAULT_PRIORS)
    if not payload:
        return priors

    def _wall(key: str) -> float | None:
        entry = payload.get(key)
        if isinstance(entry, Mapping):
            wall = entry.get("wall_seconds")
            if isinstance(wall, (int, float)) and wall > 0:
                return float(wall)
        return None

    for backend, key, anchor, anchor_key in _BASELINE_RATIO_PAIRS:
        wall, anchor_wall = _wall(key), _wall(anchor_key)
        if wall is None or anchor_wall is None:
            continue
        # Clamp: baselines are coarse (runner speed, harness drift), so
        # a measured ratio nudges the defaults rather than dominating.
        ratio = max(0.5, min(4.0, wall / anchor_wall))
        priors[backend] = priors.get(anchor, 1.0) * ratio
    return priors


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """The observed workload shape of a window of rounds.

    All fields are plain numbers so a profile can be recorded, shipped as
    JSON, and replayed through the model bit-identically.

    ``store_size`` is the live tuple count at observation time;
    ``churn_per_round`` the average mutated rows (inserts + deletes) per
    round in the window; ``delete_share`` the deleted fraction of that
    churn; ``queries_per_round`` the average top-k queries the tenants
    spent per round; ``tenants`` the active task count; ``rounds`` how
    many rounds the window covered (0 = cold start, priors only).
    """

    store_size: int = 0
    churn_per_round: float = 0.0
    delete_share: float = 0.0
    queries_per_round: float = 0.0
    tenants: int = 0
    rounds: int = 0

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "WorkloadProfile":
        known = {field.name for field in dataclasses.fields(cls)}
        return cls(**{
            key: value for key, value in payload.items() if key in known
        })


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One scoreable engine configuration."""

    backend: str
    shards: int | None = None
    parallelism: int = 1

    def backend_options(self) -> dict:
        """The factory options this candidate implies (mirrors
        :meth:`repro.api.EngineConfig.backend_factory_options`)."""
        if self.backend != "sharded":
            return {}
        options: dict = {}
        if self.shards is not None:
            options["shards"] = self.shards
        if self.parallelism > 1:
            options["workers"] = self.parallelism
        return options

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class CostModel:
    """Scores :class:`Candidate` configs for a :class:`WorkloadProfile`.

    ``priors`` maps backend name to a relative wall-time factor (see
    :func:`priors_from_baselines`); ``signatures`` defaults to the
    registry-backed :data:`BACKEND_COST_SIGNATURES`.  Instances are
    immutable in practice — nothing here mutates after construction — so
    one model can serve every decision of a controller.
    """

    def __init__(
        self,
        priors: Mapping[str, float] | None = None,
        signatures: Mapping[str, Mapping] | None = None,
    ):
        self.priors = dict(priors) if priors is not None else (
            priors_from_baselines()
        )
        self.signatures = {
            name: dict(signature)
            for name, signature in (
                signatures if signatures is not None
                else BACKEND_COST_SIGNATURES
            ).items()
        }

    def score(self, candidate: Candidate, profile: WorkloadProfile) -> float:
        """Predicted probe-equivalent cost per round (lower is better)."""
        signature = self.signatures.get(candidate.backend)
        if signature is None:
            raise ExperimentError(
                f"no cost signature for backend {candidate.backend!r}; "
                f"available: {', '.join(sorted(self.signatures))}"
            )
        prior = float(self.priors.get(candidate.backend, 1.0))
        n = max(2, profile.store_size)
        depth = math.log2(n)
        queries = max(profile.queries_per_round, 1.0)
        # Independent tenants fan out across round workers; one tenant
        # gains nothing from extra workers.
        round_workers = max(1, min(candidate.parallelism,
                                   max(1, profile.tenants)))
        query_cost = queries * signature["probe"] * prior * depth
        query_cost /= round_workers
        churn = profile.churn_per_round
        maintenance = churn * signature["bulk_per_row"] * prior
        shards = candidate.shards or 1
        if signature.get("parallel_maintenance"):
            # The sharded engine splits bulk merges across its shards and
            # dispatches them on up to ``workers`` threads.
            maintenance /= max(1, min(shards, candidate.parallelism))
            fixed = signature["round_fixed"] * shards
        else:
            fixed = signature["round_fixed"]
        # Deletions dirty the dead-buffer path (tombstone subtract on the
        # next merge); dense layouts additionally compact, so the penalty
        # is per-backend.
        maintenance *= (
            1.0 + signature.get("delete_penalty", 0.5) * profile.delete_share
        )
        return query_cost + maintenance + fixed

    def rank(
        self,
        candidates: Sequence[Candidate],
        profile: WorkloadProfile,
    ) -> list[tuple[float, Candidate]]:
        """All candidates scored and sorted, best (lowest cost) first.

        Ties break on the candidate's deterministic sort key (backend
        name, shard count, parallelism) — never on input order — so the
        ranking is a pure function of the candidate *set*.
        """
        scored = [
            (self.score(candidate, profile), candidate)
            for candidate in candidates
        ]
        scored.sort(key=lambda pair: (
            pair[0], pair[1].backend, pair[1].shards or 0,
            pair[1].parallelism,
        ))
        return scored


def default_candidates(
    cpu_budget: int,
    pinned: Mapping | None = None,
) -> list[Candidate]:
    """The candidate grid the controller searches.

    Backends come from the registry intersected with the signature table
    (an extension backend without a signature cannot be scored, so it is
    only ever *chosen* by pinning it).  Shard counts are powers of two up
    to ``cpu_budget``; parallelism is 1 or the cpu budget.  ``pinned``
    maps field name (``backend`` / ``shards`` / ``parallelism``) to a
    required value — the grid then only contains matching candidates, so
    an explicitly configured knob is never overridden.
    """
    pinned = dict(pinned or {})
    cpu_budget = max(1, int(cpu_budget))
    backends = [
        name for name in available_backends()
        if name in BACKEND_COST_SIGNATURES
    ]
    if "backend" in pinned:
        backends = [name for name in backends if name == pinned["backend"]]
    if pinned.get("shards") is not None:
        # A pinned shard count only makes sense on the sharded engine
        # (EngineConfig validates the same way).
        backends = [name for name in backends if name == "sharded"]
    shard_counts = [2]
    while shard_counts[-1] * 2 <= max(2, cpu_budget):
        shard_counts.append(shard_counts[-1] * 2)
    if "shards" in pinned and pinned["shards"] is not None:
        shard_counts = [pinned["shards"]]
    widths = sorted({1, cpu_budget})
    if "parallelism" in pinned and pinned["parallelism"] is not None:
        widths = [pinned["parallelism"]]
    candidates: list[Candidate] = []
    for backend in backends:
        for width in widths:
            if backend == "sharded":
                for shards in shard_counts:
                    candidates.append(Candidate(backend, shards, width))
            else:
                candidates.append(Candidate(backend, None, width))
    return candidates
