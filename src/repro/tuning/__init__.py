"""``repro.tuning`` — cost-based self-tuning of the engine's knobs.

The reproduction exposes four storage backends x two data planes x
shard/worker/overlap knobs, all hand-picked until now.  This package
closes the loop (ROADMAP open item 5): a :class:`CostModel` scores
candidate configs against the observed store-size/churn/query profile
(per-backend cost signatures from :mod:`repro.hiddendb.backends`, priors
from ``benchmarks/baselines.json``, live rates from the
:mod:`repro.obs` windowed delta snapshots), and a
:class:`TuningController` applies decisions at the engine's safe seams —
initial config at construction, online backend/shard migration at the
epoch-publish flip (:meth:`repro.hiddendb.store.TupleStore
.migrate_backend`: an O(n) rebuild that swaps in atomically, never
stop-the-world, never changes estimates).

Enable with ``EngineConfig(auto=True)`` (or ``repro-serve --auto``);
opt out per knob by pinning it explicitly, or entirely with
``auto=False``.  See ``docs/tuning.md``.
"""

from .controller import (
    ACTION_INITIAL,
    ACTION_KEEP,
    ACTION_MIGRATE,
    TuningController,
    TuningDecision,
)
from .model import (
    Candidate,
    CostModel,
    DEFAULT_PRIORS,
    WorkloadProfile,
    default_candidates,
    priors_from_baselines,
)

__all__ = [
    "ACTION_INITIAL",
    "ACTION_KEEP",
    "ACTION_MIGRATE",
    "Candidate",
    "CostModel",
    "DEFAULT_PRIORS",
    "TuningController",
    "TuningDecision",
    "WorkloadProfile",
    "default_candidates",
    "priors_from_baselines",
]
