"""The adaptive controller: when to act on what the cost model says.

The controller is the *policy* half of ``repro.tuning`` (the model is
the scoring half).  It owns three safeguards that keep auto-tuning from
thrashing a live engine:

* **Hysteresis** — a migration is proposed only when the best candidate
  beats the *current* config's predicted cost by at least
  ``improvement_threshold`` (default 20%).  Near-ties keep the current
  config: a migration is an O(n) rebuild, so it has to pay for itself.
* **Cooldown** — after a migration, ``cooldown_rounds`` further
  observations must pass before the next one.  A freshly migrated store
  has not produced a representative window yet.
* **Warmup** — no migration before ``warmup_rounds`` observed rounds;
  the cold-start profile is priors-only and should not trigger churn.

Decisions are deterministic: the controller is a pure fold over the
profile stream (same profiles + same priors + same pinned fields ⇒ same
decision sequence), which is what makes the replay tests possible.  The
*application* of a decision — actually rebuilding indexes — is the
engine's job, at the epoch-publish seam (see
:meth:`repro.api.Engine.advance_round`).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Mapping, Sequence

from ..obs import OBS
from .model import Candidate, CostModel, WorkloadProfile, default_candidates

#: Decision actions, in the order they can occur.
ACTION_INITIAL = "initial"
ACTION_KEEP = "keep"
ACTION_MIGRATE = "migrate"

# Import-time observability handles (see repro.obs).
_DECISIONS = {
    action: OBS.counter("repro_tuning_decisions_total", {"action": action})
    for action in (ACTION_INITIAL, ACTION_KEEP, ACTION_MIGRATE)
}


@dataclasses.dataclass(frozen=True)
class TuningDecision:
    """One controller decision, with enough context to audit it."""

    action: str
    choice: Candidate
    score: float
    current_score: float | None
    profile: WorkloadProfile
    reason: str

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "choice": self.choice.to_dict(),
            "score": self.score,
            "current_score": self.current_score,
            "profile": self.profile.to_dict(),
            "reason": self.reason,
        }


class TuningController:
    """Folds a stream of workload profiles into config decisions.

    ``pinned`` maps config field names (``backend`` / ``shards`` /
    ``parallelism``) to values the user fixed explicitly — the
    controller never proposes a candidate that contradicts a pin, which
    is the documented opt-out (pin every field, or set ``auto=False``).
    ``cpu_budget`` bounds shard counts and worker widths; it defaults to
    the ``REPRO_TUNING_CPUS`` environment variable, then the host's cpu
    count — tests and benchmarks pin it for determinism across machines.
    """

    def __init__(
        self,
        model: CostModel | None = None,
        *,
        pinned: Mapping | None = None,
        cpu_budget: int | None = None,
        improvement_threshold: float = 0.2,
        cooldown_rounds: int = 2,
        warmup_rounds: int = 1,
    ):
        self.model = model if model is not None else CostModel()
        self.pinned = dict(pinned or {})
        if cpu_budget is None:
            env = os.environ.get("REPRO_TUNING_CPUS", "").strip()
            if env.isdigit() and int(env) > 0:
                cpu_budget = int(env)
            else:
                cpu_budget = os.cpu_count() or 1
        self.cpu_budget = max(1, int(cpu_budget))
        self.improvement_threshold = float(improvement_threshold)
        self.cooldown_rounds = int(cooldown_rounds)
        self.warmup_rounds = int(warmup_rounds)
        self.current: Candidate | None = None
        self.decisions: list[TuningDecision] = []
        self._cooldown = 0
        self._observed_rounds = 0

    def _candidates(self) -> list[Candidate]:
        return default_candidates(self.cpu_budget, self.pinned)

    def _record(self, decision: TuningDecision) -> TuningDecision:
        self.decisions.append(decision)
        self.current = decision.choice
        if OBS.enabled:
            _DECISIONS[decision.action].inc()
        return decision

    def initial_decision(
        self, profile: WorkloadProfile | None = None
    ) -> TuningDecision:
        """Pick the construction-time config (priors-only when cold)."""
        profile = profile if profile is not None else WorkloadProfile()
        ranked = self.model.rank(self._candidates(), profile)
        score, choice = ranked[0]
        return self._record(TuningDecision(
            action=ACTION_INITIAL,
            choice=choice,
            score=score,
            current_score=None,
            profile=profile,
            reason=(
                f"best of {len(ranked)} candidates on the "
                f"{'cold-start' if profile.rounds == 0 else 'observed'} "
                f"profile"
            ),
        ))

    def observe(self, profile: WorkloadProfile) -> TuningDecision:
        """Score the observed window; returns keep or migrate.

        The caller applies a ``migrate`` decision at its safe seam (the
        engine does so inside ``advance_round``, under the write lock,
        right after the epoch publish flip).
        """
        if self.current is None:
            return self.initial_decision(profile)
        self._observed_rounds += max(0, profile.rounds)
        ranked = self.model.rank(self._candidates(), profile)
        best_score, best = ranked[0]
        current_score = self.model.score(self.current, profile)
        keep_reason: str | None = None
        if best == self.current:
            keep_reason = "current config is already the best candidate"
        elif self._observed_rounds < self.warmup_rounds:
            keep_reason = (
                f"warmup: {self._observed_rounds}/{self.warmup_rounds} "
                f"rounds observed"
            )
        elif self._cooldown > 0:
            self._cooldown -= 1
            keep_reason = (
                f"cooldown: {self._cooldown + 1} observation(s) since "
                f"last migration"
            )
        elif best_score > current_score * (1.0 - self.improvement_threshold):
            keep_reason = (
                f"hysteresis: best candidate improves "
                f"{1.0 - best_score / current_score:.0%}, below the "
                f"{self.improvement_threshold:.0%} threshold"
            )
        if keep_reason is not None:
            return self._record(TuningDecision(
                action=ACTION_KEEP,
                choice=self.current,
                score=current_score,
                current_score=current_score,
                profile=profile,
                reason=keep_reason,
            ))
        self._cooldown = self.cooldown_rounds
        return self._record(TuningDecision(
            action=ACTION_MIGRATE,
            choice=best,
            score=best_score,
            current_score=current_score,
            profile=profile,
            reason=(
                f"predicted {1.0 - best_score / current_score:.0%} "
                f"improvement over the current config"
            ),
        ))

    def replay(
        self, profiles: Sequence[WorkloadProfile]
    ) -> list[TuningDecision]:
        """Fold a recorded profile stream through a fresh decision
        sequence (initial decision first if none was made yet)."""
        return [self.observe(profile) for profile in profiles]

    def report(self) -> dict:
        """A JSON-safe audit of every decision so far."""
        return {
            "current": self.current.to_dict() if self.current else None,
            "pinned": dict(self.pinned),
            "cpu_budget": self.cpu_budget,
            "improvement_threshold": self.improvement_threshold,
            "cooldown_rounds": self.cooldown_rounds,
            "warmup_rounds": self.warmup_rounds,
            "priors": dict(self.model.priors),
            "decisions": [
                decision.to_dict() for decision in self.decisions
            ],
        }
