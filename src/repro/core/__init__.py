"""The paper's contribution: drill-down machinery and the three estimators."""

from .aggregates import (
    AggregateSpec,
    RatioSpec,
    RunningAverageSpec,
    SizeChangeSpec,
    avg_measure,
    count_all,
    count_where,
    proportion_where,
    running_average,
    size_change,
    sum_measure,
)
from .allocation import GroupParams, combined_variance, integer_allocation, waterfill
from .drilldown import DrillOutcome, drill_from_root, reissue_update
from .estimators import (
    ESTIMATOR_CLASSES,
    EstimatorBase,
    ReissueEstimator,
    RestartEstimator,
    RoundReport,
    RsEstimator,
    available_estimators,
    register_estimator,
    resolve_estimator,
)
from .theory import (
    reissue_beats_restart,
    reissue_error_ratio_bound,
    restart_expected_cost_lower_bound,
)
from .tree import QueryTree

__all__ = [
    "AggregateSpec",
    "DrillOutcome",
    "ESTIMATOR_CLASSES",
    "EstimatorBase",
    "GroupParams",
    "QueryTree",
    "RatioSpec",
    "ReissueEstimator",
    "RestartEstimator",
    "RoundReport",
    "RsEstimator",
    "RunningAverageSpec",
    "SizeChangeSpec",
    "available_estimators",
    "avg_measure",
    "combined_variance",
    "count_all",
    "count_where",
    "drill_from_root",
    "integer_allocation",
    "proportion_where",
    "register_estimator",
    "reissue_beats_restart",
    "reissue_error_ratio_bound",
    "reissue_update",
    "resolve_estimator",
    "restart_expected_cost_lower_bound",
    "running_average",
    "size_change",
    "sum_measure",
    "waterfill",
]
