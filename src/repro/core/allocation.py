"""RS-ESTIMATOR budget allocation (Theorem 4.2, Corollaries 4.1 and 4.3).

At round ``R_j`` the estimator chooses how many drill-downs ``c_x`` to
update from each *group* ``x`` (drill-downs last updated in round ``R_x``;
``x = j`` means brand-new drill-downs).  Updating a group-``x`` drill-down
costs ``g_x`` queries on average, and the group's estimate-of-the-mean has
variance

    v_x(c_x) = beta_x + alpha_x / c_x

(``beta_x`` = variance of the stored round-``x`` estimate the group is
anchored to; ``alpha_x`` = per-drill-down variance of the *change* term;
for new drill-downs ``beta = 0`` and ``alpha`` = single-drill-down
variance).  Combining groups with inverse-variance weights yields overall
variance ``1 / sum_x 1/v_x(c_x)``; the allocator minimises that subject to
``sum_x g_x * c_x <= G`` and ``0 <= c_x <= h_x``.

The paper's closed form (41) suffers visible typesetting damage, so we
solve the *exact* program instead.  The objective ``sum_x u_x(c_x)`` with
``u_x(c) = c / (beta_x * c + alpha_x)`` is concave and separable, giving a
classic water-filling solution: for a water level ``lam`` each group takes

    c_x(lam) = clamp( (sqrt(alpha_x / (lam * g_x)) - alpha_x) / beta_x, 0, h_x )

(for ``beta_x = 0`` the utility is linear and the group saturates iff its
constant marginal ``1/(alpha_x*g_x)`` beats ``lam``).  ``lam`` is found by
bisection on the monotone spend function.  Tests cross-check against brute
force and against the clean two-group regime of Corollary 4.1.
"""

from __future__ import annotations

import math
from typing import Sequence

#: alpha below this is treated as "one update pins the group exactly".
ALPHA_EPSILON = 1e-12


class GroupParams:
    """Allocation inputs for one drill-down group."""

    __slots__ = ("key", "alpha", "beta", "cost", "upper")

    def __init__(
        self,
        key: object,
        alpha: float,
        beta: float,
        cost: float,
        upper: float = math.inf,
    ):
        if alpha < 0 or beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if cost <= 0:
            raise ValueError("per-drill-down cost must be positive")
        if upper < 0:
            raise ValueError("upper bound must be non-negative")
        self.key = key
        self.alpha = alpha
        self.beta = beta
        self.cost = cost
        self.upper = upper

    def utility(self, c: float) -> float:
        """1 / v_x(c): the group's precision contribution."""
        if c <= 0:
            return 0.0
        return c / (self.beta * c + self.alpha) if self.alpha > 0 else (
            1.0 / self.beta if self.beta > 0 else math.inf
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"GroupParams({self.key!r}, alpha={self.alpha:.4g}, "
            f"beta={self.beta:.4g}, g={self.cost:.3g}, h={self.upper})"
        )


def _take_at_level(group: GroupParams, lam: float) -> float:
    """c_x(lam): the group's optimal take at water level lam."""
    alpha = max(group.alpha, ALPHA_EPSILON)
    if group.beta > 0:
        raw = (math.sqrt(alpha / (lam * group.cost)) - alpha) / group.beta
        return min(max(raw, 0.0), group.upper)
    # Linear utility: all-or-nothing at its constant marginal.
    marginal = 1.0 / (alpha * group.cost)
    return group.upper if marginal > lam else 0.0


def waterfill(
    groups: Sequence[GroupParams], budget: float
) -> dict[object, float]:
    """Continuous optimal allocation ``{group key: c_x}``.

    Groups with ``alpha ~ 0`` (an update pins them exactly) are granted a
    single update off the top — matching Corollary 4.1's behaviour where a
    zero-variance change term means "verify once, then spend elsewhere".
    """
    allocation: dict[object, float] = {g.key: 0.0 for g in groups}
    if budget <= 0 or not groups:
        return allocation
    remaining = budget
    active: list[GroupParams] = []
    for group in groups:
        if group.upper <= 0:
            continue
        if group.alpha <= ALPHA_EPSILON:
            take = min(1.0, group.upper, remaining / group.cost)
            allocation[group.key] = take
            remaining -= take * group.cost
        else:
            active.append(group)
    if remaining <= 0 or not active:
        return allocation

    def spend(lam: float) -> float:
        return sum(_take_at_level(g, lam) * g.cost for g in active)

    # Bracket lam: high level -> nobody takes, low level -> everyone maxes.
    high = max(1.0 / (max(g.alpha, ALPHA_EPSILON) * g.cost) for g in active) * 2
    low = high
    while spend(low) < remaining and low > 1e-300:
        low /= 2
    if spend(low) <= remaining:
        # Budget exceeds what all groups can absorb: saturate everything.
        for group in active:
            allocation[group.key] = min(
                group.upper, remaining / group.cost
                if group.upper == math.inf
                else group.upper,
            )
        return allocation
    for _ in range(100):
        mid = math.sqrt(low * high) if low > 0 else (low + high) / 2
        if spend(mid) > remaining:
            low = mid
        else:
            high = mid
    lam = high
    for group in active:
        allocation[group.key] = _take_at_level(group, lam)
    # A linear (beta = 0) group sitting exactly at the water level takes
    # nothing in the limit from above; hand it the leftover explicitly
    # (its marginal utility is constant, so any amount is optimal there).
    leftover = remaining - sum(
        allocation[g.key] * g.cost for g in active
    )
    if leftover > 0:
        linear = sorted(
            (g for g in active if g.beta == 0 and allocation[g.key] < g.upper),
            key=lambda g: max(g.alpha, ALPHA_EPSILON) * g.cost,
        )
        for group in linear:
            extra = min(group.upper - allocation[group.key],
                        leftover / group.cost)
            allocation[group.key] += extra
            leftover -= extra * group.cost
            if leftover <= 0:
                break
    return allocation


def integer_allocation(
    groups: Sequence[GroupParams], budget: float
) -> dict[object, int]:
    """Round the continuous solution to whole drill-downs within budget.

    Floors every take, then spends leftovers greedily by marginal utility
    per query — a standard rounding that tests show is within a drill-down
    of the brute-force optimum on small instances.
    """
    continuous = waterfill(groups, budget)
    result = {key: int(math.floor(c)) for key, c in continuous.items()}
    by_key = {g.key: g for g in groups}
    spent = sum(result[key] * by_key[key].cost for key in result)
    leftover = budget - spent
    # Greedy top-up, one drill-down at a time.
    improved = True
    while improved:
        improved = False
        best_key = None
        best_gain = 0.0
        for group in groups:
            c = result[group.key]
            if c + 1 > group.upper or group.cost > leftover:
                continue
            gain = (group.utility(c + 1) - group.utility(c)) / group.cost
            if gain > best_gain:
                best_gain = gain
                best_key = group.key
        if best_key is not None:
            result[best_key] += 1
            leftover -= by_key[best_key].cost
            improved = True
    return result


def combined_variance(
    groups: Sequence[GroupParams], allocation: dict[object, float]
) -> float:
    """Overall estimator variance for an allocation (Corollary 4.2's (37))."""
    precision = sum(g.utility(allocation.get(g.key, 0.0)) for g in groups)
    if precision == 0.0:
        return math.inf
    return 1.0 / precision
