"""Ad-hoc query support (paper §5.1): retroactive aggregate estimation.

The stream model tracks aggregates declared up front.  The *ad-hoc* model
must answer aggregates that arrive later — possibly about a round that has
already passed ("what was the change of database size from R1 to R2?",
asked after R5).  The paper's observation: since every tuple a drill-down
retrieved can be preserved client-side, one can "simulate" the estimation
as if the query had been issued before the drill-downs were done.

:class:`DrillDownArchive` implements exactly that.  Estimators opt in by
attaching an archive; every completed drill-down outcome (signature, round,
terminal node, returned tuples) is stored, and
:meth:`DrillDownArchive.estimate` replays any linear aggregate against any
archived round after the fact — zero additional queries.

Two caveats carried over from the paper:

* the archived drill-downs used the tree the estimator was configured
  with, so selection pushdown cannot be applied retroactively — ad-hoc
  aggregates with very selective conditions have higher variance than the
  same aggregate tracked in the stream model (§5.1's performance remark);
* only rounds the estimator actually worked in can be queried.
"""

from __future__ import annotations

import math

from ..errors import EstimationError
from ..hiddendb.tuples import HiddenTuple
from .aggregates import AggregateSpec, RatioSpec
from .drilldown import DrillOutcome
from .tree import QueryTree
from .variance import mean, variance_of_mean


class ArchivedDrillDown:
    """One drill-down's terminal state, frozen at a given round."""

    __slots__ = ("round_index", "depth", "probability", "tuples",
                 "leaf_overflow")

    def __init__(
        self,
        round_index: int,
        depth: int,
        probability: float,
        tuples: tuple[HiddenTuple, ...],
        leaf_overflow: bool,
    ):
        self.round_index = round_index
        self.depth = depth
        #: p(q) of the terminal node at archive time.
        self.probability = probability
        self.tuples = tuples
        self.leaf_overflow = leaf_overflow

    def contribution(self, spec: AggregateSpec) -> float:
        """Replay Q(q)/p(q) for an aggregate unseen at collection time."""
        total = sum(
            spec.tuple_value(t)
            for t in self.tuples
            if spec.matches_pushdown(t)
        )
        return total / self.probability


class AdHocEstimate:
    """Result of a retroactive estimation."""

    __slots__ = ("value", "variance", "drilldowns", "round_index")

    def __init__(self, value: float, variance: float, drilldowns: int,
                 round_index: int):
        self.value = value
        self.variance = variance
        self.drilldowns = drilldowns
        self.round_index = round_index

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"AdHocEstimate({self.value:.4g} +- {math.sqrt(max(self.variance, 0)):.2g},"
            f" round={self.round_index}, n={self.drilldowns})"
        )


class DrillDownArchive:
    """Client-side store of every retrieved page, indexed by round.

    Attach to any estimator via its ``archive`` attribute hook (see
    :meth:`repro.core.estimators.base.EstimatorBase.attach_archive`); the
    estimator records each completed outcome automatically.
    """

    def __init__(self, tree: QueryTree):
        self.tree = tree
        self._by_round: dict[int, list[ArchivedDrillDown]] = {}

    def record(self, outcome: DrillOutcome, round_index: int) -> None:
        """Archive one completed drill-down outcome."""
        archived = ArchivedDrillDown(
            round_index,
            outcome.depth,
            self.tree.selection_probability(outcome.depth),
            outcome.result.tuples,
            outcome.leaf_overflow,
        )
        self._by_round.setdefault(round_index, []).append(archived)

    # ------------------------------------------------------------------
    def rounds(self) -> list[int]:
        """Rounds with archived drill-downs, ascending."""
        return sorted(self._by_round)

    def drilldowns_in(self, round_index: int) -> int:
        return len(self._by_round.get(round_index, ()))

    def estimate(
        self, spec: AggregateSpec | RatioSpec, round_index: int
    ) -> AdHocEstimate:
        """Retroactively estimate an aggregate over an archived round."""
        archived = self._by_round.get(round_index)
        if not archived:
            raise EstimationError(
                f"no archived drill-downs for round {round_index}"
            )
        if isinstance(spec, RatioSpec):
            numerator = self.estimate(spec.numerator, round_index)
            denominator = self.estimate(spec.denominator, round_index)
            if denominator.value == 0:
                value = math.nan
            else:
                value = numerator.value / denominator.value
            return AdHocEstimate(
                value, math.inf, len(archived), round_index
            )
        values = [a.contribution(spec) for a in archived]
        return AdHocEstimate(
            mean(values),
            variance_of_mean(values),
            len(archived),
            round_index,
        )

    def estimate_change(
        self,
        spec: AggregateSpec,
        from_round: int,
        to_round: int,
    ) -> AdHocEstimate:
        """Retroactive trans-round change Q(D_to) - Q(D_from).

        Uses the difference of the two rounds' archived estimates; unlike
        the stream model there is no guarantee the same signatures appear
        in both rounds, so the variances add (the price of asking late).
        """
        start = self.estimate(spec, from_round)
        end = self.estimate(spec, to_round)
        return AdHocEstimate(
            end.value - start.value,
            start.variance + end.variance,
            min(start.drilldowns, end.drilldowns),
            to_round,
        )

    def retrieved_tuples(self, round_index: int) -> list[HiddenTuple]:
        """Every distinct tuple seen in a round (exploratory use)."""
        seen: dict[int, HiddenTuple] = {}
        for archived in self._by_round.get(round_index, ()):
            for t in archived.tuples:
                seen[t.tid] = t
        return list(seen.values())
