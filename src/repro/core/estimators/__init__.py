"""The three dynamic-aggregate estimators of the paper."""

from .base import DrillDownRecord, EstimatorBase, RoundReport
from .registry import (
    ESTIMATOR_CLASSES,
    available_estimators,
    register_estimator,
    resolve_estimator,
)
from .reissue import ReissueEstimator
from .restart import RestartEstimator
from .rs import RsEstimator

register_estimator("RESTART", RestartEstimator)
register_estimator("REISSUE", ReissueEstimator)
register_estimator("RS", RsEstimator)

__all__ = [
    "DrillDownRecord",
    "ESTIMATOR_CLASSES",
    "EstimatorBase",
    "ReissueEstimator",
    "RestartEstimator",
    "RoundReport",
    "RsEstimator",
    "available_estimators",
    "register_estimator",
    "resolve_estimator",
]
