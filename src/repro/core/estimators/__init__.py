"""The three dynamic-aggregate estimators of the paper."""

from .base import DrillDownRecord, EstimatorBase, RoundReport
from .reissue import ReissueEstimator
from .restart import RestartEstimator
from .rs import RsEstimator

#: Registry used by the experiment harness and CLI.
ESTIMATOR_CLASSES = {
    "RESTART": RestartEstimator,
    "REISSUE": ReissueEstimator,
    "RS": RsEstimator,
}

__all__ = [
    "DrillDownRecord",
    "ESTIMATOR_CLASSES",
    "EstimatorBase",
    "ReissueEstimator",
    "RestartEstimator",
    "RoundReport",
    "RsEstimator",
]
