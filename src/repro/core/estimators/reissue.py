"""REISSUE-ESTIMATOR (paper §3, Algorithm 1).

The drill-down *signatures* generated in earlier rounds are reused: each
round, every remembered drill-down is re-validated starting from its
previous terminal node — one query if it still overflows and its child
terminates, two for a stable drill-down (strict mode), a short descent or
roll-up otherwise.  The budget left after all updates funds brand-new
drill-downs, so the sample keeps growing round after round, which is where
the accuracy advantage over RESTART comes from (Theorem 3.2).

Trans-round size changes are estimated from per-drill-down deltas: a
drill-down updated in both rounds contributes
``Q_j(q)/p - Q_{j-1}(q)/p``, whose mean is an unbiased, very-low-variance
estimate of ``Q(D_j) - Q(D_{j-1})`` (§3.2.1 Example 1).
"""

from __future__ import annotations

import math

from ...errors import QueryBudgetExhausted
from ...hiddendb.session import QuerySession
from ..aggregates import SizeChangeSpec
from ..drilldown import reissue_update
from ..variance import mean, variance_of_mean
from .base import DrillDownRecord, EstimatorBase, RoundReport


class ReissueEstimator(EstimatorBase):
    """Reuse drill-down signatures; update, then extend, every round."""

    name = "REISSUE"

    def _execute_round(
        self, session: QuerySession, round_index: int
    ) -> RoundReport:
        leaf_overflows = 0
        exhausted = False
        # (record, its last_round before this update, its old contributions);
        # feeds the trans-round delta estimates below.
        update_log: list[tuple[DrillDownRecord, int, dict[str, float]]] = []

        order = list(self.records)
        self.rng.shuffle(order)
        for record in order:
            try:
                outcome = reissue_update(
                    session,
                    self.tree,
                    record.signature,
                    record.depth,
                    parent_check=self.parent_check,
                )
            except QueryBudgetExhausted:
                exhausted = True
                break
            update_log.append(
                (record, record.last_round, dict(record.contributions))
            )
            self._apply_outcome(record, outcome, round_index)
            leaf_overflows += outcome.leaf_overflow

        new_records: list[DrillDownRecord] = []
        if not exhausted:
            new_records, new_overflows = self._new_drilldowns_until_exhausted(
                session, round_index
            )
            self.records.extend(new_records)
            leaf_overflows += new_overflows

        # Single-round estimates from every drill-down refreshed this round.
        current = [r for r in self.records if r.last_round == round_index]
        values_by_spec = {
            spec.name: [r.contributions[spec.name] for r in current]
            for spec in self.base_specs
        }
        estimates, variances = self._estimates_from_values(values_by_spec)

        overrides = self._size_change_overrides(round_index, update_log)
        self._finalize_estimates(
            round_index, estimates, variances, size_change_overrides=overrides
        )
        return RoundReport(
            round_index,
            estimates,
            variances,
            queries_used=session.queries_used,
            drilldowns_updated=len(update_log),
            drilldowns_new=len(new_records),
            leaf_overflows=leaf_overflows,
            active_drilldowns=len(self.records),
        )

    def _size_change_overrides(
        self,
        round_index: int,
        update_log: list[tuple[DrillDownRecord, int, dict[str, float]]],
    ) -> dict[str, tuple[float, float]]:
        """Delta-based size-change estimates from consecutive-round updates."""
        overrides: dict[str, tuple[float, float]] = {}
        for spec in self.specs:
            if not isinstance(spec, SizeChangeSpec):
                continue
            deltas = [
                record.contributions[spec.base.name]
                - old_contributions[spec.base.name]
                for record, old_round, old_contributions in update_log
                if old_round == round_index - 1
            ]
            if deltas:
                overrides[spec.name] = (
                    mean(deltas),
                    variance_of_mean(deltas) if len(deltas) > 1 else math.inf,
                )
        return overrides
