"""First-class estimator registry (mirrors ``register_backend``).

Estimators are registered under a public name so experiment harnesses, the
CLI, and the :mod:`repro.api` engine facade can resolve them without
importing concrete classes.  Anything callable as::

    factory(interface, specs, budget_per_round=..., seed=..., **options)

can register — the shipped estimator *classes* qualify directly, and
wrappers may adapt the interface first (see
:mod:`repro.extensions.counts`, which wraps the plain top-k interface in a
count-revealing one before constructing its estimator).

The legacy ``ESTIMATOR_CLASSES`` dict is kept as an alias of the live
registry: code that reads it keeps working and sees new registrations;
code that mutated it (never a documented API) should call
:func:`register_estimator` instead.
"""

from __future__ import annotations

from typing import Callable

from ...errors import EstimationError

#: Builds an estimator bound to an interface: ``factory(interface, specs,
#: budget_per_round=..., seed=..., **options)``.
EstimatorFactory = Callable[..., object]

_REGISTRY: dict[str, EstimatorFactory] = {}

#: Deprecated alias of the live registry (pre-registry code imported this
#: frozen dict).  Reads keep working; prefer :func:`register_estimator` /
#: :func:`available_estimators` / :func:`resolve_estimator`.
ESTIMATOR_CLASSES = _REGISTRY


def register_estimator(name: str, factory: EstimatorFactory) -> None:
    """Register an estimator factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def available_estimators() -> tuple[str, ...]:
    """Names of all registered estimators."""
    return tuple(sorted(_REGISTRY))


def resolve_estimator(ref: str | EstimatorFactory) -> EstimatorFactory:
    """A factory from a registry name (or pass a factory through as-is)."""
    if not isinstance(ref, str):
        if not callable(ref):
            raise EstimationError(
                f"estimator must be a registry name or a callable factory, "
                f"got {ref!r}"
            )
        return ref
    try:
        return _REGISTRY[ref]
    except KeyError:
        raise EstimationError(
            f"unknown estimator {ref!r}; "
            f"available: {', '.join(available_estimators())}"
        ) from None
