"""RESTART-ESTIMATOR: the repeated-execution baseline (paper §1, §3).

Every round is treated as an independent static database: the estimator
performs fresh random drill-downs (the static algorithm of Dasgupta et al.,
SIGMOD 2010) until the round's query budget is exhausted and averages their
contributions.  Nothing is carried across rounds, which is exactly the
waste the paper's algorithms remove.
"""

from __future__ import annotations

from ...hiddendb.session import QuerySession
from .base import EstimatorBase, RoundReport


class RestartEstimator(EstimatorBase):
    """Re-run the static drill-down estimator from scratch each round."""

    name = "RESTART"

    def _execute_round(
        self, session: QuerySession, round_index: int
    ) -> RoundReport:
        created, leaf_overflows = self._new_drilldowns_until_exhausted(
            session, round_index
        )
        values_by_spec = {
            spec.name: [record.contributions[spec.name] for record in created]
            for spec in self.base_specs
        }
        estimates, variances = self._estimates_from_values(values_by_spec)
        self._finalize_estimates(round_index, estimates, variances)
        return RoundReport(
            round_index,
            estimates,
            variances,
            queries_used=session.queries_used,
            drilldowns_updated=0,
            drilldowns_new=len(created),
            leaf_overflows=leaf_overflows,
            active_drilldowns=len(created),
        )
