"""RS-ESTIMATOR (paper §4, Algorithm 2).

Reservoir-sampling-inspired: the budget a round spends on *updating* old
drill-downs adapts to how much the database actually changed, estimated on
the fly from a small bootstrap phase.

Per round ``R_j``:

1. Partition remembered drill-downs into *groups* by the round they were
   last updated in; group ``j`` stands for brand-new drill-downs.
2. **Bootstrap** (Algorithm 2 line 4): run ``bootstrap_per_group`` pilot
   updates in each group (pilot fresh drill-downs for group ``j``), which
   yields per-group estimates of the update cost ``g_x`` and the change
   variance ``alpha_x`` (variance of the per-drill-down delta).
3. **Allocate** the remaining budget over groups by exact water-filling of
   Corollary 4.3's objective (see :mod:`repro.core.allocation`).
4. **Execute** the allocated updates/new drill-downs in random order until
   the budget runs out (line 8), folding results into the same group
   statistics.
5. **Combine** the per-group estimates with inverse-variance weights
   (Corollary 4.2).

Anchoring note.  The paper writes the group-``x`` estimator as
``fQ(x, q_j(r_i)) = Q~_x + |q_j(r_i)|/p - |q_x(r_i)|/p`` with ``Q~_x`` "the
estimation produced at round x".  We anchor each group on *its own* stored
contribution mean ``A_x = mean_i |q_x(r_i)|/p`` (which in the paper's
two-round Corollary 4.1 setting is exactly ``v~_1``, since group 1 is the
whole round-1 sample).  Unlike the round-``x`` *combined* estimate, the
``A_x`` of different groups are built from disjoint drill-down sets and are
therefore genuinely independent, so Corollary 4.2's inverse-variance
combination neither double-counts information nor ossifies on early
errors — the estimator's precision grows with the total number of
drill-downs ever performed, which is the behaviour §4 advertises.

When the database barely changes, ``alpha_x ~ 0`` and the allocator sends
nearly the whole budget to new drill-downs, so the error keeps shrinking
where REISSUE plateaus (Figure 5).  Under heavy churn ``alpha_x``
approaches the fresh-drill-down variance and updating (cheaper per
drill-down) dominates the allocation — REISSUE's behaviour, as §4.2's
comparison predicts.
"""

from __future__ import annotations

import math

from ...errors import QueryBudgetExhausted
from ...hiddendb.session import QuerySession
from ..aggregates import AggregateSpec, SizeChangeSpec
from ..allocation import GroupParams, integer_allocation
from ..drilldown import drill_from_root, reissue_update
from ..variance import (
    combine_inverse_variance,
    mean,
    sample_variance,
    variance_of_mean,
)
from .base import DrillDownRecord, EstimatorBase, RoundReport

#: Fallback per-drill-down cost guess before any bootstrap data exists.
_DEFAULT_UPDATE_COST = 2.0


class _GroupData:
    """Per-round accumulation of one group's anchors and update results."""

    __slots__ = ("anchor_mean", "anchor_variance", "costs",
                 "old_contributions", "new_contributions")

    def __init__(
        self,
        anchor_mean: dict[str, float] | None = None,
        anchor_variance: dict[str, float] | None = None,
    ) -> None:
        #: Free (client-side) anchor: mean and variance-of-mean of the whole
        #: group's stored contributions, per base spec.  None for the
        #: new-drill-down group.
        self.anchor_mean = anchor_mean
        self.anchor_variance = anchor_variance
        self.costs: list[int] = []
        #: Aligned lists: contribution dicts before/after each update.
        self.old_contributions: list[dict[str, float]] = []
        self.new_contributions: list[dict[str, float]] = []

    def add(
        self,
        cost: int,
        new: dict[str, float],
        old: dict[str, float] | None = None,
    ) -> None:
        self.costs.append(cost)
        self.new_contributions.append(new)
        if old is not None:
            self.old_contributions.append(old)

    @property
    def count(self) -> int:
        return len(self.new_contributions)

    def deltas(self, spec_name: str) -> list[float]:
        return [
            new[spec_name] - old[spec_name]
            for old, new in zip(self.old_contributions, self.new_contributions)
        ]

    def news(self, spec_name: str) -> list[float]:
        return [new[spec_name] for new in self.new_contributions]

    def mean_cost(self) -> float:
        return mean(self.costs) if self.costs else _DEFAULT_UPDATE_COST


class RsEstimator(EstimatorBase):
    """Bootstrap the amount of change; split the budget accordingly."""

    name = "RS"

    def __init__(
        self,
        *args,
        bootstrap_per_group: int = 10,
        max_update_groups: int = 6,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        if bootstrap_per_group < 2:
            raise ValueError("bootstrap_per_group must be at least 2")
        self.bootstrap_per_group = bootstrap_per_group
        #: Only the most recent groups are bootstrapped/updated in a round;
        #: older drill-downs stay dormant until they fall inside the window.
        self.max_update_groups = max_update_groups
        #: Pooled per-drill-down contribution variance, refreshed each round.
        self._pooled: dict[str, float] = {}

    # ------------------------------------------------------------------
    def _execute_round(
        self, session: QuerySession, round_index: int
    ) -> RoundReport:
        if not self.records:
            return self._first_round(session, round_index)

        leaf_overflows = 0
        groups = self._bucket_records()
        self._pooled = self._pooled_variances()
        update_rounds = sorted(groups, reverse=True)
        data: dict[int, _GroupData] = {
            x: self._group_with_anchor(groups[x]) for x in update_rounds
        }
        data[round_index] = _GroupData()
        remaining: dict[int, list[DrillDownRecord]] = {}
        for x in update_rounds:
            pool = list(groups[x])
            self.rng.shuffle(pool)
            remaining[x] = pool

        # ---- bootstrap phase -----------------------------------------
        exhausted = False
        for x in update_rounds:
            pilots = min(self.bootstrap_per_group, len(remaining[x]))
            for _ in range(pilots):
                record = remaining[x].pop()
                if not self._update_one(
                    session, record, round_index, data[x]
                ):
                    exhausted = True
                    break
                leaf_overflows += record.leaf_overflow
            if exhausted:
                break
        new_created: list[DrillDownRecord] = []
        if not exhausted:
            for _ in range(self.bootstrap_per_group):
                record = self._new_one(session, round_index, data[round_index])
                if record is None:
                    exhausted = True
                    break
                new_created.append(record)
                leaf_overflows += record.leaf_overflow

        # ---- allocation and execution ----------------------------------
        if not exhausted and session.remaining and session.remaining > 0:
            allocation = self._allocate(
                round_index, data, remaining, session.remaining
            )
            plan: list[tuple[str, int]] = []
            for x, count in allocation.items():
                if x == round_index:
                    plan.extend(("new", x) for _ in range(count))
                else:
                    take = min(count, len(remaining[x]))
                    plan.extend(("update", x) for _ in range(take))
            self.rng.shuffle(plan)
            for kind, x in plan:
                if kind == "update":
                    record = remaining[x].pop()
                    if not self._update_one(
                        session, record, round_index, data[x]
                    ):
                        exhausted = True
                        break
                    leaf_overflows += record.leaf_overflow
                else:
                    record = self._new_one(
                        session, round_index, data[round_index]
                    )
                    if record is None:
                        exhausted = True
                        break
                    new_created.append(record)
                    leaf_overflows += record.leaf_overflow
            # Leftover budget (cost estimates are noisy): new drill-downs.
            while not exhausted:
                record = self._new_one(session, round_index, data[round_index])
                if record is None:
                    break
                new_created.append(record)
                leaf_overflows += record.leaf_overflow
        self.records.extend(new_created)

        # ---- combination ----------------------------------------------
        estimates, variances = self._combine(round_index, data)
        overrides = self._size_change_overrides(round_index, data)
        self._finalize_estimates(
            round_index, estimates, variances, size_change_overrides=overrides
        )
        updated_total = sum(
            d.count for x, d in data.items() if x != round_index
        )
        return RoundReport(
            round_index,
            estimates,
            variances,
            queries_used=session.queries_used,
            drilldowns_updated=updated_total,
            drilldowns_new=len(new_created),
            leaf_overflows=leaf_overflows,
            active_drilldowns=len(self.records),
        )

    # ------------------------------------------------------------------
    # Phase helpers
    # ------------------------------------------------------------------
    def _pooled_variances(self) -> dict[str, float]:
        """Per-drill-down contribution variance pooled over all records.

        Contributions are identically distributed across groups (same tree,
        same database), so pooling gives a stable variance estimate where a
        single group's handful of draws — heavily skewed by design — would
        be wildly noisy and destabilise the inverse-variance weights.
        """
        pooled: dict[str, float] = {}
        for spec in self.base_specs:
            stored = [r.contributions[spec.name] for r in self.records]
            pooled[spec.name] = (
                sample_variance(stored) if len(stored) >= 2 else math.inf
            )
        return pooled

    def _bucket_records(self) -> dict[int, list[DrillDownRecord]]:
        """Partition records by last-updated round, archiving old rounds.

        The most recent ``max_update_groups - 1`` distinct rounds keep their
        own group (their change statistics differ); everything older is
        merged into one *archive* group keyed by its oldest round.  The
        anchored group estimator stays unbiased under merging: the anchor
        mean estimates the mixture ``mean_i Q(D_{x_i})`` and the delta mean
        estimates ``Q(D_j) - mean_i Q(D_{x_i})``, so their sum telescopes to
        ``Q(D_j)``.  Without merging, records older than the update window
        would sit dormant and their information would be lost.
        """
        by_round: dict[int, list[DrillDownRecord]] = {}
        for record in self.records:
            by_round.setdefault(record.last_round, []).append(record)
        distinct = sorted(by_round, reverse=True)
        recent = distinct[: max(self.max_update_groups - 1, 1)]
        older = distinct[len(recent):]
        groups = {x: by_round[x] for x in recent}
        if older:
            archive_key = min(older)
            archive: list[DrillDownRecord] = []
            for x in older:
                archive.extend(by_round[x])
            groups[archive_key] = archive
        return groups

    def _delta_alpha(self, deltas: list[float], spec_name: str) -> float:
        """Per-drill-down variance of a group's change term, with a floor.

        Change per drill-down is a rare, huge jump (a node's content shifts
        by a multiple of 1/p or not at all), so the sample variance of a
        handful of observed deltas — typically all zero — wildly
        understates the truth and would let stale anchors outvote fresh
        samples.  The floor ``2 * pooled / (c + 2)`` is a Jeffreys-style
        cap: with c verified deltas and no observed jump, the undetected
        jump rate can still be ~1/(c+2), and a jump's magnitude is on the
        order of the contribution spread.  More verification (larger c)
        shrinks the floor, so well-checked anchors regain full weight.
        """
        base = sample_variance(deltas) if len(deltas) >= 2 else 0.0
        pooled = self._pooled.get(spec_name, math.inf)
        if math.isfinite(pooled):
            return max(base, 2.0 * pooled / (len(deltas) + 2))
        return base

    def _group_with_anchor(
        self, records: list[DrillDownRecord]
    ) -> _GroupData:
        """Group data seeded with the free client-side anchor statistics."""
        anchor_mean: dict[str, float] = {}
        anchor_variance: dict[str, float] = {}
        for spec in self.base_specs:
            stored = [r.contributions[spec.name] for r in records]
            anchor_mean[spec.name] = mean(stored)
            anchor_variance[spec.name] = self._pooled[spec.name] / len(stored)
        return _GroupData(anchor_mean, anchor_variance)

    def _first_round(
        self, session: QuerySession, round_index: int
    ) -> RoundReport:
        """No history yet: behave like RESTART but remember the drill-downs."""
        created, leaf_overflows = self._new_drilldowns_until_exhausted(
            session, round_index
        )
        self.records.extend(created)
        values_by_spec = {
            spec.name: [r.contributions[spec.name] for r in created]
            for spec in self.base_specs
        }
        estimates, variances = self._estimates_from_values(values_by_spec)
        self._finalize_estimates(round_index, estimates, variances)
        return RoundReport(
            round_index,
            estimates,
            variances,
            queries_used=session.queries_used,
            drilldowns_new=len(created),
            leaf_overflows=leaf_overflows,
            active_drilldowns=len(self.records),
        )

    def _update_one(
        self,
        session: QuerySession,
        record: DrillDownRecord,
        round_index: int,
        group: _GroupData,
    ) -> bool:
        """Reissue one record; returns False on budget exhaustion."""
        try:
            outcome = reissue_update(
                session,
                self.tree,
                record.signature,
                record.depth,
                parent_check=self.parent_check,
            )
        except QueryBudgetExhausted:
            return False
        old = dict(record.contributions)
        self._apply_outcome(record, outcome, round_index)
        group.add(outcome.queries_spent, dict(record.contributions), old)
        return True

    def _new_one(
        self,
        session: QuerySession,
        round_index: int,
        group: _GroupData,
    ) -> DrillDownRecord | None:
        """One fresh drill-down; returns None on budget exhaustion."""
        signature = self.tree.random_signature(self.rng)
        try:
            outcome = drill_from_root(session, self.tree, signature)
        except QueryBudgetExhausted:
            return None
        record = self._record_from(outcome, round_index)
        group.add(outcome.queries_spent, dict(record.contributions))
        return record

    # ------------------------------------------------------------------
    # Allocation inputs (Corollary 4.3's alpha/beta/g per group)
    # ------------------------------------------------------------------
    def _primary_spec(self) -> AggregateSpec:
        return self.base_specs[0]

    def _allocate(
        self,
        round_index: int,
        data: dict[int, _GroupData],
        remaining: dict[int, list[DrillDownRecord]],
        budget: int,
    ) -> dict[int, int]:
        primary = self._primary_spec().name
        params: list[GroupParams] = []
        for x, group in data.items():
            if x == round_index:
                alpha = self._pooled.get(primary, math.inf)
                if not math.isfinite(alpha):
                    news = group.news(primary)
                    alpha = sample_variance(news) if len(news) >= 2 else 0.0
                params.append(
                    GroupParams(
                        x,
                        alpha=alpha,
                        beta=0.0,
                        cost=group.mean_cost(),
                        upper=math.inf,
                    )
                )
                continue
            if not remaining.get(x):
                continue
            beta = (
                group.anchor_variance.get(primary, math.inf)
                if group.anchor_variance
                else math.inf
            )
            if not math.isfinite(beta):
                # Single-record group: no usable anchor; its update is no
                # better than a fresh drill-down, so leave it dormant.
                continue
            deltas = group.deltas(primary)
            alpha = self._delta_alpha(deltas, primary)
            params.append(
                GroupParams(
                    x,
                    alpha=alpha,
                    beta=beta,
                    cost=group.mean_cost(),
                    upper=len(remaining[x]),
                )
            )
        return integer_allocation(params, budget)

    # ------------------------------------------------------------------
    # Combination (Corollary 4.2)
    # ------------------------------------------------------------------
    def _group_estimate(
        self, x: int, round_index: int, group: _GroupData, spec_name: str
    ) -> tuple[float, float] | None:
        """(estimate, variance) the group contributes for one base spec."""
        if group.count == 0:
            return None
        if x == round_index:
            news = group.news(spec_name)
            pooled = self._pooled.get(spec_name, math.inf)
            if math.isfinite(pooled):
                return mean(news), pooled / len(news)
            return mean(news), variance_of_mean(news)
        anchor = (
            group.anchor_mean.get(spec_name, math.nan)
            if group.anchor_mean
            else math.nan
        )
        beta = (
            group.anchor_variance.get(spec_name, math.inf)
            if group.anchor_variance
            else math.inf
        )
        deltas = group.deltas(spec_name)
        if math.isnan(anchor) or not math.isfinite(beta) or not deltas:
            # No usable anchor: fall back to treating the refreshed
            # contributions as fresh samples of the current round.
            news = group.news(spec_name)
            return mean(news), variance_of_mean(news)
        delta_variance = self._delta_alpha(deltas, spec_name) / len(deltas)
        return anchor + mean(deltas), beta + delta_variance

    def _combine(
        self, round_index: int, data: dict[int, _GroupData]
    ) -> tuple[dict[str, float], dict[str, float]]:
        estimates: dict[str, float] = {}
        variances: dict[str, float] = {}
        for spec in self.base_specs:
            parts = []
            for x, group in data.items():
                part = self._group_estimate(x, round_index, group, spec.name)
                if part is not None:
                    parts.append(part)
            try:
                estimates[spec.name], variances[spec.name] = (
                    combine_inverse_variance(parts)
                )
            except ValueError:
                previous = self.history[-1] if self.history else None
                estimates[spec.name] = (
                    previous.estimates.get(spec.name, math.nan)
                    if previous
                    else math.nan
                )
                variances[spec.name] = math.inf
        return estimates, variances

    # ------------------------------------------------------------------
    # Trans-round size change (§4.3's fQ cases)
    # ------------------------------------------------------------------
    def _size_change_overrides(
        self, round_index: int, data: dict[int, _GroupData]
    ) -> dict[str, tuple[float, float]]:
        overrides: dict[str, tuple[float, float]] = {}
        for spec in self.specs:
            if not isinstance(spec, SizeChangeSpec):
                continue
            base = spec.base.name
            parts = []
            # Group j-1 contributes direct deltas: |q_j|/p - |q_{j-1}|/p.
            previous_group = data.get(round_index - 1)
            if previous_group is not None and previous_group.count:
                deltas = previous_group.deltas(base)
                if deltas:
                    parts.append(
                        (
                            mean(deltas),
                            variance_of_mean(deltas)
                            if len(deltas) > 1
                            else math.inf,
                        )
                    )
            # Other groups reduce to |q_j|/p - Q~_{j-1} (fQ's x < j-1 case).
            previous_report = self._reports_by_round.get(round_index - 1)
            if previous_report is not None:
                anchor = previous_report.estimates.get(base, math.nan)
                anchor_variance = previous_report.variances.get(base, math.inf)
                if not math.isnan(anchor) and math.isfinite(anchor_variance):
                    news = []
                    for x, group in data.items():
                        if x == round_index - 1:
                            continue
                        news.extend(group.news(base))
                    if len(news) >= 2:
                        parts.append(
                            (
                                mean(news) - anchor,
                                variance_of_mean(news) + anchor_variance,
                            )
                        )
            try:
                overrides[spec.name] = combine_inverse_variance(parts)
            except ValueError:
                pass  # fall back to the base-class difference estimate
        return overrides
