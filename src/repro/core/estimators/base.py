"""Shared machinery for the three dynamic-aggregate estimators.

An estimator owns: a query tree (with selection pushdown computed from its
specs), a per-round query budget, a seeded RNG, its drill-down records, and
a per-round report history.  Subclasses implement ``_execute_round``.

Derived aggregates (ratios, running averages, size changes) are computed
from the linear base estimates by the base class; subclasses can override
the size-change path with their estimator-specific delta machinery.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Mapping, Sequence

from ...errors import EstimationError
from ...hiddendb.interface import TopKInterface
from ...hiddendb.session import QuerySession
from ..aggregates import (
    AggregateSpec,
    AnySpec,
    RatioSpec,
    RunningAverageSpec,
    SizeChangeSpec,
    base_specs_of,
)
from ..drilldown import DrillOutcome, drill_from_root
from ..tree import QueryTree, Signature
from ..variance import mean, ratio_variance, variance_of_mean


class DrillDownRecord:
    """Persistent state of one drill-down across rounds."""

    __slots__ = ("signature", "depth", "last_round", "contributions",
                 "leaf_overflow")

    def __init__(
        self,
        signature: Signature,
        depth: int,
        last_round: int,
        contributions: dict[str, float],
        leaf_overflow: bool = False,
    ):
        self.signature = signature
        self.depth = depth
        self.last_round = last_round
        #: base-spec name -> Q(q)/p(q) as of ``last_round``.
        self.contributions = contributions
        self.leaf_overflow = leaf_overflow


class RoundReport:
    """Everything an estimator produced in one round."""

    __slots__ = (
        "round_index", "estimates", "variances", "queries_used",
        "drilldowns_updated", "drilldowns_new", "leaf_overflows",
        "active_drilldowns",
    )

    def __init__(
        self,
        round_index: int,
        estimates: dict[str, float],
        variances: dict[str, float],
        queries_used: int,
        drilldowns_updated: int = 0,
        drilldowns_new: int = 0,
        leaf_overflows: int = 0,
        active_drilldowns: int = 0,
    ):
        self.round_index = round_index
        self.estimates = estimates
        self.variances = variances
        self.queries_used = queries_used
        self.drilldowns_updated = drilldowns_updated
        self.drilldowns_new = drilldowns_new
        self.leaf_overflows = leaf_overflows
        self.active_drilldowns = active_drilldowns

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RoundReport(round={self.round_index}, "
            f"queries={self.queries_used}, "
            f"updated={self.drilldowns_updated}, new={self.drilldowns_new})"
        )

    def to_dict(self) -> dict:
        """A strict-JSON-safe payload (``json.dumps(..., allow_nan=False)``
        works); non-finite estimates/variances are wire-encoded as strings
        and the payload carries ``schema_version`` (see
        :mod:`repro.core.wire`)."""
        from ..wire import encode_float_map, stamp

        return stamp({
            "round_index": self.round_index,
            "estimates": encode_float_map(self.estimates),
            "variances": encode_float_map(self.variances),
            "queries_used": self.queries_used,
            "drilldowns_updated": self.drilldowns_updated,
            "drilldowns_new": self.drilldowns_new,
            "leaf_overflows": self.leaf_overflows,
            "active_drilldowns": self.active_drilldowns,
        })

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RoundReport":
        """Rebuild a report from :meth:`to_dict` output (exact round trip).

        Forward tolerant: unknown keys are ignored and a missing
        ``schema_version`` means the pre-versioning v0 form — both decode
        to the fields this build knows about.
        """
        from ..wire import decode_float_map

        return cls(
            round_index=int(payload["round_index"]),
            estimates=decode_float_map(payload["estimates"]),
            variances=decode_float_map(payload["variances"]),
            queries_used=int(payload["queries_used"]),
            drilldowns_updated=int(payload.get("drilldowns_updated", 0)),
            drilldowns_new=int(payload.get("drilldowns_new", 0)),
            leaf_overflows=int(payload.get("leaf_overflows", 0)),
            active_drilldowns=int(payload.get("active_drilldowns", 0)),
        )


def shared_pushdown(specs: Sequence[AggregateSpec]) -> dict[int, int]:
    """Predicates safe to push into a tree shared by all the given specs.

    Only predicates present (with equal value) in *every* spec can narrow
    the tree: the tree must still cover the support of each aggregate.
    Specs without pushdown predicates (e.g. COUNT(*)) force the full tree.
    """
    if not specs:
        return {}
    common = dict(specs[0].interface_predicates)
    for spec in specs[1:]:
        predicates = spec.interface_predicates
        common = {
            attr: value
            for attr, value in common.items()
            if predicates.get(attr) == value
        }
        if not common:
            break
    return common


class EstimatorBase:
    """Template for RESTART / REISSUE / RS estimators.

    Parameters
    ----------
    interface:
        The hidden database's search endpoint.
    specs:
        Aggregates to track (linear, ratio, or trans-round).
    budget_per_round:
        The database-imposed query limit ``G``.
    seed:
        Seed for every random choice this estimator makes.
    parent_check:
        "strict" (sound, default) or "lazy" (Algorithm 1 verbatim) reissue
        semantics; only used by subclasses that reissue.
    cache_within_round:
        Client-side answer cache ablation (see ``QuerySession``).
    push_selection:
        Restrict the query tree to the subtree implied by predicates shared
        across all tracked aggregates (§3.3).
    free_order:
        Optional explicit drill-down attribute order (ablation).
    """

    #: Human-readable algorithm name, overridden by subclasses.
    name = "base"

    def __init__(
        self,
        interface: TopKInterface,
        specs: Sequence[AnySpec],
        budget_per_round: int,
        seed: int = 0,
        parent_check: str = "strict",
        cache_within_round: bool = False,
        push_selection: bool = True,
        free_order: Sequence[int] | None = None,
    ):
        if budget_per_round < 1:
            raise EstimationError("budget_per_round must be positive")
        self.interface = interface
        self.specs = list(specs)
        if not self.specs:
            raise EstimationError("at least one aggregate spec is required")
        self.base_specs = base_specs_of(self.specs)
        fixed = shared_pushdown(self.base_specs) if push_selection else {}
        self.tree = QueryTree(interface.schema, fixed=fixed,
                              free_order=free_order)
        self.tree.register(interface)
        self.budget_per_round = budget_per_round
        self.parent_check = parent_check
        self.cache_within_round = cache_within_round
        self.rng = random.Random(seed)
        self.records: list[DrillDownRecord] = []
        self.history: list[RoundReport] = []
        self._reports_by_round: dict[int, RoundReport] = {}
        #: Optional per-query callback (intra-round update driver hook).
        self.on_query: Callable[[], None] | None = None
        #: Optional drill-down archive for ad-hoc (retroactive) queries.
        self.archive = None

    # ------------------------------------------------------------------
    # Persistence (see repro.api.persistence / docs/format.md)
    # ------------------------------------------------------------------
    def state_to_wire(self) -> dict:
        """This estimator's round-crossing state as a strict-JSON payload.

        Captures everything :meth:`restore_state` needs to continue the
        estimation bit-identically on a freshly constructed twin (same
        interface, specs, and options): the RNG stream position, every
        drill-down record, the report history, and the current per-round
        budget.  Derived structures (the query tree, RS's pooled
        variances) are deterministic from the constructor arguments or
        recomputed each round and are deliberately not captured.

        Raises :class:`~repro.errors.EstimationError` when the estimator
        carries live callables/objects that cannot cross a snapshot (an
        ``on_query`` mutation hook or an attached drill-down archive).
        """
        from ..wire import encode_float, encode_float_map, stamp

        if self.on_query is not None:
            raise EstimationError(
                "estimators with an on_query mutation hook cannot be "
                "snapshot (the hook is a live callable)"
            )
        if self.archive is not None:
            raise EstimationError(
                "estimators with an attached drill-down archive cannot be "
                "snapshot; detach the archive first"
            )
        version, internal, gauss = self.rng.getstate()
        return stamp({
            "algorithm": self.name,
            "budget_per_round": self.budget_per_round,
            "rng": [
                int(version),
                [int(word) for word in internal],
                None if gauss is None else encode_float(float(gauss)),
            ],
            "records": [
                {
                    "signature": [int(digit) for digit in record.signature],
                    "depth": int(record.depth),
                    "last_round": int(record.last_round),
                    "contributions": encode_float_map(record.contributions),
                    "leaf_overflow": bool(record.leaf_overflow),
                }
                for record in self.records
            ],
            "history": [report.to_dict() for report in self.history],
            "stats": self.interface.stats.as_dict(),
        })

    def restore_state(self, payload: Mapping) -> None:
        """Adopt a :meth:`state_to_wire` payload (exact round trip).

        The estimator must have been constructed with the same interface,
        specs, seed-independent options, and schema as the one that was
        saved; this method then overwrites the RNG state, records,
        history, budget, and interface counters so the next
        :meth:`run_round` is bit-identical to the uninterrupted run.
        """
        from ..wire import decode_float, decode_float_map

        version, internal, gauss = payload["rng"]
        self.rng.setstate((
            int(version),
            tuple(int(word) for word in internal),
            None if gauss is None else decode_float(gauss),
        ))
        self.budget_per_round = int(payload["budget_per_round"])
        self.records = [
            DrillDownRecord(
                tuple(int(digit) for digit in entry["signature"]),
                int(entry["depth"]),
                int(entry["last_round"]),
                decode_float_map(entry["contributions"]),
                leaf_overflow=bool(entry.get("leaf_overflow", False)),
            )
            for entry in payload["records"]
        ]
        self.history = [
            RoundReport.from_dict(entry) for entry in payload["history"]
        ]
        # Rebuilt in first-seen order, matching the original mapping's
        # insertion order (re-assignment of a round keeps its position,
        # exactly as the live dict behaved).
        self._reports_by_round = {}
        for report in self.history:
            self._reports_by_round[report.round_index] = report
        stats = payload.get("stats")
        if stats is not None:
            counters = self.interface.stats
            counters.queries = int(stats["queries"])
            counters.underflow = int(stats["underflow"])
            counters.valid = int(stats["valid"])
            counters.overflow = int(stats["overflow"])

    def attach_archive(self):
        """Attach (and return) a client-side archive of every drill-down.

        Enables the ad-hoc query model of §5.1: any linear aggregate can be
        estimated retroactively over any round this estimator worked in,
        at zero extra query cost.  See :mod:`repro.core.adhoc`.
        """
        from ..adhoc import DrillDownArchive

        if self.archive is None:
            self.archive = DrillDownArchive(self.tree)
        return self.archive

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def run_round(self) -> RoundReport:
        """Run one round's worth of queries and produce estimates."""
        session = QuerySession(
            self.interface,
            budget=self.budget_per_round,
            cache_within_round=self.cache_within_round,
            on_query=self.on_query,
        )
        round_index = self.interface.current_round
        report = self._execute_round(session, round_index)
        self.history.append(report)
        self._reports_by_round[round_index] = report
        return report

    def _execute_round(
        self, session: QuerySession, round_index: int
    ) -> RoundReport:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared building blocks for subclasses
    # ------------------------------------------------------------------
    def _contributions_of(self, outcome: DrillOutcome) -> dict[str, float]:
        """Per-base-spec contribution Q(q)/p(q) of one outcome."""
        return {
            spec.name: spec.contribution(outcome, self.tree)
            for spec in self.base_specs
        }

    def _record_from(
        self, outcome: DrillOutcome, round_index: int
    ) -> DrillDownRecord:
        if self.archive is not None:
            self.archive.record(outcome, round_index)
        return DrillDownRecord(
            outcome.signature,
            outcome.depth,
            round_index,
            self._contributions_of(outcome),
            leaf_overflow=outcome.leaf_overflow,
        )

    def _apply_outcome(
        self,
        record: DrillDownRecord,
        outcome: DrillOutcome,
        round_index: int,
    ) -> None:
        if self.archive is not None:
            self.archive.record(outcome, round_index)
        record.depth = outcome.depth
        record.last_round = round_index
        record.contributions = self._contributions_of(outcome)
        record.leaf_overflow = outcome.leaf_overflow

    def _new_drilldowns_until_exhausted(
        self, session: QuerySession, round_index: int
    ) -> tuple[list[DrillDownRecord], int]:
        """Fresh drill-downs until the budget runs out; returns (records, overflows)."""
        from ...errors import QueryBudgetExhausted

        created: list[DrillDownRecord] = []
        leaf_overflows = 0
        while True:
            signature = self.tree.random_signature(self.rng)
            try:
                outcome = drill_from_root(session, self.tree, signature)
            except QueryBudgetExhausted:
                break
            created.append(self._record_from(outcome, round_index))
            leaf_overflows += outcome.leaf_overflow
        return created, leaf_overflows

    def _previous_report(self, round_index: int) -> RoundReport | None:
        """The most recent report strictly before ``round_index``."""
        best = None
        for past_round, report in self._reports_by_round.items():
            if past_round < round_index and (
                best is None or past_round > best.round_index
            ):
                best = report
        return best

    # ------------------------------------------------------------------
    # Derived aggregates
    # ------------------------------------------------------------------
    def _finalize_estimates(
        self,
        round_index: int,
        estimates: dict[str, float],
        variances: dict[str, float],
        size_change_overrides: Mapping[str, tuple[float, float]] | None = None,
    ) -> None:
        """Fill in ratio / trans-round estimates from the base estimates.

        ``size_change_overrides`` lets reissuing estimators substitute their
        low-variance delta estimates; absent overrides fall back to the
        difference of consecutive round estimates (RESTART semantics).
        """
        overrides = size_change_overrides or {}
        for spec in self.specs:
            if isinstance(spec, AggregateSpec):
                continue  # already present
            if isinstance(spec, RatioSpec):
                numerator = estimates.get(spec.numerator.name, math.nan)
                denominator = estimates.get(spec.denominator.name, math.nan)
                if denominator and not math.isnan(denominator):
                    estimates[spec.name] = numerator / denominator
                else:
                    estimates[spec.name] = math.nan
                variances[spec.name] = ratio_variance(
                    numerator,
                    variances.get(spec.numerator.name, math.inf),
                    denominator,
                    variances.get(spec.denominator.name, math.inf),
                )
            elif isinstance(spec, SizeChangeSpec):
                if spec.name in overrides:
                    estimates[spec.name], variances[spec.name] = overrides[
                        spec.name
                    ]
                else:
                    previous = self._previous_report(round_index)
                    if previous is None:
                        estimates[spec.name] = math.nan
                        variances[spec.name] = math.inf
                    else:
                        estimates[spec.name] = (
                            estimates[spec.base.name]
                            - previous.estimates.get(spec.base.name, math.nan)
                        )
                        variances[spec.name] = variances.get(
                            spec.base.name, math.inf
                        ) + previous.variances.get(spec.base.name, math.inf)
            elif isinstance(spec, RunningAverageSpec):
                window_values = []
                window_variances = []
                for past_round in range(
                    round_index - spec.window + 1, round_index
                ):
                    report = self._reports_by_round.get(past_round)
                    if report is not None:
                        value = report.estimates.get(spec.base.name)
                        if value is not None and not math.isnan(value):
                            window_values.append(value)
                            window_variances.append(
                                report.variances.get(spec.base.name, math.inf)
                            )
                current = estimates.get(spec.base.name, math.nan)
                if not math.isnan(current):
                    window_values.append(current)
                    window_variances.append(
                        variances.get(spec.base.name, math.inf)
                    )
                if window_values:
                    estimates[spec.name] = mean(window_values)
                    variances[spec.name] = sum(window_variances) / (
                        len(window_variances) ** 2
                    )
                else:
                    estimates[spec.name] = math.nan
                    variances[spec.name] = math.inf

    def _estimates_from_values(
        self, values_by_spec: Mapping[str, Sequence[float]]
    ) -> tuple[dict[str, float], dict[str, float]]:
        """Mean/variance-of-mean per base spec from contribution lists."""
        estimates: dict[str, float] = {}
        variances: dict[str, float] = {}
        for spec in self.base_specs:
            values = values_by_spec.get(spec.name, ())
            if values:
                estimates[spec.name] = mean(values)
                variances[spec.name] = variance_of_mean(values)
            else:
                # Nothing completed this round: carry the previous estimate
                # rather than fabricate one (variance marked unknown).
                previous = self.history[-1] if self.history else None
                estimates[spec.name] = (
                    previous.estimates.get(spec.name, math.nan)
                    if previous
                    else math.nan
                )
                variances[spec.name] = math.inf
        return estimates, variances
