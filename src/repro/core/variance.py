"""Small statistics helpers shared by the estimators.

Everything here is deliberately dependency-free (plain floats): estimators
call these in inner loops and the inputs are short lists of drill-down
contributions.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

#: Variance floor used when combining estimates, so a degenerate group
#: (zero observed variance) cannot swallow all the weight numerically.
VARIANCE_FLOOR = 1e-12


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (callers must guard)."""
    return sum(values) / len(values)


def sample_variance(values: Sequence[float]) -> float:
    """Unbiased (Bessel-corrected) sample variance; 0.0 for n < 2."""
    n = len(values)
    if n < 2:
        return 0.0
    centre = mean(values)
    return sum((v - centre) ** 2 for v in values) / (n - 1)


def variance_of_mean(values: Sequence[float]) -> float:
    """Estimated variance of the sample mean, s^2 / n."""
    n = len(values)
    if n == 0:
        return math.inf
    if n == 1:
        return math.inf  # one draw says nothing about its own spread
    return sample_variance(values) / n


def combine_inverse_variance(
    estimates: Iterable[tuple[float, float]],
) -> tuple[float, float]:
    """Optimal linear combination of independent unbiased estimates.

    Takes ``(estimate, variance)`` pairs; returns the inverse-variance
    weighted mean and its variance ``1 / sum(1/var)`` (Theorem 4.2's optimum
    generalised to any number of groups, Corollary 4.2).

    Pairs with non-finite variance are ignored; if every pair is ignored a
    ``ValueError`` is raised.  Variances are floored to keep weights finite.
    """
    total_weight = 0.0
    weighted_sum = 0.0
    for estimate, variance in estimates:
        if not math.isfinite(estimate) or not math.isfinite(variance):
            continue
        weight = 1.0 / max(variance, VARIANCE_FLOOR)
        total_weight += weight
        weighted_sum += weight * estimate
    if total_weight == 0.0:
        raise ValueError("no finite estimates to combine")
    return weighted_sum / total_weight, 1.0 / total_weight


def ratio_variance(
    numerator: float,
    numerator_variance: float,
    denominator: float,
    denominator_variance: float,
) -> float:
    """First-order (delta-method) variance of a ratio estimator.

    Used for AVG = SUM/COUNT, which the paper notes is only asymptotically
    unbiased.  Covariance between numerator and denominator is dropped —
    this is a reporting aid, not part of any estimator's decisions.
    """
    if denominator == 0:
        return math.inf
    ratio = numerator / denominator
    return (
        numerator_variance / denominator**2
        + ratio**2 * denominator_variance / denominator**2
    )


class RunningStat:
    """Welford one-pass mean/variance accumulator."""

    __slots__ = ("count", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Bessel-corrected sample variance (0.0 when count < 2)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)
