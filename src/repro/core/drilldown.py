"""Drill-down walks: fresh drill-downs and reissue updates.

A *drill-down* (paper §3.1) walks a random root-to-leaf path top-down and
stops at the first non-overflowing node — the *top non-overflowing query*
``q(r)`` for that signature.  A *reissue update* (§3.1, §3.2.2) revisits a
signature in a later round starting from where the walk stopped last time:

* if the remembered node overflows now, descend until non-overflowing
  (Case 2 — the node's parent is known to overflow, so it is top);
* otherwise, walk *up* re-asking ancestors until the parent overflows
  (Cases 1 and 3) — this is the sound "strict" mode matching §4.1's
  two-queries-per-stable-drill-down accounting;
* ``parent_check="lazy"`` reproduces Algorithm 1 literally: a currently
  valid node is accepted without confirming its parent still overflows.
  That saves one query per stable drill-down but silently mis-prices p(q)
  after heavy deletions (measured in the parent-check ablation).

Both walks return the same :class:`DrillOutcome`; the unbiasedness of every
estimator rests on the invariant that, in strict mode, ``reissue_update``
terminates at exactly the node ``drill_from_root`` would find for the same
signature and database state (property-tested).
"""

from __future__ import annotations

from ..errors import QueryError
from ..hiddendb.result import QueryResult
from ..hiddendb.session import QuerySession
from .tree import QueryTree, Signature

#: Accepted parent-check policies for reissue updates.
PARENT_CHECK_MODES = ("strict", "lazy")


class DrillOutcome:
    """Terminal state of one drill-down or reissue-update walk."""

    __slots__ = ("signature", "depth", "result", "queries_spent", "leaf_overflow")

    def __init__(
        self,
        signature: Signature,
        depth: int,
        result: QueryResult,
        queries_spent: int,
        leaf_overflow: bool = False,
    ):
        self.signature = signature
        #: Depth of the top non-overflowing node (== tree.max_depth when the
        #: walk hit an overflowing leaf; then ``leaf_overflow`` is set).
        self.depth = depth
        self.result = result
        self.queries_spent = queries_spent
        #: True when even the leaf overflowed (tuples colliding on every
        #: searchable attribute) — estimates from this outcome are biased.
        self.leaf_overflow = leaf_overflow

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DrillOutcome(depth={self.depth}, status={self.result.status.value},"
            f" cost={self.queries_spent})"
        )


def drill_from_root(
    session: QuerySession, tree: QueryTree, signature: Signature
) -> DrillOutcome:
    """Walk the signature's path from the root down to ``q(r)``."""
    start = session.queries_used
    depth = 0
    result = session.search(tree.query_at(signature, depth))
    while result.overflow and depth < tree.max_depth:
        depth += 1
        result = session.search(tree.query_at(signature, depth))
    return DrillOutcome(
        signature,
        depth,
        result,
        session.queries_used - start,
        leaf_overflow=result.overflow,
    )


def reissue_update(
    session: QuerySession,
    tree: QueryTree,
    signature: Signature,
    start_depth: int,
    parent_check: str = "strict",
) -> DrillOutcome:
    """Re-locate ``q(r)`` in the current round, starting from ``start_depth``.

    ``start_depth`` is the depth where the drill-down terminated when last
    updated.  Query cost is whatever the walk needs: 1 query if the node
    overflows and its child is terminal, 2 for a stable drill-down in
    strict mode, up to a full path in pathological churn.
    """
    if parent_check not in PARENT_CHECK_MODES:
        raise QueryError(f"unknown parent_check mode {parent_check!r}")
    if start_depth < 0 or start_depth > tree.max_depth:
        raise QueryError(f"start_depth {start_depth} out of range")
    start = session.queries_used
    depth = start_depth
    result = session.search(tree.query_at(signature, depth))
    if result.overflow:
        # Case 2: everything above still overflows (it returned >k before and
        # this node still does, so ancestors, being supersets, overflow too).
        while result.overflow and depth < tree.max_depth:
            depth += 1
            result = session.search(tree.query_at(signature, depth))
        return DrillOutcome(
            signature,
            depth,
            result,
            session.queries_used - start,
            leaf_overflow=result.overflow,
        )
    if parent_check == "lazy" and result.valid:
        # Algorithm 1 verbatim: accept a currently-valid node as-is.
        return DrillOutcome(signature, depth, result, session.queries_used - start)
    # Walk up until the parent overflows (or we reach the root).  In lazy
    # mode this branch only runs for underflowing nodes ("roll up"), in
    # strict mode for every non-overflowing node.
    while depth > 0:
        parent_result = session.search(tree.query_at(signature, depth - 1))
        if parent_result.overflow:
            break
        depth -= 1
        result = parent_result
        if parent_check == "lazy" and result.valid:
            break
    return DrillOutcome(signature, depth, result, session.queries_used - start)
