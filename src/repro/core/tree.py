"""The query tree of §3.1 and random drill-down signatures.

Level ``i`` of the tree corresponds to one attribute; a node at depth ``d``
is the conjunctive query fixing the first ``d`` attributes of the tree's
*free order*.  A drill-down's entire randomness is a **signature**: one
value index per free attribute (equivalently, a uniformly chosen leaf).

Selection-condition pushdown (§3.3): aggregates whose selection is a
conjunction of categorical equalities can supply *fixed predicates*; the
tree then ranges over the corresponding subtree — every issued query carries
the fixed predicates, and drill-down randomness covers only the remaining
attributes.

``selection_probability(d)`` is the paper's ``p(q)``: the fraction of leaves
whose root-to-leaf path passes through the depth-``d`` node, i.e.
``1 / prod(|U| of the first d free attributes)``.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from ..errors import QueryError
from ..hiddendb.interface import TopKInterface
from ..hiddendb.query import ConjunctiveQuery
from ..hiddendb.schema import Schema

#: A drill-down signature: one chosen value index per free attribute.
Signature = tuple[int, ...]


class QueryTree:
    """Drill-down query tree over a schema, with optional fixed predicates."""

    def __init__(
        self,
        schema: Schema,
        fixed: Mapping[int, int] | None = None,
        free_order: Sequence[int] | None = None,
    ):
        self.schema = schema
        self.fixed = dict(fixed) if fixed else {}
        for attr_index, value_index in self.fixed.items():
            if attr_index >= schema.num_attributes:
                raise QueryError(f"fixed attribute index {attr_index} out of range")
            if value_index >= schema.attributes[attr_index].size:
                raise QueryError(
                    f"fixed value index {value_index} out of range for "
                    f"attribute {schema.attributes[attr_index].name!r}"
                )
        if free_order is None:
            free_order = [
                i for i in range(schema.num_attributes) if i not in self.fixed
            ]
        else:
            free_order = list(free_order)
            if set(free_order) & set(self.fixed):
                raise QueryError("free_order overlaps fixed attributes")
            expected = set(range(schema.num_attributes)) - set(self.fixed)
            if set(free_order) != expected:
                raise QueryError(
                    "free_order must cover exactly the non-fixed attributes"
                )
        self.free_order = tuple(free_order)
        self._free_sizes = tuple(
            schema.attributes[a].size for a in self.free_order
        )
        # Base predicates shared by every node of this (sub)tree.
        self._fixed_predicates = tuple(sorted(self.fixed.items()))
        # Cumulative leaf-fraction denominators: _denominators[d] = number of
        # level-d nodes under the subtree root = prod of first d free sizes.
        denominators = [1]
        for size in self._free_sizes:
            denominators.append(denominators[-1] * size)
        self._denominators = tuple(denominators)
        # Attribute order for the prefix index: fixed attributes first (they
        # are "above the root" of the subtree), then the free order.
        self.attr_order = tuple(sorted(self.fixed)) + self.free_order

    @property
    def max_depth(self) -> int:
        """Depth of the leaves (number of free attributes)."""
        return len(self.free_order)

    def register(self, interface: TopKInterface) -> None:
        """Pre-register this tree's attribute order so queries use the index."""
        interface.register_attr_order(self.attr_order)

    # ------------------------------------------------------------------
    # Signatures and node queries
    # ------------------------------------------------------------------
    def random_signature(self, rng: random.Random) -> Signature:
        """Uniformly choose a leaf, i.e. one value per free attribute."""
        return tuple(rng.randrange(size) for size in self._free_sizes)

    def num_leaves(self) -> int:
        """Number of leaves of this (sub)tree."""
        return self._denominators[-1]

    def query_at(self, signature: Signature, depth: int) -> ConjunctiveQuery:
        """The node at ``depth`` on the path defined by ``signature``."""
        if depth < 0 or depth > self.max_depth:
            raise QueryError(f"depth {depth} out of range [0, {self.max_depth}]")
        free_predicates = tuple(
            (self.free_order[i], signature[i]) for i in range(depth)
        )
        return ConjunctiveQuery(self._fixed_predicates + free_predicates)

    def selection_probability(self, depth: int) -> float:
        """p(q): probability a random drill-down passes the depth-d node."""
        return 1.0 / self._denominators[depth]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"QueryTree(free={len(self.free_order)} attrs, "
            f"fixed={self.fixed})"
        )
