"""Closed-form theory from §3.2.2: when does reissuing beat restarting?

Implements Theorem 3.2's standard-error ratio bound for the deletion-only
worst case, and the drill-down-depth lower bound (16) it rests on.  These
are used by tests (sanity of the implementation against the theory) and are
exposed so users can predict, from coarse database statistics, whether
REISSUE is expected to win on their workload — e.g. Figure 7's k=1 regime
where RESTART wins is exactly where this bound exceeds 1.
"""

from __future__ import annotations

import math
from typing import Sequence


def restart_expected_cost_lower_bound(
    n: int, k: int, max_domain_size: int
) -> float:
    """Eq. (16): E[c_S] >= log(n/k) / log(max |U_i|).

    The expected root-to-terminal path length of a fresh drill-down over an
    ``n``-tuple database with a top-``k`` interface.
    """
    if n <= 0 or k <= 0:
        raise ValueError("n and k must be positive")
    if max_domain_size < 2:
        raise ValueError("max domain size must be at least 2")
    if n <= k:
        return 0.0
    return math.log(n / k) / math.log(max_domain_size)


def reissue_error_ratio_bound(
    n: int, nd: int, k: int, domain_sizes: Sequence[int]
) -> float:
    """Theorem 3.2, Eq. (7): upper bound on s_I / s_S after deleting nd of n.

    ``s_I`` is REISSUE's standard error on the *new* database, ``s_S``
    RESTART's on the old one.  A bound below 1 certifies REISSUE wins in
    the deletion-only worst case.
    """
    if not 0 <= nd <= n:
        raise ValueError("nd must be within [0, n]")
    if not domain_sizes:
        raise ValueError("domain_sizes must be non-empty")
    if n <= k:
        # Degenerate: the root never overflows, both algorithms read the
        # whole database with one query.
        return 1.0
    survival = 1.0 - nd / n
    max_log_domain = max(math.log(size) for size in domain_sizes)
    depth_term = 2.0 * max_log_domain / (math.log(n) - math.log(k))
    underflow_term = (nd / n) ** (k + 1)
    return survival * math.sqrt(depth_term + underflow_term)


def reissue_beats_restart(
    n: int, nd: int, k: int, domain_sizes: Sequence[int]
) -> bool:
    """Sufficient condition for s_I < s_S (Theorem 3.2's closing remark).

    When the expected fresh-drill-down depth is at least 2, the bound
    simplifies to ``s_I^2 <= (1 - (nd/n)^2) s_S^2 < s_S^2``.
    """
    expected_depth = restart_expected_cost_lower_bound(
        n, k, max(domain_sizes)
    )
    if expected_depth >= 2.0 and nd > 0:
        return True
    return reissue_error_ratio_bound(n, nd, k, domain_sizes) < 1.0


def reissue_variance_ratio_no_change(h1: int, h2: int, h: int, h_prime: int) -> float:
    """§3.2.1 Example 1: variance ratio REISSUE/RESTART for |Di|-|Di-1|.

    With no database change, REISSUE updating ``h1`` drill-downs and adding
    ``h2`` new ones has variance ``sigma^2 * h2 / (h1 (h1+h2))`` against
    RESTART's ``sigma^2 (1/h + 1/h')``; the ratio is independent of sigma.
    """
    if min(h1, h, h_prime) <= 0 or h2 < 0:
        raise ValueError("drill-down counts must be positive (h2 >= 0)")
    reissue = h2 / (h1 * (h1 + h2)) if h2 else 0.0
    restart = 1.0 / h + 1.0 / h_prime
    return reissue / restart
