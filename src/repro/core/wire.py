"""Wire encoding helpers for report/result serialization.

Estimates legitimately contain ``nan`` (no completed drill-downs yet) and
``inf`` (unknown variance).  Strict JSON has neither, so the ``to_dict`` /
``from_dict`` pairs on :class:`~repro.core.estimators.base.RoundReport`,
:class:`~repro.api.config.EngineConfig` and
:class:`~repro.experiments.metrics.ExperimentResult` route every float
through these helpers: non-finite values become the strings ``"nan"`` /
``"inf"`` / ``"-inf"`` on the way out and are restored exactly on the way
in, so ``json.dumps(..., allow_nan=False)`` round-trips losslessly.
"""

from __future__ import annotations

import math
from typing import Mapping

#: Wire spellings of the non-finite floats, chosen to be unambiguous when
#: they appear in a JSON number position.
_NON_FINITE = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def encode_float(value: float) -> float | str:
    """A float as a strict-JSON-safe value."""
    value = float(value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def decode_float(value: float | int | str) -> float:
    """Invert :func:`encode_float`."""
    if isinstance(value, str):
        try:
            return _NON_FINITE[value]
        except KeyError:
            raise ValueError(f"not a wire-encoded float: {value!r}") from None
    return float(value)


def encode_float_map(values: Mapping[str, float]) -> dict[str, float | str]:
    """A ``name -> float`` mapping with non-finite values wire-encoded."""
    return {name: encode_float(value) for name, value in values.items()}


def decode_float_map(values: Mapping[str, float | str]) -> dict[str, float]:
    """Invert :func:`encode_float_map`."""
    return {name: decode_float(value) for name, value in values.items()}
