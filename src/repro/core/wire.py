"""Wire encoding helpers for report/result serialization.

Two concerns live here:

**Non-finite floats.**  Estimates legitimately contain ``nan`` (no
completed drill-downs yet) and ``inf`` (unknown variance).  Strict JSON
has neither, so the ``to_dict`` / ``from_dict`` pairs on
:class:`~repro.core.estimators.base.RoundReport`,
:class:`~repro.api.config.EngineConfig` and
:class:`~repro.experiments.metrics.ExperimentResult` route every float
through these helpers: non-finite values become the strings ``"nan"`` /
``"inf"`` / ``"-inf"`` on the way out and are restored exactly on the way
in, so ``json.dumps(..., allow_nan=False)`` round-trips losslessly.

**Schema versioning.**  Every wire form carries a ``schema_version`` key
(:data:`SCHEMA_VERSION`, stamped via :func:`stamp`) so payloads are
self-describing across releases.  Decoding is *forward tolerant*:

* unknown keys are ignored (a newer producer may add fields);
* a missing ``schema_version`` means version 0 (payloads produced before
  versioning landed);
* :func:`wire_version` never rejects a higher version — new fields must be
  additive, which is exactly what tolerant readers allow.

Decode failures raise :class:`~repro.errors.WireFormatError` (a
``ValueError`` subclass during the migration window — see the note in
:mod:`repro.errors`).
"""

from __future__ import annotations

import math
from typing import Mapping

from ..errors import WireFormatError

#: Current wire schema version, stamped into every ``to_dict()`` payload.
SCHEMA_VERSION = 1

#: Wire spellings of the non-finite floats, chosen to be unambiguous when
#: they appear in a JSON number position.
_NON_FINITE = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def stamp(payload: dict) -> dict:
    """Add the current ``schema_version`` to a payload (returned as-is)."""
    payload["schema_version"] = SCHEMA_VERSION
    return payload


def wire_version(payload: Mapping) -> int:
    """The schema version a wire payload declares; missing = 0.

    Version 0 covers every payload produced before versioning landed; the
    integer is returned (not range-checked) so tolerant readers can log or
    branch on versions newer than they were built for.
    """
    value = payload.get("schema_version", 0)
    try:
        return int(value)
    except (TypeError, ValueError):
        raise WireFormatError(
            f"not a wire schema version: {value!r}"
        ) from None


def encode_float(value: float) -> float | str:
    """A float as a strict-JSON-safe value."""
    value = float(value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def decode_float(value: float | int | str) -> float:
    """Invert :func:`encode_float`."""
    if isinstance(value, str):
        try:
            return _NON_FINITE[value]
        except KeyError:
            raise WireFormatError(
                f"not a wire-encoded float: {value!r}"
            ) from None
    return float(value)


def encode_float_map(values: Mapping[str, float]) -> dict[str, float | str]:
    """A ``name -> float`` mapping with non-finite values wire-encoded."""
    return {name: encode_float(value) for name, value in values.items()}


def decode_float_map(values: Mapping[str, float | str]) -> dict[str, float]:
    """Invert :func:`encode_float_map`."""
    return {name: decode_float(value) for name, value in values.items()}
