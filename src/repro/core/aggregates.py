"""Aggregate query specifications (paper §2.2).

*Single-round* aggregates have the form::

    SELECT AGG(f(t)) FROM D_i WHERE <selection condition>

with AGG in {COUNT, SUM, AVG}, ``f`` any per-tuple function and the
selection any per-tuple predicate ``g``.  COUNT and SUM are *linear*: a
drill-down terminating at node ``q`` contributes
``sum(f(t) for returned t with g(t)) / p(q)``, an unbiased estimate
(Theorem 3.1).  AVG and percentage aggregates are ratios of two linear
specs.

*Trans-round* aggregates reference several rounds; the two studied in the
paper's evaluation are the size change ``|D_i| - |D_{i-1}|`` and the
running average of COUNT over a window.

Selection pushdown: when the selection is a conjunction of categorical
equalities, the spec exposes ``interface_predicates`` so estimators can
restrict the query tree to the matching subtree (§3.3) — far fewer wasted
drill-downs.  Non-categorical residual predicates (e.g. on a measure) are
still applied tuple-by-tuple via ``g``.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..errors import SchemaError
from ..hiddendb.schema import Schema
from ..hiddendb.tuples import HiddenTuple, TupleBatch
from .drilldown import DrillOutcome
from .tree import QueryTree

#: Optional per-tuple residual predicate.
TuplePredicate = Callable[[HiddenTuple], bool]

#: Per-tuple value function for SUM aggregates.
TupleFunction = Callable[[HiddenTuple], float]

#: Optional columnar twin of ``f``: per-row values of a whole batch.
ColumnFunction = Callable[[TupleBatch], np.ndarray]


class AggregateSpec:
    """A linear (COUNT or SUM) aggregate over the current round's database.

    Parameters
    ----------
    name:
        Unique identifier, used as the key in every report.
    f:
        Per-tuple value; COUNT uses the constant 1.
    selection:
        Residual per-tuple predicate (after pushdown), or ``None``.
    interface_predicates:
        ``{attr_index: value_index}`` equality predicates that estimators
        may push into the query tree.
    column_f:
        Optional columnar twin of ``f`` (batch -> per-row value vector).
        When present and there is no residual ``selection``, exact ground
        truth over columnar heap segments is computed without
        materializing tuples.
    """

    #: Wire description that rebuilds this spec (set by the factory
    #: helpers below when the spec is expressible as one; ``None`` for
    #: specs carrying custom callables).  See
    #: :func:`repro.service.protocol.spec_to_wire`.
    wire_form: dict | None = None

    def __init__(
        self,
        name: str,
        f: TupleFunction,
        selection: TuplePredicate | None = None,
        interface_predicates: Mapping[int, int] | None = None,
        column_f: ColumnFunction | None = None,
    ):
        self.name = name
        self.f = f
        self.selection = selection
        self.interface_predicates = (
            dict(interface_predicates) if interface_predicates else {}
        )
        self.column_f = column_f

    # -- evaluation over tuples ----------------------------------------
    def tuple_value(self, t: HiddenTuple) -> float:
        """f(t)·g(t): the tuple's contribution to the aggregate."""
        if self.selection is not None and not self.selection(t):
            return 0.0
        return self.f(t)

    def matches_pushdown(self, t: HiddenTuple) -> bool:
        """True if the tuple satisfies the pushdown predicates."""
        values = t.values
        for attr_index, value_index in self.interface_predicates.items():
            if values[attr_index] != value_index:
                return False
        return True

    def full_tuple_value(self, t: HiddenTuple) -> float:
        """Contribution including pushdown predicates (for ground truth)."""
        if not self.matches_pushdown(t):
            return 0.0
        return self.tuple_value(t)

    # -- estimation plumbing --------------------------------------------
    def contribution(self, outcome: DrillOutcome, tree: QueryTree) -> float:
        """Unbiased per-drill-down estimate ``Q(q)/p(q)`` from an outcome.

        When the tree does *not* contain this spec's pushdown predicates
        (shared drill-downs for several aggregates), the predicates are
        applied tuple-wise instead — still unbiased, just higher variance.

        A result carrying a deferred columnar page (the columnar query
        plane) is totalled from its column vectors when this spec has a
        columnar evaluation — COUNT reads just the page size, SUM one
        ordered cumsum — without materialising a single tuple.
        """
        result = outcome.result
        if result.underflow:
            return 0.0
        pushdown_in_tree = all(
            tree.fixed.get(a) == v
            for a, v in self.interface_predicates.items()
        )
        page = getattr(result, "page", None)
        if page is not None:
            total = self._page_total(page, pushdown_in_tree)
            if total is not None:
                return total / tree.selection_probability(outcome.depth)
        if pushdown_in_tree:
            total = sum(self.tuple_value(t) for t in result.tuples)
        else:
            total = sum(
                self.tuple_value(t)
                for t in result.tuples
                if self.matches_pushdown(t)
            )
        return total / tree.selection_probability(outcome.depth)

    def _page_total(self, page, pushdown_in_tree: bool) -> float | None:
        """Columnar twin of the page sum; ``None`` = no columnar path.

        Must match the scalar sum bit for bit: values are accumulated in
        page order with ``np.cumsum`` (sequential adds, the same float
        operations as the per-tuple ``sum``), and the COUNT shortcut is a
        float that is exact for any page size.
        """
        if self.selection is not None or self.column_f is None:
            return None
        if pushdown_in_tree and self.column_f is _ones_column:
            return float(page.page_size)
        batch = page.page_batch()
        values = np.asarray(self.column_f(batch), dtype=np.float64)
        if not pushdown_in_tree and self.interface_predicates:
            mask = np.ones(len(values), dtype=bool)
            for attr_index, value_index in self.interface_predicates.items():
                mask &= batch.values[:, attr_index] == value_index
            values = values[mask]
        if not len(values):
            return 0.0
        return float(np.cumsum(values)[-1])

    def batch_total(self, batch: TupleBatch, start: float = 0.0) -> float:
        """Exact contribution of a columnar batch (columnar specs only).

        ``start`` is folded in as the first accumulation term, and the
        rows are accumulated strictly left to right (cumsum), so chaining
        ``batch_total`` over heap segments reproduces the scalar plane's
        single sequential Python sum bit for bit (numpy's pairwise
        ``.sum()``, or summing per-segment subtotals, would not).
        """
        if self.column_f is None or self.selection is not None:
            raise SchemaError(
                f"spec {self.name!r} has no columnar evaluation"
            )
        values = np.asarray(self.column_f(batch), dtype=np.float64)
        if self.interface_predicates:
            mask = np.ones(len(batch), dtype=bool)
            for attr_index, value_index in self.interface_predicates.items():
                mask &= batch.values[:, attr_index] == value_index
            values = values[mask]
        if not len(values):
            return start
        return float(np.cumsum(np.concatenate(((start,), values)))[-1])

    def ground_truth(self, db) -> float:
        """Exact value by full scan (simulator-side only).

        Columnar specs sum frozen heap blocks vectorized and only fall
        back to per-tuple evaluation for the scalar remainder; the
        accumulation order matches the per-tuple scan exactly.
        """
        store = getattr(db, "store", None)
        if (
            self.column_f is not None
            and self.selection is None
            and store is not None
            and hasattr(store, "segments")
        ):
            batches, rest = store.segments()
            total = 0.0
            for batch in batches:
                total = self.batch_total(batch, total)
            for t in rest:
                total += self.full_tuple_value(t)
            return total
        return sum(self.full_tuple_value(t) for t in db.tuples())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AggregateSpec({self.name!r})"


class RatioSpec:
    """AGG expressed as numerator/denominator of two linear specs.

    Covers AVG (SUM/COUNT) and percentage aggregates
    (COUNT(condition)/COUNT(*)).  Estimators estimate both components from
    the same drill-downs and report the ratio; per the paper this is only
    asymptotically unbiased.
    """

    #: Wire description that rebuilds this spec (see AggregateSpec).
    wire_form: dict | None = None

    def __init__(self, name: str, numerator: AggregateSpec,
                 denominator: AggregateSpec):
        self.name = name
        self.numerator = numerator
        self.denominator = denominator

    @property
    def interface_predicates(self) -> dict[int, int]:
        """Pushdown predicates shared by both components (tree-safe set)."""
        shared = {}
        for key, value in self.numerator.interface_predicates.items():
            if self.denominator.interface_predicates.get(key) == value:
                shared[key] = value
        return shared

    def ground_truth(self, db) -> float:
        denominator = self.denominator.ground_truth(db)
        if denominator == 0:
            return float("nan")
        return self.numerator.ground_truth(db) / denominator

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RatioSpec({self.name!r})"


class SizeChangeSpec:
    """Trans-round aggregate ``Q(D_i) - Q(D_{i-1})`` for a linear base spec."""

    #: Wire description that rebuilds this spec (see AggregateSpec).
    wire_form: dict | None = None

    def __init__(self, name: str, base: AggregateSpec):
        self.name = name
        self.base = base

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SizeChangeSpec({self.name!r} over {self.base.name!r})"


class RunningAverageSpec:
    """Trans-round aggregate AVG(Q(D_i), ..., Q(D_{i-w+1})) of a base spec."""

    #: Wire description that rebuilds this spec (see AggregateSpec).
    wire_form: dict | None = None

    def __init__(self, name: str, base: AggregateSpec, window: int):
        if window < 1:
            raise ValueError("window must be at least 1")
        self.name = name
        self.base = base
        self.window = window

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RunningAverageSpec({self.name!r}, w={self.window})"


#: Anything an estimator can be asked to track.
AnySpec = AggregateSpec | RatioSpec | SizeChangeSpec | RunningAverageSpec


# ----------------------------------------------------------------------
# Factory helpers
# ----------------------------------------------------------------------
def _pushdown_from_labels(
    schema: Schema, where: Mapping[str, str] | None
) -> dict[int, int]:
    predicates: dict[int, int] = {}
    if where:
        for attr_name, label in where.items():
            attr_index = schema.attribute_index(attr_name)
            predicates[attr_index] = schema.attributes[attr_index].index_of(label)
    return predicates


def _ones_column(batch: TupleBatch) -> np.ndarray:
    return np.ones(len(batch), dtype=np.float64)


def count_all(name: str = "count") -> AggregateSpec:
    """COUNT(*) over the whole database."""
    spec = AggregateSpec(name, f=lambda t: 1.0, column_f=_ones_column)
    spec.wire_form = {"kind": "count", "name": name}
    return spec


def count_where(
    schema: Schema,
    where: Mapping[str, str],
    name: str | None = None,
    selection: TuplePredicate | None = None,
) -> AggregateSpec:
    """COUNT with a conjunctive categorical condition (pushdown-capable)."""
    predicates = _pushdown_from_labels(schema, where)
    if name is None:
        name = "count_" + "_".join(f"{k}={v}" for k, v in where.items())
    spec = AggregateSpec(
        name, f=lambda t: 1.0, selection=selection,
        interface_predicates=predicates, column_f=_ones_column,
    )
    if selection is None:
        # A residual callable cannot cross the wire; leave wire_form unset.
        spec.wire_form = {"kind": "count", "where": dict(where), "name": name}
    return spec


def sum_measure(
    schema: Schema,
    measure: str,
    where: Mapping[str, str] | None = None,
    name: str | None = None,
    selection: TuplePredicate | None = None,
) -> AggregateSpec:
    """SUM of a measure, with optional categorical condition."""
    measure_index = schema.measure_index(measure)
    predicates = _pushdown_from_labels(schema, where)
    if name is None:
        name = f"sum_{measure}"
    spec = AggregateSpec(
        name,
        f=lambda t: t.measure(measure_index),
        selection=selection,
        interface_predicates=predicates,
        column_f=lambda batch: batch.measures[:, measure_index],
    )
    if selection is None:
        spec.wire_form = {"kind": "sum", "measure": measure, "name": name}
        if where:
            spec.wire_form["where"] = dict(where)
    return spec


def avg_measure(
    schema: Schema,
    measure: str,
    where: Mapping[str, str] | None = None,
    name: str | None = None,
) -> RatioSpec:
    """AVG of a measure = SUM/COUNT ratio spec."""
    if name is None:
        name = f"avg_{measure}"
    spec = RatioSpec(
        name,
        numerator=sum_measure(schema, measure, where, name=f"{name}__sum"),
        denominator=count_where(schema, where or {}, name=f"{name}__count")
        if where
        else count_all(f"{name}__count"),
    )
    spec.wire_form = {"kind": "avg", "measure": measure, "name": name}
    if where:
        spec.wire_form["where"] = dict(where)
    return spec


def proportion_where(
    schema: Schema, where: Mapping[str, str], name: str | None = None
) -> RatioSpec:
    """Percentage aggregate COUNT(condition)/COUNT(*)."""
    if name is None:
        name = "share_" + "_".join(f"{k}={v}" for k, v in where.items())
    numerator = count_where(schema, where, name=f"{name}__num")
    # The denominator intentionally has no pushdown: it counts everything.
    spec = RatioSpec(name, numerator, count_all(f"{name}__den"))
    spec.wire_form = {
        "kind": "proportion", "where": dict(where), "name": name,
    }
    return spec


def size_change(base: AggregateSpec | None = None,
                name: str = "size_change") -> SizeChangeSpec:
    """|D_i| - |D_{i-1}| (or the change of any linear aggregate)."""
    spec = SizeChangeSpec(name, base if base is not None else count_all())
    if base is None or base.wire_form is not None:
        spec.wire_form = {"kind": "size_change", "name": name}
        if base is not None:
            spec.wire_form["base"] = dict(base.wire_form)
    return spec


def running_average(
    window: int,
    base: AggregateSpec | None = None,
    name: str | None = None,
) -> RunningAverageSpec:
    """Running average of COUNT (or any linear aggregate) over a window."""
    explicit_base = base
    base = base if base is not None else count_all()
    if name is None:
        name = f"running_avg_{window}"
    spec = RunningAverageSpec(name, base, window)
    if explicit_base is None or explicit_base.wire_form is not None:
        spec.wire_form = {
            "kind": "running_average", "window": window, "name": name,
        }
        if explicit_base is not None:
            spec.wire_form["base"] = dict(explicit_base.wire_form)
    return spec


def base_specs_of(specs) -> list[AggregateSpec]:
    """The unique linear specs underlying a mixed spec collection."""
    seen: dict[str, AggregateSpec] = {}
    for spec in specs:
        if isinstance(spec, AggregateSpec):
            components = [spec]
        elif isinstance(spec, RatioSpec):
            components = [spec.numerator, spec.denominator]
        elif isinstance(spec, (SizeChangeSpec, RunningAverageSpec)):
            components = [spec.base]
        else:
            raise SchemaError(f"unsupported spec type: {type(spec).__name__}")
        for component in components:
            existing = seen.get(component.name)
            if existing is not None and existing is not component:
                raise SchemaError(
                    f"two different specs share the name {component.name!r}"
                )
            seen[component.name] = component
    return list(seen.values())
