"""Extensions beyond the paper's core: its §8 future-work directions."""

from .counts import CountAssistedEstimator, CountRevealingInterface

__all__ = ["CountAssistedEstimator", "CountRevealingInterface"]
