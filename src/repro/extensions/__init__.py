"""Extensions beyond the paper's core: its §8 future-work directions."""

from .counts import (
    CountAssistedEstimator,
    CountRevealingInterface,
    count_assisted_factory,
)

__all__ = [
    "CountAssistedEstimator",
    "CountRevealingInterface",
    "count_assisted_factory",
]
