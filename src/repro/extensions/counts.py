"""COUNT-metadata-guided estimation (paper §8, future-work direction 1).

Many real interfaces display the total number of matches ("showing 1-50 of
1,234 results") even though they return only the top-k page.  The paper's
core model deliberately ignores this; its conclusion sketches "a study of
how meta data such as COUNT can be used to guide the design of drill
downs" as future work.  This module builds that study's substrate and a
first estimator:

* :class:`CountRevealingInterface` wraps any :class:`TopKInterface` and
  adds the matching count to every result — the simulator-side analogue of
  a site that displays result totals.
* :class:`CountAssistedEstimator` exploits the metadata two ways:

  1. **COUNT aggregates are read off directly**: the revealed root count
     *is* COUNT(*) under the tree's fixed predicates — one query, zero
     variance.
  2. **SUM/AVG drill-downs become count-proportional**: at every level the
     estimator queries each child once (reading its revealed count) and
     descends into a child with probability proportional to its count.
     The terminal node ``q`` is therefore reached with probability exactly
     ``count(q) / count(root)``, so ``sum_q(f) / p(q)`` is unbiased and
     its variance reflects only the spread of per-tuple values *between*
     nodes — not the (much larger) spread of node sizes that dominates
     the uniform drill-down's variance.

  The child scan costs one query per sibling, all charged to the budget
  honestly; with small-domain attributes near the root the walk costs a
  small multiple of the uniform drill-down while typically cutting SUM
  variance by a large factor (see the count-metadata benchmark).
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from ..core.aggregates import AggregateSpec, AnySpec, RatioSpec, base_specs_of
from ..core.estimators.base import RoundReport, shared_pushdown
from ..core.estimators.registry import register_estimator
from ..core.tree import QueryTree
from ..core.variance import mean, ratio_variance, variance_of_mean
from ..errors import EstimationError, QueryBudgetExhausted
from ..hiddendb.interface import TopKInterface
from ..hiddendb.query import ConjunctiveQuery
from ..hiddendb.result import QueryResult
from ..hiddendb.session import QuerySession
from ..hiddendb.tuples import HiddenTuple


class CountingResult(QueryResult):
    """A result page that also reveals the total matching count."""

    __slots__ = ("matching_count",)

    def __init__(self, base: QueryResult, matching_count: int):
        super().__init__(
            base.status,
            base.k,
            tuples=None,
            loader=lambda: base.tuples,
            # Forward the columnar plane's deferred page so column-level
            # consumers (aggregate contributions) keep their fast path.
            page=base.page,
        )
        self.matching_count = matching_count


class CountRevealingInterface:
    """A top-k interface that also displays "N results found".

    Wraps a plain :class:`TopKInterface`; cost accounting is unchanged —
    revealing the count is free for the server, which computes it anyway
    to paginate.
    """

    def __init__(self, inner: TopKInterface):
        self.inner = inner

    @property
    def k(self) -> int:
        return self.inner.k

    @property
    def schema(self):
        return self.inner.schema

    @property
    def current_round(self) -> int:
        return self.inner.current_round

    @property
    def stats(self):
        return self.inner.stats

    @property
    def db(self):
        return self.inner.db

    def register_attr_order(self, attr_order: Sequence[int]) -> None:
        self.inner.register_attr_order(attr_order)

    def search(self, query: ConjunctiveQuery) -> CountingResult:
        result = self.inner.search(query)
        return CountingResult(result, self._matching_count(query, result))

    def _matching_count(
        self, query: ConjunctiveQuery, result: QueryResult
    ) -> int:
        if not result.overflow:
            # len() reads the deferred page's size without materialising it.
            return len(result)
        prefix = self.inner._match_prefix_order(query)
        if prefix is not None:
            attr_order, prefix_values = prefix
            index = self.inner.db.store.ensure_index(attr_order)
            return index.count_prefix(prefix_values)
        return sum(1 for t in self.inner.db.tuples() if query.matches(t))


class WeightedSample:
    """Terminal state of one count-proportional walk."""

    __slots__ = ("tuples", "count", "probability", "leaf_overflow")

    def __init__(
        self,
        tuples: tuple[HiddenTuple, ...],
        count: int,
        probability: float,
        leaf_overflow: bool,
    ):
        self.tuples = tuples
        self.count = count
        #: Exact probability this node was reached: count / root count.
        self.probability = probability
        self.leaf_overflow = leaf_overflow


class CountAssistedEstimator:
    """Count-proportional drill-downs over a count-revealing interface.

    COUNT aggregates matching the tree's pushdown are answered exactly from
    the revealed root count; SUM/AVG aggregates use weighted walks.  The
    API mirrors the core estimators: construct once, call :meth:`run_round`
    every round.
    """

    name = "COUNT-ASSISTED"

    def __init__(
        self,
        interface: CountRevealingInterface,
        specs: Sequence[AnySpec],
        budget_per_round: int,
        seed: int = 0,
        push_selection: bool = True,
    ):
        if not isinstance(interface, CountRevealingInterface):
            raise EstimationError(
                "CountAssistedEstimator needs a CountRevealingInterface"
            )
        if budget_per_round < 1:
            raise EstimationError("budget_per_round must be positive")
        self.interface = interface
        self.specs = list(specs)
        if not self.specs:
            raise EstimationError("at least one aggregate spec is required")
        self.base_specs = base_specs_of(self.specs)
        fixed = shared_pushdown(self.base_specs) if push_selection else {}
        self.tree = QueryTree(interface.schema, fixed=fixed)
        self.tree.register(interface.inner)
        self.budget_per_round = budget_per_round
        self.rng = random.Random(seed)
        self.history: list[RoundReport] = []

    # ------------------------------------------------------------------
    def run_round(self) -> RoundReport:
        session = QuerySession(self.interface, budget=self.budget_per_round)
        round_index = self.interface.current_round
        root = session.search(self.tree.query_at((), 0))
        samples: list[WeightedSample] = []
        leaf_overflows = 0
        if self._needs_walks():
            while True:
                try:
                    sample = self._weighted_walk(session, root)
                except QueryBudgetExhausted:
                    break
                if sample is None:
                    break
                samples.append(sample)
                leaf_overflows += sample.leaf_overflow
        estimates, variances = self._estimates(root, samples)
        report = RoundReport(
            round_index,
            estimates,
            variances,
            queries_used=session.queries_used,
            drilldowns_new=len(samples),
            leaf_overflows=leaf_overflows,
            active_drilldowns=len(samples),
        )
        self.history.append(report)
        return report

    def _needs_walks(self) -> bool:
        return any(
            not self._answered_by_root_count(spec) for spec in self.base_specs
        )

    # ------------------------------------------------------------------
    def _weighted_walk(
        self, session: QuerySession, root: CountingResult
    ) -> WeightedSample | None:
        """One count-proportional descent to a non-overflowing node."""
        root_count = root.matching_count
        if root_count == 0:
            return None
        if not root.overflow:
            return WeightedSample(root.tuples, root_count, 1.0, False)
        prefix: list[int] = []
        probability = 1.0
        depth = 0
        while True:
            attr = self.tree.free_order[depth]
            fanout = self.interface.schema.attributes[attr].size
            counts = []
            results = []
            for value in range(fanout):
                child = self.tree.query_at(tuple(prefix + [value]), depth + 1)
                result = session.search(child)
                counts.append(result.matching_count)
                results.append(result)
            total = sum(counts)
            if total == 0:
                return None  # database changed mid-walk (intra-round)
            pick = self.rng.choices(range(fanout), weights=counts)[0]
            probability *= counts[pick] / total
            prefix.append(pick)
            depth += 1
            chosen = results[pick]
            if not chosen.overflow:
                return WeightedSample(
                    chosen.tuples, counts[pick], probability, False
                )
            if depth == self.tree.max_depth:
                return WeightedSample(
                    chosen.tuples, counts[pick], probability, True
                )

    # ------------------------------------------------------------------
    def _estimates(self, root: CountingResult, samples):
        estimates: dict[str, float] = {}
        variances: dict[str, float] = {}
        for spec in self.base_specs:
            if self._answered_by_root_count(spec):
                estimates[spec.name] = float(root.matching_count)
                variances[spec.name] = 0.0
                continue
            values = []
            for sample in samples:
                node_total = sum(
                    spec.tuple_value(t)
                    for t in sample.tuples
                    if spec.matches_pushdown(t)
                )
                values.append(node_total / sample.probability)
            if values:
                estimates[spec.name] = mean(values)
                variances[spec.name] = variance_of_mean(values)
            else:
                estimates[spec.name] = math.nan
                variances[spec.name] = math.inf
        for spec in self.specs:
            if isinstance(spec, RatioSpec):
                numerator = estimates.get(spec.numerator.name, math.nan)
                denominator = estimates.get(spec.denominator.name, math.nan)
                estimates[spec.name] = (
                    numerator / denominator if denominator else math.nan
                )
                variances[spec.name] = ratio_variance(
                    numerator,
                    variances.get(spec.numerator.name, math.inf),
                    denominator,
                    variances.get(spec.denominator.name, math.inf),
                )
        return estimates, variances

    def _answered_by_root_count(self, spec: AggregateSpec) -> bool:
        """True when the revealed root count answers the spec exactly.

        That requires f(t) identically 1, no residual selection, and
        pushdown predicates fully contained in the tree's fixed set.
        """
        if spec.selection is not None:
            return False
        for attr, value in spec.interface_predicates.items():
            if self.tree.fixed.get(attr) != value:
                return False
        try:
            return spec.f(_COUNT_PROBE) == 1.0
        except Exception:
            # Arbitrary user f(t) may reject the probe; be conservative.
            return False


#: Probe tuple used to detect f(t) == 1 (plain COUNT) specs.
_COUNT_PROBE = HiddenTuple(0, b"", (), 0.0)


def count_assisted_factory(
    interface,
    specs: Sequence[AnySpec],
    budget_per_round: int,
    seed: int = 0,
    **options,
) -> CountAssistedEstimator:
    """Estimator-registry adapter: wrap a plain interface automatically.

    Registered as ``"COUNT-ASSISTED"`` so engine facades and experiment
    harnesses can name this estimator like the core three; a plain
    :class:`~repro.hiddendb.interface.TopKInterface` is wrapped in a
    :class:`CountRevealingInterface` on the way in (the simulated site is
    then assumed to display result totals).
    """
    if not isinstance(interface, CountRevealingInterface):
        interface = CountRevealingInterface(interface)
    return CountAssistedEstimator(
        interface, specs, budget_per_round=budget_per_round, seed=seed,
        **options,
    )


register_estimator("COUNT-ASSISTED", count_assisted_factory)
