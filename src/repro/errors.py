"""Typed exception taxonomy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller can catch everything library-specific with a single ``except``
clause.  Every class additionally carries a **stable machine-readable
code** (:attr:`ReproError.code`) and a default HTTP status
(:attr:`ReproError.http_status`): the service plane (:mod:`repro.service`)
maps exceptions to wire error payloads through :func:`wire_error` /
:func:`error_from_wire` — this module is the *one* place where that
mapping lives, so the in-process facade and the HTTP layer can never
disagree about what an error means.

Wire error payloads have the shape::

    {"code": "UNKNOWN_TASK", "error_type": "UnknownTaskError",
     "message": "...", "details": {...}}

``code`` is the contract (stable across releases); ``error_type`` and
``message`` are human-facing and may change.

**Migration note (service-plane redesign).**  The facade boundary used to
surface a few ad-hoc ``ValueError``\\ s; those are now typed:

* malformed wire payloads (``repro.core.wire`` decode failures) raise
  :class:`WireFormatError` — still a ``ValueError`` subclass for one
  release, so existing ``except ValueError`` handlers keep working;
* ``Engine`` raises :class:`UnknownTaskError` / :class:`DuplicateTaskError`
  instead of bare :class:`ExperimentError` for task-table misses and
  double submissions — both subclass :class:`ExperimentError`, so existing
  handlers keep working.  Catch the specific classes (or match ``code``)
  going forward.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""

    #: Stable machine-readable identifier, the wire contract.
    code = "INTERNAL"
    #: Default HTTP status the service plane answers with.
    http_status = 500

    def details(self) -> dict:
        """Structured, JSON-safe extras for the wire payload."""
        return {}


class SchemaError(ReproError):
    """A schema definition or a value vector is invalid."""

    code = "SCHEMA_INVALID"
    http_status = 400


class QueryError(ReproError):
    """A search query is malformed (unknown attribute, bad value index)."""

    code = "QUERY_INVALID"
    http_status = 400


class QueryBudgetExhausted(ReproError):
    """The per-round query budget was exhausted mid-operation.

    Estimators catch this to stop work for the round; anything already
    charged to the budget stays charged (a real web API does not refund
    requests either).
    """

    code = "BUDGET_EXHAUSTED"
    http_status = 429

    def __init__(self, budget: int, message: str | None = None):
        self.budget = budget
        super().__init__(message or f"query budget of {budget} exhausted")

    def details(self) -> dict:
        return {"budget": self.budget}


class StaleResultError(ReproError):
    """A deferred result page was read after the database mutated.

    The columnar query plane defers page construction until a consumer
    reads it; the page is pinned to the database state at query time via a
    mutation epoch.  Supported workloads read pages before the next
    mutation (the intra-round driver freezes them through the session
    hook), so this error marks a flow outside the simulator's contract
    rather than silently returning post-mutation data.
    """

    code = "STALE_RESULT"
    http_status = 409


class EstimationError(ReproError):
    """An estimator cannot produce an estimate (e.g. no completed drill-downs)."""

    code = "ESTIMATION_FAILED"
    http_status = 500


class ExperimentError(ReproError):
    """An experiment/engine configuration is inconsistent or a run failed."""

    code = "CONFIG_INVALID"
    http_status = 400


class UnknownTaskError(ExperimentError):
    """A task name is not in the engine's task table."""

    code = "UNKNOWN_TASK"
    http_status = 404

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"no task named {name!r}")

    def details(self) -> dict:
        return {"task": self.name}


class DuplicateTaskError(ExperimentError):
    """A task name was submitted while a live task already owns it."""

    code = "DUPLICATE_TASK"
    http_status = 409

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"task {name!r} already submitted")

    def details(self) -> dict:
        return {"task": self.name}


class WireFormatError(ReproError, ValueError):
    """A wire payload cannot be decoded (bad float spelling, bad version).

    Subclasses ``ValueError`` for one release: ``repro.core.wire`` decode
    failures used to raise bare ``ValueError`` (see the migration note in
    the module docstring).
    """

    code = "WIRE_INVALID"
    http_status = 400


class AdmissionError(ReproError):
    """The budget governor refused work (the typed 429 of the service).

    Raised only after the degradation ladder is exhausted — the governor
    first shrinks the tenant's per-round query allowance, then widens its
    round cadence; refusal is the last step (see
    :mod:`repro.service.governor`).
    """

    code = "ADMISSION_REJECTED"
    http_status = 429

    def __init__(
        self,
        message: str,
        tenant: str | None = None,
        retry_after_rounds: int | None = None,
        remaining: int | None = None,
    ):
        self.tenant = tenant
        self.retry_after_rounds = retry_after_rounds
        self.remaining = remaining
        super().__init__(message)

    def details(self) -> dict:
        payload: dict = {}
        if self.tenant is not None:
            payload["tenant"] = self.tenant
        if self.retry_after_rounds is not None:
            payload["retry_after_rounds"] = self.retry_after_rounds
        if self.remaining is not None:
            payload["remaining"] = self.remaining
        return payload


#: Every public error class by its stable code (newest wins would be a bug:
#: codes are unique by construction; the assertion below guards that).
ERROR_CLASSES: dict[str, type[ReproError]] = {}
for _cls in (
    ReproError, SchemaError, QueryError, QueryBudgetExhausted,
    StaleResultError, EstimationError, ExperimentError, UnknownTaskError,
    DuplicateTaskError, WireFormatError, AdmissionError,
):
    assert _cls.code not in ERROR_CLASSES, _cls.code
    ERROR_CLASSES[_cls.code] = _cls
del _cls


def error_code(exc: BaseException) -> str:
    """The stable wire code of any exception (non-repro ones: INTERNAL)."""
    return exc.code if isinstance(exc, ReproError) else ReproError.code


def http_status_of(exc: BaseException) -> int:
    """The HTTP status the service plane answers ``exc`` with."""
    return (
        exc.http_status if isinstance(exc, ReproError)
        else ReproError.http_status
    )


def wire_error(exc: BaseException) -> dict:
    """The wire error payload of any exception — the single mapping point.

    Strict-JSON-safe; :func:`error_from_wire` rebuilds a typed exception
    from it on the client side.
    """
    details = exc.details() if isinstance(exc, ReproError) else {}
    return {
        "code": error_code(exc),
        "error_type": type(exc).__name__,
        "message": str(exc),
        "details": details,
    }


def error_from_wire(payload: dict) -> ReproError:
    """Rebuild a typed exception from a :func:`wire_error` payload.

    Unknown codes degrade to :class:`ReproError` (forward tolerance: a
    newer server may ship codes this client predates).  The specific
    constructor signatures are not reconstructed — the returned exception
    carries the message, the code via its class, and the raw details on
    ``.wire_details``.
    """
    if not isinstance(payload, dict):
        raise WireFormatError(f"not a wire error payload: {payload!r}")
    code = payload.get("code", ReproError.code)
    message = str(payload.get("message", code))
    cls = ERROR_CLASSES.get(code, ReproError)
    exc = cls.__new__(cls)
    Exception.__init__(exc, message)
    details = payload.get("details") or {}
    # Rehydrate the attributes details() reads (attribute <- details key),
    # so a round-tripped error keeps its structured fields observable.
    for attr, key in _REHYDRATED_ATTRS.get(code, ()):
        setattr(exc, attr, details.get(key))
    exc.wire_details = dict(details)
    return exc


#: ``code -> ((attribute, details key), ...)`` used by
#: :func:`error_from_wire` to restore structured fields.
_REHYDRATED_ATTRS: dict[str, tuple[tuple[str, str], ...]] = {
    "BUDGET_EXHAUSTED": (("budget", "budget"),),
    "UNKNOWN_TASK": (("name", "task"),),
    "DUPLICATE_TASK": (("name", "task"),),
    "ADMISSION_REJECTED": (
        ("tenant", "tenant"),
        ("retry_after_rounds", "retry_after_rounds"),
        ("remaining", "remaining"),
    ),
}
