"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller can catch everything library-specific with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""


class SchemaError(ReproError):
    """A schema definition or a value vector is invalid."""


class QueryError(ReproError):
    """A search query is malformed (unknown attribute, bad value index)."""


class QueryBudgetExhausted(ReproError):
    """The per-round query budget was exhausted mid-operation.

    Estimators catch this to stop work for the round; anything already
    charged to the budget stays charged (a real web API does not refund
    requests either).
    """

    def __init__(self, budget: int, message: str | None = None):
        self.budget = budget
        super().__init__(message or f"query budget of {budget} exhausted")


class StaleResultError(ReproError):
    """A deferred result page was read after the database mutated.

    The columnar query plane defers page construction until a consumer
    reads it; the page is pinned to the database state at query time via a
    mutation epoch.  Supported workloads read pages before the next
    mutation (the intra-round driver freezes them through the session
    hook), so this error marks a flow outside the simulator's contract
    rather than silently returning post-mutation data.
    """


class EstimationError(ReproError):
    """An estimator cannot produce an estimate (e.g. no completed drill-downs)."""


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent or an experiment failed."""
