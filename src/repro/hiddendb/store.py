"""Storage engine for the hidden database simulator.

The drill-down estimators issue only *prefix conjunctions*: with attributes
ordered ``Ao1, Ao2, ...`` a query-tree node at depth ``d`` fixes the first
``d`` attributes of that order.  If every tuple's key is its value vector
written in mixed radix (most significant digit = first attribute of the
order, least significant digits = the tuple id for uniqueness), a node is a
*contiguous key range* and "does this node overflow?" becomes two positional
bisects.

Components:

* :class:`SortedKeyList` — a blocked sorted list of integers (the same idea
  as ``sortedcontainers.SortedList``, reimplemented because this environment
  is offline): O(sqrt n) insert/delete, O(log n + #blocks) positional rank.
* :class:`PrefixIndex` — mixed-radix key codec plus a ``SortedKeyList`` for
  one attribute order.
* :class:`TupleStore` — the tuple heap plus any number of prefix indexes,
  with a mutation-event stream for ground-truth observers.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import SchemaError
from .schema import Schema
from .tuples import HiddenTuple

#: Target number of keys per block; blocks split at twice this size.
DEFAULT_BLOCK_SIZE = 1024


class SortedKeyList:
    """A sorted multiset of integers stored in balanced blocks.

    Supports the three operations the prefix index needs:

    * :meth:`add` / :meth:`remove` in O(sqrt n),
    * :meth:`rank` (count of keys strictly below a value) in
      O(log n + #blocks),
    * :meth:`iter_range` over a half-open key interval.
    """

    __slots__ = ("_blocks", "_maxes", "_size", "_block_size")

    def __init__(
        self,
        keys: Iterable[int] = (),
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        self._block_size = block_size
        self._blocks: list[list[int]] = []
        self._maxes: list[int] = []
        self._size = 0
        initial = sorted(keys)
        if initial:
            for start in range(0, len(initial), block_size):
                block = initial[start : start + block_size]
                self._blocks.append(block)
                self._maxes.append(block[-1])
            self._size = len(initial)

    def __len__(self) -> int:
        return self._size

    def _locate_block(self, key: int) -> int:
        """Index of the first block whose max is >= key (len for none)."""
        return bisect_left(self._maxes, key)

    def add(self, key: int) -> None:
        """Insert ``key`` keeping order; duplicates are allowed."""
        if not self._blocks:
            self._blocks.append([key])
            self._maxes.append(key)
            self._size = 1
            return
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            block_index -= 1
        block = self._blocks[block_index]
        insort(block, key)
        self._maxes[block_index] = block[-1]
        self._size += 1
        if len(block) > 2 * self._block_size:
            self._split_block(block_index)

    def _split_block(self, block_index: int) -> None:
        block = self._blocks[block_index]
        half = len(block) // 2
        right = block[half:]
        del block[half:]
        self._blocks.insert(block_index + 1, right)
        self._maxes[block_index] = block[-1]
        self._maxes.insert(block_index + 1, right[-1])

    def remove(self, key: int) -> None:
        """Remove one occurrence of ``key``; raise ``ValueError`` if absent."""
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            raise ValueError(f"key {key} not in SortedKeyList")
        block = self._blocks[block_index]
        position = bisect_left(block, key)
        if position == len(block) or block[position] != key:
            raise ValueError(f"key {key} not in SortedKeyList")
        del block[position]
        self._size -= 1
        if block:
            self._maxes[block_index] = block[-1]
        else:
            del self._blocks[block_index]
            del self._maxes[block_index]

    def __contains__(self, key: int) -> bool:
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            return False
        block = self._blocks[block_index]
        position = bisect_left(block, key)
        return position < len(block) and block[position] == key

    def rank(self, key: int) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            return self._size
        preceding = 0
        for i in range(block_index):
            preceding += len(self._blocks[i])
        return preceding + bisect_left(self._blocks[block_index], key)

    def count_range(self, lo: int, hi: int) -> int:
        """Number of keys in the half-open interval ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.rank(hi) - self.rank(lo)

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        """Yield keys in ``[lo, hi)`` in ascending order."""
        if hi <= lo:
            return
        block_index = self._locate_block(lo)
        while block_index < len(self._blocks):
            block = self._blocks[block_index]
            start = bisect_left(block, lo) if block[0] < lo else 0
            for position in range(start, len(block)):
                key = block[position]
                if key >= hi:
                    return
                yield key
            block_index += 1

    def __iter__(self) -> Iterator[int]:
        for block in self._blocks:
            yield from block

    def check_invariants(self) -> None:
        """Validate internal structure (used by property tests)."""
        total = 0
        previous_max = None
        for block, block_max in zip(self._blocks, self._maxes):
            assert block, "empty block retained"
            assert block == sorted(block), "unsorted block"
            assert block[-1] == block_max, "stale block max"
            if previous_max is not None:
                assert block[0] >= previous_max, "blocks out of order"
            previous_max = block_max
            total += len(block)
        assert total == self._size, "size counter out of sync"


class PrefixIndex:
    """Mixed-radix key index over one attribute order.

    The key of a tuple is::

        ((v[o1] * |U_o2| + v[o2]) * |U_o3| + ...) * TID_SPAN + tid

    so a depth-``d`` prefix (values for the first ``d`` attributes of the
    order) owns the contiguous range ``[code_d * span_d, (code_d+1) * span_d)``
    where ``span_d`` is the product of the remaining radices times
    ``TID_SPAN``.  Python's arbitrary-precision integers make this exact for
    any number of attributes.
    """

    __slots__ = ("attr_order", "_radices", "_spans", "_tid_span", "_keys")

    def __init__(
        self,
        schema: Schema,
        attr_order: Sequence[int],
        tid_span: int = 2**48,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        order = tuple(attr_order)
        if sorted(order) != list(range(schema.num_attributes)):
            raise SchemaError(
                "attr_order must be a permutation of all attribute indexes"
            )
        self.attr_order = order
        self._radices = tuple(schema.attributes[a].size for a in order)
        self._tid_span = tid_span
        # _spans[d] = width of a depth-d prefix's key range.
        spans = [tid_span]
        for radix in reversed(self._radices):
            spans.append(spans[-1] * radix)
        spans.reverse()  # spans[d] for d in 0..m
        self._spans = tuple(spans)
        self._keys = SortedKeyList(block_size=block_size)

    @property
    def depth(self) -> int:
        """Maximum prefix depth (number of attributes)."""
        return len(self.attr_order)

    def encode(self, t: HiddenTuple) -> int:
        """Full key of a tuple (value digits + tid)."""
        code = 0
        values = t.values
        for attr_index, radix in zip(self.attr_order, self._radices):
            code = code * radix + values[attr_index]
        return code * self._tid_span + t.tid

    def prefix_range(self, prefix_values: Sequence[int]) -> tuple[int, int]:
        """Half-open key interval of the node fixing ``prefix_values``.

        ``prefix_values`` are value indices for the first ``len(prefix)``
        attributes of this index's order.
        """
        depth = len(prefix_values)
        code = 0
        for position in range(depth):
            code = code * self._radices[position] + prefix_values[position]
        span = self._spans[depth]
        lo = code * span
        return lo, lo + span

    def add(self, t: HiddenTuple) -> None:
        self._keys.add(self.encode(t))

    def remove(self, t: HiddenTuple) -> None:
        self._keys.remove(self.encode(t))

    def count_prefix(self, prefix_values: Sequence[int]) -> int:
        """Number of stored tuples matching the prefix."""
        lo, hi = self.prefix_range(prefix_values)
        return self._keys.count_range(lo, hi)

    def iter_tids(self, prefix_values: Sequence[int]) -> Iterator[int]:
        """Yield tids of tuples matching the prefix (key order)."""
        lo, hi = self.prefix_range(prefix_values)
        tid_span = self._tid_span
        for key in self._keys.iter_range(lo, hi):
            yield key % tid_span

    def __len__(self) -> int:
        return len(self._keys)


class TupleStore:
    """Tuple heap plus registered prefix indexes and a mutation stream.

    Listeners registered via :meth:`subscribe` receive
    ``("insert", tuple)`` / ``("delete", tuple)`` events, which is how the
    experiment harness maintains exact ground truth in O(1) per mutation.
    """

    def __init__(self, schema: Schema, block_size: int = DEFAULT_BLOCK_SIZE):
        self.schema = schema
        self._block_size = block_size
        self._tuples: dict[int, HiddenTuple] = {}
        self._indexes: dict[tuple[int, ...], PrefixIndex] = {}
        self._listeners: list[Callable[[str, HiddenTuple], None]] = []

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, tid: int) -> bool:
        return tid in self._tuples

    def get(self, tid: int) -> HiddenTuple:
        return self._tuples[tid]

    def tuples(self) -> Iterator[HiddenTuple]:
        """Iterate over all stored tuples (no particular order)."""
        return iter(self._tuples.values())

    def subscribe(self, listener: Callable[[str, HiddenTuple], None]) -> None:
        """Register a mutation listener (``event in {"insert", "delete"}``)."""
        self._listeners.append(listener)

    def ensure_index(self, attr_order: Sequence[int]) -> PrefixIndex:
        """Get (or build, backfilling existing tuples) the index for an order."""
        key = tuple(attr_order)
        index = self._indexes.get(key)
        if index is None:
            index = PrefixIndex(self.schema, key, block_size=self._block_size)
            for t in self._tuples.values():
                index.add(t)
            self._indexes[key] = index
        return index

    def insert(self, t: HiddenTuple) -> None:
        """Insert a tuple; tids must be unique for the store's lifetime."""
        if t.tid in self._tuples:
            raise SchemaError(f"duplicate tid {t.tid}")
        self._tuples[t.tid] = t
        for index in self._indexes.values():
            index.add(t)
        for listener in self._listeners:
            listener("insert", t)

    def delete(self, tid: int) -> HiddenTuple:
        """Delete by tid and return the removed tuple."""
        t = self._tuples.pop(tid)
        for index in self._indexes.values():
            index.remove(t)
        for listener in self._listeners:
            listener("delete", t)
        return t

    def replace(self, t: HiddenTuple) -> None:
        """Swap the stored tuple with the same tid (measure updates)."""
        old = self._tuples[t.tid]
        if old.values != t.values:
            # Categorical change moves the tuple in every index; model it
            # as delete + insert so indexes and listeners stay consistent.
            self.delete(old.tid)
            self.insert(t)
            return
        self._tuples[t.tid] = t
        for listener in self._listeners:
            listener("delete", old)
            listener("insert", t)

    def random_tids(self, rng, count: int) -> list[int]:
        """Sample ``count`` distinct tids uniformly (for deletion schedules)."""
        population = list(self._tuples.keys())
        if count >= len(population):
            return population
        return rng.sample(population, count)
