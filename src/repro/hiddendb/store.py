"""Storage layer of the hidden database simulator.

The drill-down estimators issue only *prefix conjunctions*: with attributes
ordered ``Ao1, Ao2, ...`` a query-tree node at depth ``d`` fixes the first
``d`` attributes of that order.  If every tuple's key is its value vector
written in mixed radix (most significant digit = first attribute of the
order, least significant digits = the tuple id for uniqueness), a node is a
*contiguous key range* and "does this node overflow?" becomes two positional
bisects.

Components:

* :class:`SortedKeyList` — a blocked sorted list of integers (the same idea
  as ``sortedcontainers.SortedList``, reimplemented because this environment
  is offline): O(sqrt n) insert/delete, O(log n + #blocks) positional rank.
  Registered as the ``"blocked"`` storage backend (the default).
* :class:`KeyCodec` — the mixed-radix key codec over one attribute order,
  with vectorized :meth:`KeyCodec.encode_many` / :meth:`KeyCodec.decode_many`
  batch paths (pure int64 when the key universe fits 64 bits, int64 limbs
  combined with arbitrary-precision arithmetic otherwise).
* :class:`PrefixIndex` — a key codec plus any
  :class:`~repro.hiddendb.backends.StorageBackend` holding the key multiset.
* :class:`TupleStore` — the tuple heap plus any number of prefix indexes,
  with a mutation-event stream for ground-truth observers, bulk
  insert/delete, and a deferred-maintenance :meth:`TupleStore.bulk` context
  so churn rounds pay one index merge instead of per-tuple upkeep.  Batches
  inserted through :meth:`TupleStore.insert_batch` stay columnar: rows live
  in frozen :class:`~repro.hiddendb.tuples.TupleBatch` blocks and are
  materialized as :class:`HiddenTuple` objects only when a query touches
  them.

The vectorized plane can be disabled process-wide (``REPRO_DATA_PLANE=scalar``
or :func:`set_data_plane`), which makes every batch entry point fall back to
the per-tuple code path — the parity oracle for the batch plane.
"""

from __future__ import annotations

import os
import threading
import time
from bisect import bisect_left, bisect_right, insort
from contextvars import ContextVar
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import SchemaError
from ..obs import OBS
from .backends import (
    DEFAULT_BLOCK_SIZE,
    StorageBackend,
    _as_int64_batch,
    _sorted_multiset_subtract,
    make_backend,
    mod_many,
    register_backend,
    resolve_backend,
)
from .schema import Schema
from .tuples import HiddenTuple, TupleBatch

#: Copy-on-write privatizations (import-time handle; see repro.obs).
_PRIVATIZED_BLOCKS = OBS.counter("repro_epoch_privatized_blocks_total")
_BLOCKED_REFREEZE_REUSED = OBS.counter(
    "repro_epoch_refreeze_reused_total", {"backend": "blocked"}
)
_MIGRATION_SECONDS = OBS.histogram("repro_tuning_migration_seconds")

__all__ = [
    "DATA_PLANES",
    "DEFAULT_BLOCK_SIZE",
    "GatheredRows",
    "KeyCodec",
    "PrefixIndex",
    "SortedKeyList",
    "TupleStore",
    "get_data_plane",
    "overriding_data_plane",
    "set_data_plane",
    "using_data_plane",
]


# ----------------------------------------------------------------------
# Data-plane selection
# ----------------------------------------------------------------------

#: The valid data planes (shared by every layer that validates a name).
DATA_PLANES = ("vectorized", "scalar")

_DATA_PLANES = DATA_PLANES

#: The explicit programmatic selection.  ``None`` means "never set", in
#: which case the ``REPRO_DATA_PLANE`` environment variable (read lazily,
#: so it is only a *default*) governs.  Precedence, highest first:
#: context-local override (:func:`overriding_data_plane` — the engine
#: facade's pinning primitive) > process-wide programmatic setting
#: (:func:`set_data_plane` / :func:`using_data_plane`) >
#: ``REPRO_DATA_PLANE`` > the built-in ``"vectorized"`` default.
_data_plane: str | None = None

#: Context-local (thread/task-scoped) override.  Pinned scopes set it so
#: their plane choice is invisible to concurrent threads — no global
#: state is touched and no cross-scope locking is needed.
_plane_override: ContextVar[str | None] = ContextVar(
    "repro-data-plane-override", default=None
)


def _env_default() -> str:
    """The plane named by ``REPRO_DATA_PLANE``, or the built-in default."""
    from_env = os.environ.get("REPRO_DATA_PLANE")
    if from_env is None:
        return "vectorized"
    if from_env not in _DATA_PLANES:
        raise SchemaError(
            f"REPRO_DATA_PLANE must be one of {_DATA_PLANES}, got "
            f"{from_env!r}"
        )
    return from_env


def get_data_plane() -> str:
    """The active data plane: ``"vectorized"`` (default) or ``"scalar"``.

    A context-local :func:`overriding_data_plane` scope wins first; then
    an explicit :func:`set_data_plane`; absent both, the
    ``REPRO_DATA_PLANE`` environment variable is consulted on every call
    (so it stays a pure default and never overrides program decisions).
    """
    override = _plane_override.get()
    if override is not None:
        return override
    if _data_plane is not None:
        return _data_plane
    return _env_default()


def set_data_plane(name: str | None) -> str | None:
    """Select the data plane process-wide; returns the previous *explicit*
    setting (``None`` when none was made), so the save/restore idiom
    round-trips exactly::

        previous = set_data_plane("scalar")
        ...
        set_data_plane(previous)   # restores even a never-set state

    ``"scalar"`` makes :meth:`TupleStore.insert_batch` (and everything
    built on it) degrade to the per-tuple insert path — byte-identical
    results, per-tuple cost.  Used by the parity tests and the
    ``REPRO_DATA_PLANE`` benchmark knob.

    An explicit setting takes precedence over the ``REPRO_DATA_PLANE``
    environment variable; pass ``None`` to drop the explicit setting and
    fall back to the environment default.  (The *effective* plane before
    the call is ``get_data_plane()``.)
    """
    global _data_plane
    if name is not None and name not in _DATA_PLANES:
        raise SchemaError(
            f"unknown data plane {name!r}; available: {', '.join(_DATA_PLANES)}"
        )
    previous = _data_plane
    _data_plane = name
    return previous


@contextmanager
def overriding_data_plane(name: str | None):
    """Context-local plane override (``None`` leaves everything untouched).

    The engine facade's pinning primitive: unlike :func:`using_data_plane`
    it never mutates process-global state — the override lives in a
    :class:`~contextvars.ContextVar`, so it is visible only to code
    running in the current thread/task (and beats both
    :func:`set_data_plane` and the environment there), while concurrent
    threads keep seeing the ambient plane.  Nests freely; exiting restores
    the outer override exactly.
    """
    if name is None:
        yield get_data_plane()
        return
    if name not in _DATA_PLANES:
        raise SchemaError(
            f"unknown data plane {name!r}; available: {', '.join(_DATA_PLANES)}"
        )
    token = _plane_override.set(name)
    try:
        yield name
    finally:
        _plane_override.reset(token)


@contextmanager
def using_data_plane(name: str | None):
    """Scope the data plane (``None`` leaves it untouched).

    On exit the previous state is restored exactly — including "never
    explicitly set", so a scope used before any :func:`set_data_plane`
    call leaves the environment-variable default in charge afterwards.
    """
    if name is None:
        yield get_data_plane()
        return
    previous = set_data_plane(name)
    try:
        yield name
    finally:
        set_data_plane(previous)


class SortedKeyList:
    """A sorted multiset of integers stored in balanced blocks.

    Supports the three operations the prefix index needs:

    * :meth:`add` / :meth:`remove` in O(sqrt n),
    * :meth:`rank` (count of keys strictly below a value) in
      O(log n + #blocks),
    * :meth:`iter_range` over a half-open key interval.
    """

    __slots__ = ("_blocks", "_maxes", "_size", "_block_size",
                 "_freeze_rev", "_frozen_rev", "_frozen_view")

    def __init__(
        self,
        keys: Iterable[int] = (),
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        self._block_size = block_size
        self._freeze_rev = 0
        self._frozen_rev = -1
        self._frozen_view = None
        self._rebuild(sorted(keys))

    def __len__(self) -> int:
        return self._size

    def _locate_block(self, key: int) -> int:
        """Index of the first block whose max is >= key (len for none)."""
        return bisect_left(self._maxes, key)

    def add(self, key: int) -> None:
        """Insert ``key`` keeping order; duplicates are allowed."""
        self._freeze_rev += 1
        if not self._blocks:
            self._blocks.append([key])
            self._maxes.append(key)
            self._size = 1
            return
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            block_index -= 1
        block = self._blocks[block_index]
        insort(block, key)
        self._maxes[block_index] = block[-1]
        self._size += 1
        if len(block) > 2 * self._block_size:
            self._split_block(block_index)

    def _split_block(self, block_index: int) -> None:
        block = self._blocks[block_index]
        half = len(block) // 2
        right = block[half:]
        del block[half:]
        self._blocks.insert(block_index + 1, right)
        self._maxes[block_index] = block[-1]
        self._maxes.insert(block_index + 1, right[-1])

    def remove(self, key: int) -> None:
        """Remove one occurrence of ``key``; raise ``ValueError`` if absent."""
        self._freeze_rev += 1
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            raise ValueError(f"key {key} not in SortedKeyList")
        block = self._blocks[block_index]
        position = bisect_left(block, key)
        if position == len(block) or block[position] != key:
            raise ValueError(f"key {key} not in SortedKeyList")
        del block[position]
        self._size -= 1
        if block:
            self._maxes[block_index] = block[-1]
        else:
            del self._blocks[block_index]
            del self._maxes[block_index]

    def bulk_add(self, keys: Iterable[int]) -> None:
        """Insert a batch of keys with one rebuild instead of n insorts.

        Large batches (at least a quarter of the current size) rebuild the
        block structure from a single merge-sort; small batches fall back to
        per-key insertion, which keeps amortized cost below a rebuild.  A
        numeric ``np.ndarray`` batch takes a fully vectorized merge with no
        per-element Python calls.
        """
        array_batch = _as_int64_batch(keys)
        if array_batch is not None:
            if len(array_batch) * 4 >= self._size:
                self._bulk_add_array(array_batch)
                return
            keys = array_batch.tolist()
        batch = sorted(keys)
        if not batch:
            return
        if len(batch) * 4 < self._size:
            for key in batch:
                self.add(key)
            return
        merged = list(self)
        merged.extend(batch)
        merged.sort()
        self._rebuild(merged)

    def _as_array(self) -> np.ndarray:
        """Current contents as a sorted int64 vector."""
        if not self._size:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.asarray(block, dtype=np.int64) for block in self._blocks]
        )

    def _bulk_add_array(self, batch: np.ndarray) -> None:
        if not len(batch):
            return
        merged = np.concatenate([self._as_array(), batch])
        merged.sort()
        self._rebuild(merged.tolist())

    def bulk_remove(self, keys: Iterable[int]) -> None:
        """Remove a batch of keys; raise ``ValueError`` if any is absent.

        Mirrors :meth:`bulk_add`: large batches rebuild once, small batches
        delegate to per-key removal, numeric ``np.ndarray`` batches subtract
        vectorized.
        """
        array_batch = _as_int64_batch(keys)
        if array_batch is not None:
            if len(array_batch) * 4 >= self._size:
                survivors = _sorted_multiset_subtract(
                    self._as_array(), np.sort(array_batch), "SortedKeyList"
                )
                self._rebuild(survivors.tolist())
                return
            keys = array_batch.tolist()
        batch = sorted(keys)
        if not batch:
            return
        if len(batch) * 4 < self._size:
            for key in batch:
                self.remove(key)
            return
        survivors: list[int] = []
        batch_position = 0
        batch_length = len(batch)
        for key in self:
            if batch_position < batch_length and batch[batch_position] == key:
                batch_position += 1
                continue
            survivors.append(key)
        if batch_position != batch_length:
            raise ValueError(
                f"key {batch[batch_position]} not in SortedKeyList"
            )
        self._rebuild(survivors)

    def _rebuild(self, sorted_keys: list[int]) -> None:
        """Replace the contents with an already-sorted key list."""
        self._freeze_rev += 1
        self._blocks = []
        self._maxes = []
        for start in range(0, len(sorted_keys), self._block_size):
            block = sorted_keys[start : start + self._block_size]
            self._blocks.append(block)
            self._maxes.append(block[-1])
        self._size = len(sorted_keys)

    def __contains__(self, key: int) -> bool:
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            return False
        block = self._blocks[block_index]
        position = bisect_left(block, key)
        return position < len(block) and block[position] == key

    def rank(self, key: int) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            return self._size
        preceding = 0
        for i in range(block_index):
            preceding += len(self._blocks[i])
        return preceding + bisect_left(self._blocks[block_index], key)

    def count_range(self, lo: int, hi: int) -> int:
        """Number of keys in the half-open interval ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.rank(hi) - self.rank(lo)

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        """Yield keys in ``[lo, hi)`` in ascending order."""
        if hi <= lo:
            return
        block_index = self._locate_block(lo)
        while block_index < len(self._blocks):
            block = self._blocks[block_index]
            start = bisect_left(block, lo) if block[0] < lo else 0
            for position in range(start, len(block)):
                key = block[position]
                if key >= hi:
                    return
                yield key
            block_index += 1

    def range_keys(self, lo: int, hi: int) -> list[int]:
        """Keys in ``[lo, hi)`` as one list — array-native ``iter_range``.

        Block-sliced (C-level copies) instead of a per-key generator.
        """
        if hi <= lo:
            return []
        out: list[int] = []
        block_index = self._locate_block(lo)
        while block_index < len(self._blocks):
            block = self._blocks[block_index]
            if block[0] >= hi:
                break
            start = bisect_left(block, lo) if block[0] < lo else 0
            if block[-1] >= hi:
                out.extend(block[start:bisect_left(block, hi)])
                break
            out.extend(block[start:] if start else block)
            block_index += 1
        return out

    def __iter__(self) -> Iterator[int]:
        for block in self._blocks:
            yield from block

    def freeze(self):
        """An immutable snapshot copy of the current multiset contents.

        Blocks are mutated in place by ``add`` / ``remove``, so (unlike
        the packed engines' zero-copy run hand-off) the blocked engine
        must copy at publish time: one int64 vector when every key fits
        64 bits, a plain list of Python ints for wide key universes.
        """
        from .epoch import FrozenRun

        if self._frozen_view is not None and (
            self._frozen_rev == self._freeze_rev
        ):
            if OBS.enabled:
                _BLOCKED_REFREEZE_REUSED.inc()
            return self._frozen_view
        try:
            keys = self._as_array()
        except OverflowError:
            keys = [key for block in self._blocks for key in block]
        frozen = FrozenRun(keys)
        self._frozen_view = frozen
        self._frozen_rev = self._freeze_rev
        return frozen

    def check_invariants(self) -> None:
        """Validate internal structure (used by property tests)."""
        total = 0
        previous_max = None
        for block, block_max in zip(self._blocks, self._maxes):
            assert block, "empty block retained"
            assert block == sorted(block), "unsorted block"
            assert block[-1] == block_max, "stale block max"
            if previous_max is not None:
                assert block[0] >= previous_max, "blocks out of order"
            previous_max = block_max
            total += len(block)
        assert total == self._size, "size counter out of sync"


register_backend(
    "blocked",
    lambda block_size=DEFAULT_BLOCK_SIZE, key_bound=None: SortedKeyList(
        block_size=block_size
    ),
)


#: Largest exclusive key bound representable in a signed 64-bit key vector.
_INT64_KEY_BOUND = 2**63

#: Largest partial radix product allowed inside one int64 limb of the wide
#: encode path (one extra digit of radix <= 2 must never overflow int64).
_LIMB_BOUND = 2**62


class KeyCodec:
    """Mixed-radix key codec over one attribute order.

    The key of a tuple is::

        ((v[o1] * |U_o2| + v[o2]) * |U_o3| + ...) * TID_SPAN + tid

    so a depth-``d`` prefix (values for the first ``d`` attributes of the
    order) owns the contiguous range ``[code_d * span_d, (code_d+1) * span_d)``
    where ``span_d`` is the product of the remaining radices times
    ``TID_SPAN``.  Python's arbitrary-precision integers make this exact for
    any number of attributes.

    :meth:`encode_many` / :meth:`decode_many` are the vectorized batch
    paths.  When the whole key universe fits a signed 64-bit word the
    encoding is one numpy Horner loop over int64 vectors; otherwise the
    digits are grouped into int64-safe *limbs* (each an exact partial
    mixed-radix code, computed vectorized) that are combined with
    arbitrary-precision integer arithmetic over object arrays — still no
    per-digit Python loop, and overflow-checked by construction because
    every limb product stays below ``2**62``.
    """

    __slots__ = ("attr_order", "radices", "tid_span", "spans", "_limb_plan")

    def __init__(
        self,
        radices: Sequence[int],
        attr_order: Sequence[int],
        tid_span: int,
    ):
        self.attr_order = tuple(attr_order)
        self.radices = tuple(int(r) for r in radices)
        if len(self.radices) != len(self.attr_order):
            raise SchemaError("radices must align with attr_order")
        self.tid_span = int(tid_span)
        # spans[d] = width of a depth-d prefix's key range.
        spans = [self.tid_span]
        for radix in reversed(self.radices):
            spans.append(spans[-1] * radix)
        spans.reverse()  # spans[d] for d in 0..m
        self.spans = tuple(spans)
        # The wide-path limb plan: consecutive digits of the extended digit
        # sequence (value digits in attr order, then the tid digit) grouped
        # so each group's radix product stays int64-safe.
        digits = self.radices + (self.tid_span,)
        plan: list[tuple[int, int, int]] = []  # (start, stop, product)
        start = 0
        product = 1
        for position, radix in enumerate(digits):
            if product * radix > _LIMB_BOUND and product > 1:
                plan.append((start, position, product))
                start, product = position, 1
            product *= radix
        plan.append((start, len(digits), product))
        self._limb_plan = tuple(plan)

    @property
    def key_bound(self) -> int:
        """Exclusive upper bound of the key universe (``spans[0]``)."""
        return self.spans[0]

    @property
    def fits_int64(self) -> bool:
        """True when every key fits a signed 64-bit word."""
        return self.spans[0] <= _INT64_KEY_BOUND

    def encode(self, values: bytes | Sequence[int], tid: int) -> int:
        """Full key of one tuple (value digits + tid) — the scalar path."""
        code = 0
        for attr_index, radix in zip(self.attr_order, self.radices):
            code = code * radix + values[attr_index]
        return code * self.tid_span + tid

    def encode_many(
        self, values: np.ndarray, tids: np.ndarray
    ) -> np.ndarray:
        """Keys of an ``(n, m)`` uint8 value matrix plus an int64 tid vector.

        Returns an int64 vector when the key universe fits 64 bits, else an
        object vector of exact arbitrary-precision Python ints (same order).
        """
        tids = np.asarray(tids, dtype=np.int64)
        n = len(tids)
        if len(values) != n:
            raise SchemaError("values and tids must have equal length")
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self.fits_int64:
            code = np.zeros(n, dtype=np.int64)
            for attr_index, radix in zip(self.attr_order, self.radices):
                code *= radix
                code += values[:, attr_index]
            return code * self.tid_span + tids
        digits = self.radices + (self.tid_span,)
        total: np.ndarray | None = None
        for start, stop, product in self._limb_plan:
            limb = np.zeros(n, dtype=np.int64)
            for position in range(start, stop):
                limb *= digits[position]
                if position < len(self.attr_order):
                    limb += values[:, self.attr_order[position]]
                else:
                    limb += tids
            if total is None:
                total = limb.astype(object)
            else:
                total = total * product + limb
        assert total is not None
        return total

    def decode_many(self, keys: np.ndarray | Sequence[int]) -> tuple[
        np.ndarray, np.ndarray
    ]:
        """Inverse of :meth:`encode_many`.

        Returns ``(values, tids)`` with ``values`` an ``(n, m)`` uint8
        matrix in *schema attribute order* and ``tids`` an int64 vector.
        """
        n = len(keys)
        values = np.zeros((n, len(self.attr_order)), dtype=np.uint8)
        tids = np.empty(n, dtype=np.int64)
        if n == 0:
            return values, tids
        if self.fits_int64:
            code = np.asarray(keys, dtype=np.int64)
            tids[:] = code % self.tid_span
            code = code // self.tid_span
            for attr_index, radix in zip(
                reversed(self.attr_order), reversed(self.radices)
            ):
                values[:, attr_index] = code % radix
                code = code // radix
            return values, tids
        for row, key in enumerate(keys):
            code, tid = divmod(int(key), self.tid_span)
            tids[row] = tid
            for attr_index, radix in zip(
                reversed(self.attr_order), reversed(self.radices)
            ):
                code, digit = divmod(code, radix)
                values[row, attr_index] = digit
        return values, tids

    def prefix_range(self, prefix_values: Sequence[int]) -> tuple[int, int]:
        """Half-open key interval of the node fixing ``prefix_values``.

        ``prefix_values`` are value indices for the first ``len(prefix)``
        attributes of this codec's order.
        """
        depth = len(prefix_values)
        code = 0
        for position in range(depth):
            code = code * self.radices[position] + prefix_values[position]
        span = self.spans[depth]
        lo = code * span
        return lo, lo + span


class PrefixIndex:
    """A key codec plus the storage backend holding the key multiset.

    The key multiset lives in a pluggable
    :class:`~repro.hiddendb.backends.StorageBackend` selected by name
    (``None`` = the process-wide default); ``backend_options`` are extra
    engine-specific factory knobs (the sharded engine's ``shards`` /
    ``workers``).

    **Reader-concurrency contract:** all query methods (``count_prefix``,
    ``iter_tids``, ``range_tids``, ``prefix_range``, ``__len__``) are safe
    to call from any number of threads concurrently as long as no mutation
    (``add`` / ``remove`` / ``bulk_*``) runs at the same time.  The shipped
    backends' read-side caches only grow under the GIL (see
    :mod:`repro.hiddendb.backends`); mutations must be serialized against
    readers externally — the engine facade's round barrier does this.
    """

    __slots__ = ("attr_order", "backend_name", "codec", "_keys")

    def __init__(
        self,
        schema: Schema,
        attr_order: Sequence[int],
        tid_span: int = 2**48,
        block_size: int = DEFAULT_BLOCK_SIZE,
        backend: str | None = None,
        backend_options: Mapping | None = None,
    ):
        order = tuple(attr_order)
        if sorted(order) != list(range(schema.num_attributes)):
            raise SchemaError(
                "attr_order must be a permutation of all attribute indexes"
            )
        self.attr_order = order
        self.codec = KeyCodec(
            tuple(schema.attributes[a].size for a in order), order, tid_span
        )
        self.backend_name = resolve_backend(backend)
        self._keys: StorageBackend = make_backend(
            self.backend_name,
            block_size=block_size,
            key_bound=self.codec.key_bound,
            **(backend_options or {}),
        )

    @property
    def depth(self) -> int:
        """Maximum prefix depth (number of attributes)."""
        return len(self.attr_order)

    def encode(self, t: HiddenTuple) -> int:
        """Full key of a tuple (value digits + tid)."""
        return self.codec.encode(t.values, t.tid)

    def prefix_range(self, prefix_values: Sequence[int]) -> tuple[int, int]:
        """Half-open key interval of the node fixing ``prefix_values``."""
        return self.codec.prefix_range(prefix_values)

    def add(self, t: HiddenTuple) -> None:
        self._keys.add(self.encode(t))

    def remove(self, t: HiddenTuple) -> None:
        self._keys.remove(self.encode(t))

    def bulk_add(self, tuples: Iterable[HiddenTuple]) -> None:
        """Index a batch of tuples with one backend merge."""
        self._keys.bulk_add([self.encode(t) for t in tuples])

    def bulk_remove(self, tuples: Iterable[HiddenTuple]) -> None:
        """Unindex a batch of tuples with one backend merge."""
        self._keys.bulk_remove([self.encode(t) for t in tuples])

    def _batch_keys(self, batch: TupleBatch):
        keys = self.codec.encode_many(batch.values, batch.tids)
        if keys.dtype == object:
            return keys.tolist()
        return keys

    def bulk_add_batch(self, batch: TupleBatch) -> None:
        """Index a columnar batch without materializing tuples."""
        if get_data_plane() == "scalar":
            self.bulk_add(batch.iter_tuples())
            return
        self._keys.bulk_add(self._batch_keys(batch))

    def count_prefix(self, prefix_values: Sequence[int]) -> int:
        """Number of stored tuples matching the prefix."""
        lo, hi = self.prefix_range(prefix_values)
        return self._keys.count_range(lo, hi)

    def iter_tids(self, prefix_values: Sequence[int]) -> Iterator[int]:
        """Yield tids of tuples matching the prefix (key order)."""
        lo, hi = self.prefix_range(prefix_values)
        tid_span = self.codec.tid_span
        for key in self._keys.iter_range(lo, hi):
            yield key % tid_span

    def range_tids(self, prefix_values: Sequence[int]) -> np.ndarray:
        """Matching tids as an int64 vector — array-native ``iter_tids``.

        One vectorized modulo when the backend hands back an int64 key
        array (packed narrow schemas); the chunked limb reduction
        (:func:`~repro.hiddendb.backends.mod_many`) over a block-sliced
        key list otherwise — wide schemas exceed int64, but their keys
        never pay a per-key Python ``%`` (parity-tested against the
        scalar loop).  Backends without
        :meth:`~repro.hiddendb.backends.StorageBackend.range_keys` degrade
        to ``iter_range``.
        """
        lo, hi = self.prefix_range(prefix_values)
        range_keys = getattr(self._keys, "range_keys", None)
        if range_keys is not None:
            keys = range_keys(lo, hi)
        else:  # minimal custom engines: same contents, per-key cost
            keys = list(self._keys.iter_range(lo, hi))
        return mod_many(keys, self.codec.tid_span)

    def __len__(self) -> int:
        return len(self._keys)


class _HeapBlock:
    """A frozen columnar segment of the tuple heap.

    Holds one identified :class:`TupleBatch` plus a liveness mask; rows are
    located by bisect on the (strictly increasing) tid vector and turned
    into :class:`HiddenTuple` objects only on demand.
    """

    __slots__ = ("batch", "tid_lo", "tid_hi", "alive", "alive_count",
                 "_tid_list", "_score_list", "shared")

    def __init__(self, batch: TupleBatch):
        self.batch = batch
        self.tid_lo = int(batch.tids[0])
        self.tid_hi = int(batch.tids[-1])
        self.alive = np.ones(len(batch), dtype=bool)
        self.alive_count = len(batch)
        # True while a published epoch's clone shares this block's mutable
        # columns; the first in-place write privatizes them (copy-on-write).
        self.shared = False
        # Plain-list twins of the tid/score columns, built lazily on the
        # first point read: bisect on a list and plain float access beat
        # per-call numpy scalar boxing on the lookup path queries hammer,
        # but blocks that are never point-read shouldn't pay for them.
        self._tid_list: list[int] | None = None
        self._score_list: list[float] | None = None

    def _tids(self) -> list[int]:
        tids = self._tid_list
        if tids is None:
            # Concurrent readers may race to build the twins; both write
            # identical lists, so either wins.  Publish order matters:
            # readers gate on ``_tid_list``, so ``_score_list`` must be
            # assigned first — a reader that observes a non-None
            # ``_tid_list`` is then guaranteed a non-None ``_score_list``
            # (CPython's GIL orders the two stores).
            scores = self.batch.scores.tolist()
            tids = self.batch.tids.tolist()
            self._score_list = scores
            self._tid_list = tids
        return tids

    def locate(self, tid: int) -> int | None:
        """Row index of a live tid, or ``None``."""
        tids = self._tids()
        row = bisect_left(tids, tid)
        if row < len(tids) and tids[row] == tid and self.alive[row]:
            return row
        return None

    def materialize(self, row: int) -> HiddenTuple:
        """Build the row's tuple (cheaper than ``batch.materialize``)."""
        batch = self.batch
        tids = self._tids()
        return HiddenTuple(
            tids[row],
            batch.values[row].tobytes(),
            batch.row_measures(row),
            self._score_list[row],
        )

    def snapshot(self) -> "_HeapBlock":
        """A copy-on-write clone sharing every column with this block.

        Both sides are marked :attr:`shared`; the first in-place mutation
        on the live side (:meth:`kill`, or a measure replace through
        :meth:`TupleStore.replace`) privatizes the mutable columns via
        :meth:`_unshare`, so the clone keeps observing the snapshot-time
        contents forever — the heap half of an epoch publish, at zero
        copy cost until churn actually touches the block.
        """
        clone = _HeapBlock.__new__(_HeapBlock)
        clone.batch = self.batch
        clone.tid_lo = self.tid_lo
        clone.tid_hi = self.tid_hi
        clone.alive = self.alive
        clone.alive_count = self.alive_count
        clone._tid_list = self._tid_list
        clone._score_list = self._score_list
        clone.shared = True
        self.shared = True
        return clone

    def _unshare(self) -> None:
        """Privatize the mutable columns before an in-place write.

        Only ``alive``, ``measures`` and ``scores`` are ever written in
        place (values/tids stay frozen for the block's lifetime), so only
        those copy; the lazy list twins are dropped because a published
        clone may still share them.
        """
        if not self.shared:
            return
        batch = self.batch
        self.batch = TupleBatch(
            batch.values, batch.measures.copy(),
            batch.tids, batch.scores.copy(),
        )
        self.alive = self.alive.copy()
        self._tid_list = None
        self._score_list = None
        self.shared = False
        if OBS.enabled:
            _PRIVATIZED_BLOCKS.inc()

    def kill(self, row: int) -> None:
        self._unshare()
        self.alive[row] = False
        self.alive_count -= 1

    def alive_tids(self) -> list[int]:
        """Tids of the live rows, ascending."""
        if self.alive_count == len(self.batch):
            return self.batch.tids.tolist()
        return self.batch.tids[self.alive].tolist()

    def alive_batch(self) -> TupleBatch:
        """A compacted batch of just the live rows (for index backfill)."""
        batch = self.batch
        if self.alive_count == len(batch):
            return batch
        mask = self.alive
        return TupleBatch(
            batch.values[mask], batch.measures[mask],
            batch.tids[mask], batch.scores[mask],
        )

    def iter_alive(self) -> Iterator[HiddenTuple]:
        for row in np.flatnonzero(self.alive):
            yield self.materialize(int(row))


class GatheredRows:
    """Columnar gather result plus exact per-row materialization.

    ``batch`` holds the gathered column vectors (page selection and
    column-level aggregation read these).  Rows that were resolved from
    the per-tuple dict keep their original :class:`HiddenTuple` objects in
    ``row_objects`` so materialization is bit-exact even for rows the
    permissive scalar heap stored with off-schema measure arity; block
    rows materialize from the columns.
    """

    __slots__ = ("batch", "row_objects")

    def __init__(
        self,
        batch: TupleBatch,
        row_objects: dict[int, HiddenTuple] | None = None,
    ):
        self.batch = batch
        self.row_objects = row_objects

    def __len__(self) -> int:
        return len(self.batch)

    def materialize_row(self, row: int) -> HiddenTuple:
        """The row's tuple — the stored object when one exists."""
        if self.row_objects is not None:
            found = self.row_objects.get(row)
            if found is not None:
                return found
        return self.batch.materialize(row)


class TupleStore:
    """Tuple heap plus registered prefix indexes and a mutation stream.

    Listeners registered via :meth:`subscribe` receive
    ``("insert", tuple)`` / ``("delete", tuple)`` events, which is how the
    experiment harness maintains exact ground truth in O(1) per mutation.

    All prefix indexes share one storage backend, chosen at construction
    (``backend=None`` picks the process-wide default).  Inside a
    :meth:`bulk` block, per-mutation index maintenance is deferred and the
    buffered batch is applied with one ``bulk_add``/``bulk_remove`` per
    index when the block exits; the tuple heap and the listener stream stay
    exact throughout, so only *index reads* must wait for the block to end.

    The heap is hybrid: per-tuple inserts live in a dict, columnar batches
    (:meth:`insert_batch`) live in frozen :class:`_HeapBlock` segments whose
    rows are materialized lazily.  Iteration yields blocks first, then the
    dict — ascending tid order, enforced: a batch whose tids are not
    strictly above every existing tid is routed through the per-tuple
    path, so block tid ranges never interleave the dict or each other.

    **Reader-concurrency contract:** any number of threads may read
    concurrently (``get`` / ``gather`` / ``scan_match`` / ``tuples`` /
    index queries) — readers never block each other and every lazy
    read-side structure is safe to race on: the :class:`HiddenTuple` read
    cache is an immutable-per-epoch snapshot (see :meth:`get`), heap
    blocks publish their lazy list twins in a GIL-ordered sequence, and
    :meth:`ensure_index` double-checks under a build lock so concurrent
    first-queries of one attribute order build its index exactly once.
    Mutations (insert/delete/replace/bulk) must be externally serialized
    against both readers and other writers — the engine facade holds its
    round barrier (``run_round`` vs ``apply_updates``) for exactly this.
    """

    def __init__(
        self,
        schema: Schema,
        block_size: int = DEFAULT_BLOCK_SIZE,
        backend: str | None = None,
        backend_options: Mapping | None = None,
    ):
        self.schema = schema
        self.backend_name = resolve_backend(backend)
        self.backend_options = dict(backend_options) if backend_options else {}
        self._block_size = block_size
        self._tuples: dict[int, HiddenTuple] = {}
        self._blocks: list[_HeapBlock] = []
        self._block_los: list[int] = []  # sorted tid_lo per block
        self._size = 0
        # Bumped on every content mutation; deferred result pages capture
        # it at query time so a late read can detect staleness.
        self._epoch = 0
        # Materialization cache for block rows: repeat point reads (the
        # estimators drill overlapping trees) skip locate+materialize.
        # One immutable-identity snapshot per mutation epoch — readers
        # validate the epoch tag instead of writers evicting entries, so
        # the read path needs no lock (see :meth:`get`).
        self._read_cache: tuple[int, dict[int, HiddenTuple]] = (0, {})
        self._indexes: dict[tuple[int, ...], PrefixIndex] = {}
        # Serializes index *builds* only; reads of ``_indexes`` stay
        # lock-free (GIL-atomic dict lookups on an insert-only dict).
        self._index_lock = threading.Lock()
        self._listeners: list[Callable[[str, HiddenTuple], None]] = []
        self._bulk_depth = 0
        self._pending_add: list[HiddenTuple] = []
        self._pending_del: list[HiddenTuple] = []
        self._pending_batches: list[TupleBatch] = []

    def __len__(self) -> int:
        return self._size

    @property
    def mutation_epoch(self) -> int:
        """Monotone counter of content mutations (insert/delete/replace)."""
        return self._epoch

    def _find_block(self, tid: int) -> tuple[_HeapBlock, int] | None:
        """The block and row holding a live tid, or ``None``.

        One probe suffices: :meth:`insert_batch` rejects overlapping tid
        ranges, so at most one block can span any tid.
        """
        if not self._blocks:
            return None
        position = bisect_right(self._block_los, tid) - 1
        if position < 0:
            return None
        block = self._blocks[position]
        if tid > block.tid_hi:
            return None
        row = block.locate(tid)
        if row is None:
            return None
        return block, row

    def _drop_block(self, block: _HeapBlock) -> None:
        """Release a fully-dead block (long churn must not pin memory)."""
        position = self._blocks.index(block)
        del self._blocks[position]
        del self._block_los[position]

    def __contains__(self, tid: int) -> bool:
        return tid in self._tuples or self._find_block(tid) is not None

    def _cache_snapshot(self) -> dict[int, HiddenTuple]:
        """The read cache for the current epoch (fresh if the store moved).

        Lock-free for readers: the ``(epoch, dict)`` pair is swapped as
        one reference, stale snapshots are discarded wholesale instead of
        being evicted entry by entry, and a racing swap at worst loses a
        few cached materializations — never correctness.
        """
        epoch = self._epoch
        cache_epoch, cache = self._read_cache
        if cache_epoch != epoch:
            cache = {}
            self._read_cache = (epoch, cache)
        return cache

    def get(self, tid: int) -> HiddenTuple:
        found = self._tuples.get(tid)
        if found is not None:
            return found
        cache = self._cache_snapshot()
        found = cache.get(tid)
        if found is not None:
            return found
        located = self._find_block(tid)
        if located is None:
            raise KeyError(tid)
        block, row = located
        t = block.materialize(row)
        cache[tid] = t
        return t

    def tuples(self) -> Iterator[HiddenTuple]:
        """Iterate over all stored tuples (blocks first, then the dict)."""
        for block in self._blocks:
            yield from block.iter_alive()
        yield from self._tuples.values()

    def segments(self) -> tuple[list[TupleBatch], list[HiddenTuple]]:
        """The heap as columnar segments plus the scalar remainder.

        Simulator-side observers (exact ground truth) use this to evaluate
        bulk-loaded content vectorized instead of materializing it.
        """
        return (
            [block.alive_batch() for block in self._blocks],
            list(self._tuples.values()),
        )

    def gather(self, tids: np.ndarray) -> "GatheredRows":
        """Columnar copy of the given live rows, in input order.

        The columnar query plane's page fetch: block rows are located with
        one ``searchsorted`` per intersecting block and copied with fancy
        indexing; rows living in the per-tuple dict (scalar inserts,
        value-changing replaces) are filled in per tid and keep their
        original :class:`HiddenTuple` objects for exact materialization.
        Raises ``KeyError`` when a tid is not live — deferred pages guard
        against that with the mutation epoch before calling.
        """
        tids = np.asarray(tids, dtype=np.int64)
        n = len(tids)
        num_attributes = self.schema.num_attributes
        num_measures = len(self.schema.measures)
        values = np.empty((n, num_attributes), dtype=np.uint8)
        measures = np.empty((n, num_measures), dtype=np.float64)
        scores = np.empty(n, dtype=np.float64)
        if n == 0:
            return GatheredRows(
                TupleBatch(values, measures, tids.copy(), scores)
            )
        # Resolve against the sorted view; un-permute at the end.
        order: np.ndarray | None = None
        sorted_tids = tids
        if n > 1 and not bool(np.all(tids[1:] >= tids[:-1])):
            order = np.argsort(tids, kind="stable")
            sorted_tids = tids[order]
        resolved = np.zeros(n, dtype=bool)
        for block in self._blocks:
            lo = int(np.searchsorted(sorted_tids, block.tid_lo, side="left"))
            hi = int(np.searchsorted(sorted_tids, block.tid_hi, side="right"))
            if lo == hi:
                continue
            chunk = sorted_tids[lo:hi]
            batch = block.batch
            rows = np.searchsorted(batch.tids, chunk)
            # chunk values are bounded by this block's tid range, so every
            # position is in range; mismatches / dead rows fall through to
            # the dict (value-changing replace re-homes a tid there).
            found = (batch.tids[rows] == chunk) & block.alive[rows]
            if found.all():
                values[lo:hi] = batch.values[rows]
                if num_measures:
                    measures[lo:hi] = batch.measures[rows]
                scores[lo:hi] = batch.scores[rows]
                resolved[lo:hi] = True
            else:
                rows = rows[found]
                values[lo:hi][found] = batch.values[rows]
                if num_measures:
                    measures[lo:hi][found] = batch.measures[rows]
                scores[lo:hi][found] = batch.scores[rows]
                resolved[lo:hi] = found
        row_objects: dict[int, HiddenTuple] | None = None
        if not resolved.all():
            row_objects = {}
            for position in np.flatnonzero(~resolved):
                position = int(position)
                t = self._tuples.get(int(sorted_tids[position]))
                if t is None:
                    raise KeyError(int(sorted_tids[position]))
                output_row = (
                    position if order is None else int(order[position])
                )
                row_objects[output_row] = t
                values[position] = np.frombuffer(t.values, dtype=np.uint8)
                if num_measures:
                    if len(t.measures) == num_measures:
                        measures[position] = t.measures
                    else:
                        # The permissive scalar heap allows off-schema
                        # measure arity; columns are best-effort zeros,
                        # materialization returns the object itself.
                        measures[position] = 0.0
                scores[position] = t.score
        if order is not None:
            inverse = np.empty(n, dtype=np.intp)
            inverse[order] = np.arange(n)
            values = values[inverse]
            measures = measures[inverse]
            scores = scores[inverse]
        return GatheredRows(
            TupleBatch(values, measures, tids.copy(), scores), row_objects
        )

    def scan_match(
        self, predicates: Sequence[tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tids and scores of live rows matching an equality conjunction.

        The columnar twin of filtering :meth:`tuples` with
        ``query.matches``: frozen blocks are matched with one boolean mask
        over the value matrix, the per-tuple dict per row.  Returns two
        aligned vectors (int64 tids, float64 scores) — an eager snapshot,
        taken at query time like the scalar scan's match list.
        """
        tid_parts: list[np.ndarray] = []
        score_parts: list[np.ndarray] = []
        for block in self._blocks:
            batch = block.batch
            mask = None
            for attr_index, value_index in predicates:
                term = batch.values[:, attr_index] == value_index
                mask = term if mask is None else (mask & term)
            mask = block.alive if mask is None else (mask & block.alive)
            tid_parts.append(batch.tids[mask])
            score_parts.append(batch.scores[mask])
        if self._tuples:
            dict_tids: list[int] = []
            dict_scores: list[float] = []
            for t in self._tuples.values():
                values = t.values
                if all(values[a] == v for a, v in predicates):
                    dict_tids.append(t.tid)
                    dict_scores.append(t.score)
            if dict_tids:
                tid_parts.append(np.asarray(dict_tids, dtype=np.int64))
                score_parts.append(np.asarray(dict_scores, dtype=np.float64))
        if not tid_parts:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        return np.concatenate(tid_parts), np.concatenate(score_parts)

    def subscribe(self, listener: Callable[[str, HiddenTuple], None]) -> None:
        """Register a mutation listener (``event in {"insert", "delete"}``)."""
        self._listeners.append(listener)

    def index_orders(self) -> tuple[tuple[int, ...], ...]:
        """Snapshot of the registered attribute orders (safe to iterate
        while another thread builds a new index)."""
        return tuple(self._indexes)

    def ensure_index(self, attr_order: Sequence[int]) -> PrefixIndex:
        """Get (or build, backfilling existing tuples) the index for an order.

        Safe under concurrent readers: the hot path is one lock-free dict
        probe; a miss double-checks under the build lock so racing
        first-queries of the same order build the index exactly once, and
        the index becomes visible only after its backfill completes.
        """
        key = tuple(attr_order)
        index = self._indexes.get(key)
        if index is not None:
            return index
        with self._index_lock:
            index = self._indexes.get(key)
            if index is not None:
                return index
            # A new index built mid-bulk must not re-apply the buffered
            # mutations its backfill already covers.
            self._flush_pending()
            index = PrefixIndex(
                self.schema,
                key,
                block_size=self._block_size,
                backend=self.backend_name,
                backend_options=self.backend_options,
            )
            for block in self._blocks:
                index.bulk_add_batch(block.alive_batch())
            index.bulk_add(self._tuples.values())
            self._indexes[key] = index
        return index

    def migrate_backend(
        self,
        backend: str | None,
        backend_options: Mapping | None = None,
    ) -> str:
        """Rebuild every prefix index on a new storage backend and swap it
        in atomically.

        The heap (blocks + dict remainder) is the source of truth, so the
        rebuild is the exact :meth:`ensure_index` backfill run once per
        registered attribute order: an O(n) ``bulk_load`` into fresh
        backends, entirely off the read path.  The swap is a single dict
        rebind under the index-build lock — readers either see the
        complete old set or the complete new set, never a half-migrated
        index, and queries in flight keep their already-resolved index.

        Content is untouched, so ``mutation_epoch`` deliberately does NOT
        advance: cached pages, published epochs, and estimator state all
        stay valid, which is what makes estimates bit-identical across a
        mid-run migration.  Callers must serialize against writers (the
        engine invokes this at the epoch publish seam, under its write
        lock).  Returns the resolved backend name.
        """
        name = resolve_backend(backend)
        options = dict(backend_options) if backend_options else {}
        started = time.perf_counter()
        with self._index_lock:
            # Mirror ensure_index: buffered bulk mutations must land in
            # the old indexes (and the heap) before the heap is treated
            # as the complete backfill source.
            self._flush_pending()
            rebuilt: dict[tuple[int, ...], PrefixIndex] = {}
            for key in tuple(self._indexes):
                index = PrefixIndex(
                    self.schema,
                    key,
                    block_size=self._block_size,
                    backend=name,
                    backend_options=options,
                )
                for block in self._blocks:
                    index.bulk_add_batch(block.alive_batch())
                index.bulk_add(self._tuples.values())
                rebuilt[key] = index
            self.backend_name = name
            self.backend_options = options
            self._indexes = rebuilt
        if OBS.enabled:
            OBS.counter(
                "repro_tuning_migrations_total", {"backend": name}
            ).inc()
            _MIGRATION_SECONDS.observe(time.perf_counter() - started)
        return name

    def insert(self, t: HiddenTuple) -> None:
        """Insert a tuple; tids must be unique for the store's lifetime."""
        if t.tid in self._tuples or self._find_block(t.tid) is not None:
            raise SchemaError(f"duplicate tid {t.tid}")
        self._tuples[t.tid] = t
        self._size += 1
        self._epoch += 1
        if self._bulk_depth:
            self._pending_add.append(t)
        else:
            for index in self._indexes.values():
                index.add(t)
        for listener in self._listeners:
            listener("insert", t)

    def insert_batch(self, batch: TupleBatch) -> int:
        """Insert an identified columnar batch in one heap/index operation.

        Semantically identical to inserting the materialized tuples one by
        one (and degrades to exactly that under the scalar data plane), but
        on the vectorized plane no per-tuple Python object is built unless
        a mutation listener is subscribed.
        """
        n = len(batch)
        if n == 0:
            return 0
        if batch.tids is None or batch.scores is None:
            raise SchemaError("insert_batch requires an identified batch")
        if get_data_plane() == "scalar":
            with self.bulk():
                for t in batch.iter_tuples():
                    self.insert(t)
            return n
        if n > 1 and not bool(np.all(np.diff(batch.tids) > 0)):
            raise SchemaError("batch tids must be strictly increasing")
        tid_lo = int(batch.tids[0])
        if self._tuples or (
            self._blocks and tid_lo <= self._blocks[-1].tid_hi
        ):
            # A new block would iterate before existing dict rows (blocks
            # come first) or interleave existing blocks, breaking the
            # ascending-tid heap invariant that keeps block lookups a
            # single probe and iteration order identical to the scalar
            # plane — route such batches through the per-tuple path,
            # which behaves exactly like the scalar plane by construction
            # (including its duplicate-tid check).
            with self.bulk():
                for t in batch.iter_tuples():
                    self.insert(t)
            return n
        # The block owns private copies: callers may reuse the batch (or
        # load it into several databases), and replace() mutates block
        # columns in place.
        block = _HeapBlock(
            TupleBatch(
                batch.values.copy(), batch.measures.copy(),
                batch.tids.copy(), batch.scores.copy(),
            )
        )
        self._blocks.append(block)
        self._block_los.append(block.tid_lo)
        self._size += n
        self._epoch += 1
        if self._bulk_depth:
            self._pending_batches.append(block.batch)
        else:
            for index in self._indexes.values():
                index.bulk_add_batch(block.batch)
        if self._listeners:
            for t in block.batch.iter_tuples():
                for listener in self._listeners:
                    listener("insert", t)
        return n

    def delete(self, tid: int) -> HiddenTuple:
        """Delete by tid and return the removed tuple."""
        t = self._tuples.pop(tid, None)
        if t is None:
            located = self._find_block(tid)
            if located is None:
                raise KeyError(tid)
            block, row = located
            # The epoch bump below retires the whole read-cache snapshot,
            # so a still-cached materialization only saves rebuild work.
            t = self._cache_snapshot().get(tid) or block.materialize(row)
            block.kill(row)
            if block.alive_count == 0:
                self._drop_block(block)
        self._size -= 1
        self._epoch += 1
        if self._bulk_depth:
            self._pending_del.append(t)
        else:
            for index in self._indexes.values():
                index.remove(t)
        for listener in self._listeners:
            listener("delete", t)
        return t

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    @contextmanager
    def bulk(self):
        """Defer index maintenance for a batch of mutations.

        Mutations inside the block update the heap and fire listener events
        immediately; prefix indexes are brought up to date in one
        ``bulk_add``/``bulk_remove`` pass when the outermost block exits.
        Index-backed queries issued *inside* the block would see stale
        counts — the simulator only mutates between queries, so no such
        read exists in any supported workload.
        """
        self._bulk_depth += 1
        try:
            yield self
        finally:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                self._flush_pending()

    def _flush_pending(self) -> None:
        if (
            not self._pending_add
            and not self._pending_del
            and not self._pending_batches
        ):
            return
        adds, dels = self._pending_add, self._pending_del
        batches = self._pending_batches
        self._pending_add, self._pending_del = [], []
        self._pending_batches = []
        for index in self._indexes.values():
            for batch in batches:
                index.bulk_add_batch(batch)
            if adds:
                index.bulk_add(adds)
            if dels:
                index.bulk_remove(dels)

    def bulk_insert(self, tuples: Iterable[HiddenTuple]) -> int:
        """Insert many tuples, paying one index merge for the whole batch."""
        count = 0
        with self.bulk():
            for t in tuples:
                self.insert(t)
                count += 1
        return count

    def bulk_delete(self, tids: Iterable[int]) -> list[HiddenTuple]:
        """Delete many tids, paying one index merge for the whole batch."""
        with self.bulk():
            return [self.delete(tid) for tid in tids]

    def replace(self, t: HiddenTuple) -> None:
        """Swap the stored tuple with the same tid (measure updates)."""
        old = self._tuples.get(t.tid)
        block_row: tuple[_HeapBlock, int] | None = None
        if old is None:
            block_row = self._find_block(t.tid)
            if block_row is None:
                raise KeyError(t.tid)
            block, row = block_row
            old = block.materialize(row)
        if old.values != t.values:
            # Categorical change moves the tuple in every index; model it
            # as delete + insert so indexes and listeners stay consistent.
            self.delete(old.tid)
            self.insert(t)
            return
        if block_row is not None:
            # Update the frozen block's columns in place: index keys
            # depend only on (values, tid), and keeping the row in its
            # block preserves heap iteration order — and therefore the
            # scalar-plane parity of ``random_tids`` — under measure
            # drift.
            block, row = block_row
            block._unshare()
            block.batch.measures[row] = t.measures
            block.batch.scores[row] = t.score
            if block._score_list is not None:
                block._score_list[row] = t.score
            # The epoch bump below invalidates the read-cache snapshot
            # that may hold the pre-replace materialization.
        else:
            self._tuples[t.tid] = t
        self._epoch += 1
        for listener in self._listeners:
            listener("delete", old)
            listener("insert", t)

    def publish_epoch(self, round_index: int):
        """An immutable snapshot of the full store state — the HTAP read
        epoch (:class:`~repro.hiddendb.epoch.StoreEpoch`).

        Heap blocks become copy-on-write clones, the scalar dict remainder
        copies shallowly, and every prefix index freezes its backend (zero
        copy on the packing engines).  Callers must serialize the publish
        against writers, and must not publish mid-:meth:`bulk` (deferred
        index maintenance would be invisible to the snapshot); the engine's
        write lock provides both.  The returned epoch then serves reads
        forever without any lock: its content never changes, so its
        ``mutation_epoch`` is frozen and pages pinned to it can never go
        stale.
        """
        from .epoch import StoreEpoch

        return StoreEpoch(self, round_index)

    def random_tids(self, rng, count: int) -> list[int]:
        """Sample ``count`` distinct tids uniformly (for deletion schedules).

        The population is composed blocks-first then dict, which keeps it
        ascending by tid in every supported flow — so the sampled sequence
        is identical between the scalar and vectorized load paths.
        """
        population: list[int] = []
        for block in self._blocks:
            population.extend(block.alive_tids())
        population.extend(self._tuples.keys())
        if count >= len(population):
            return population
        return rng.sample(population, count)
