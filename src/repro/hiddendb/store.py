"""Storage layer of the hidden database simulator.

The drill-down estimators issue only *prefix conjunctions*: with attributes
ordered ``Ao1, Ao2, ...`` a query-tree node at depth ``d`` fixes the first
``d`` attributes of that order.  If every tuple's key is its value vector
written in mixed radix (most significant digit = first attribute of the
order, least significant digits = the tuple id for uniqueness), a node is a
*contiguous key range* and "does this node overflow?" becomes two positional
bisects.

Components:

* :class:`SortedKeyList` — a blocked sorted list of integers (the same idea
  as ``sortedcontainers.SortedList``, reimplemented because this environment
  is offline): O(sqrt n) insert/delete, O(log n + #blocks) positional rank.
  Registered as the ``"blocked"`` storage backend (the default).
* :class:`PrefixIndex` — mixed-radix key codec over one attribute order,
  backed by any :class:`~repro.hiddendb.backends.StorageBackend`.
* :class:`TupleStore` — the tuple heap plus any number of prefix indexes,
  with a mutation-event stream for ground-truth observers, bulk
  insert/delete, and a deferred-maintenance :meth:`TupleStore.bulk` context
  so churn rounds pay one index merge instead of per-tuple upkeep.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import SchemaError
from .backends import (
    DEFAULT_BLOCK_SIZE,
    StorageBackend,
    make_backend,
    register_backend,
    resolve_backend,
)
from .schema import Schema
from .tuples import HiddenTuple

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "PrefixIndex",
    "SortedKeyList",
    "TupleStore",
]


class SortedKeyList:
    """A sorted multiset of integers stored in balanced blocks.

    Supports the three operations the prefix index needs:

    * :meth:`add` / :meth:`remove` in O(sqrt n),
    * :meth:`rank` (count of keys strictly below a value) in
      O(log n + #blocks),
    * :meth:`iter_range` over a half-open key interval.
    """

    __slots__ = ("_blocks", "_maxes", "_size", "_block_size")

    def __init__(
        self,
        keys: Iterable[int] = (),
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        self._block_size = block_size
        self._rebuild(sorted(keys))

    def __len__(self) -> int:
        return self._size

    def _locate_block(self, key: int) -> int:
        """Index of the first block whose max is >= key (len for none)."""
        return bisect_left(self._maxes, key)

    def add(self, key: int) -> None:
        """Insert ``key`` keeping order; duplicates are allowed."""
        if not self._blocks:
            self._blocks.append([key])
            self._maxes.append(key)
            self._size = 1
            return
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            block_index -= 1
        block = self._blocks[block_index]
        insort(block, key)
        self._maxes[block_index] = block[-1]
        self._size += 1
        if len(block) > 2 * self._block_size:
            self._split_block(block_index)

    def _split_block(self, block_index: int) -> None:
        block = self._blocks[block_index]
        half = len(block) // 2
        right = block[half:]
        del block[half:]
        self._blocks.insert(block_index + 1, right)
        self._maxes[block_index] = block[-1]
        self._maxes.insert(block_index + 1, right[-1])

    def remove(self, key: int) -> None:
        """Remove one occurrence of ``key``; raise ``ValueError`` if absent."""
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            raise ValueError(f"key {key} not in SortedKeyList")
        block = self._blocks[block_index]
        position = bisect_left(block, key)
        if position == len(block) or block[position] != key:
            raise ValueError(f"key {key} not in SortedKeyList")
        del block[position]
        self._size -= 1
        if block:
            self._maxes[block_index] = block[-1]
        else:
            del self._blocks[block_index]
            del self._maxes[block_index]

    def bulk_add(self, keys: Iterable[int]) -> None:
        """Insert a batch of keys with one rebuild instead of n insorts.

        Large batches (at least a quarter of the current size) rebuild the
        block structure from a single merge-sort; small batches fall back to
        per-key insertion, which keeps amortized cost below a rebuild.
        """
        batch = sorted(keys)
        if not batch:
            return
        if len(batch) * 4 < self._size:
            for key in batch:
                self.add(key)
            return
        merged = list(self)
        merged.extend(batch)
        merged.sort()
        self._rebuild(merged)

    def bulk_remove(self, keys: Iterable[int]) -> None:
        """Remove a batch of keys; raise ``ValueError`` if any is absent.

        Mirrors :meth:`bulk_add`: large batches rebuild once, small batches
        delegate to per-key removal.
        """
        batch = sorted(keys)
        if not batch:
            return
        if len(batch) * 4 < self._size:
            for key in batch:
                self.remove(key)
            return
        survivors: list[int] = []
        batch_position = 0
        batch_length = len(batch)
        for key in self:
            if batch_position < batch_length and batch[batch_position] == key:
                batch_position += 1
                continue
            survivors.append(key)
        if batch_position != batch_length:
            raise ValueError(
                f"key {batch[batch_position]} not in SortedKeyList"
            )
        self._rebuild(survivors)

    def _rebuild(self, sorted_keys: list[int]) -> None:
        """Replace the contents with an already-sorted key list."""
        self._blocks = []
        self._maxes = []
        for start in range(0, len(sorted_keys), self._block_size):
            block = sorted_keys[start : start + self._block_size]
            self._blocks.append(block)
            self._maxes.append(block[-1])
        self._size = len(sorted_keys)

    def __contains__(self, key: int) -> bool:
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            return False
        block = self._blocks[block_index]
        position = bisect_left(block, key)
        return position < len(block) and block[position] == key

    def rank(self, key: int) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        block_index = self._locate_block(key)
        if block_index == len(self._blocks):
            return self._size
        preceding = 0
        for i in range(block_index):
            preceding += len(self._blocks[i])
        return preceding + bisect_left(self._blocks[block_index], key)

    def count_range(self, lo: int, hi: int) -> int:
        """Number of keys in the half-open interval ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.rank(hi) - self.rank(lo)

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        """Yield keys in ``[lo, hi)`` in ascending order."""
        if hi <= lo:
            return
        block_index = self._locate_block(lo)
        while block_index < len(self._blocks):
            block = self._blocks[block_index]
            start = bisect_left(block, lo) if block[0] < lo else 0
            for position in range(start, len(block)):
                key = block[position]
                if key >= hi:
                    return
                yield key
            block_index += 1

    def __iter__(self) -> Iterator[int]:
        for block in self._blocks:
            yield from block

    def check_invariants(self) -> None:
        """Validate internal structure (used by property tests)."""
        total = 0
        previous_max = None
        for block, block_max in zip(self._blocks, self._maxes):
            assert block, "empty block retained"
            assert block == sorted(block), "unsorted block"
            assert block[-1] == block_max, "stale block max"
            if previous_max is not None:
                assert block[0] >= previous_max, "blocks out of order"
            previous_max = block_max
            total += len(block)
        assert total == self._size, "size counter out of sync"


register_backend(
    "blocked",
    lambda block_size=DEFAULT_BLOCK_SIZE, key_bound=None: SortedKeyList(
        block_size=block_size
    ),
)


class PrefixIndex:
    """Mixed-radix key index over one attribute order.

    The key of a tuple is::

        ((v[o1] * |U_o2| + v[o2]) * |U_o3| + ...) * TID_SPAN + tid

    so a depth-``d`` prefix (values for the first ``d`` attributes of the
    order) owns the contiguous range ``[code_d * span_d, (code_d+1) * span_d)``
    where ``span_d`` is the product of the remaining radices times
    ``TID_SPAN``.  Python's arbitrary-precision integers make this exact for
    any number of attributes.

    The key multiset lives in a pluggable
    :class:`~repro.hiddendb.backends.StorageBackend` selected by name
    (``None`` = the process-wide default).
    """

    __slots__ = ("attr_order", "backend_name", "_radices", "_spans",
                 "_tid_span", "_keys")

    def __init__(
        self,
        schema: Schema,
        attr_order: Sequence[int],
        tid_span: int = 2**48,
        block_size: int = DEFAULT_BLOCK_SIZE,
        backend: str | None = None,
    ):
        order = tuple(attr_order)
        if sorted(order) != list(range(schema.num_attributes)):
            raise SchemaError(
                "attr_order must be a permutation of all attribute indexes"
            )
        self.attr_order = order
        self._radices = tuple(schema.attributes[a].size for a in order)
        self._tid_span = tid_span
        # _spans[d] = width of a depth-d prefix's key range.
        spans = [tid_span]
        for radix in reversed(self._radices):
            spans.append(spans[-1] * radix)
        spans.reverse()  # spans[d] for d in 0..m
        self._spans = tuple(spans)
        self.backend_name = resolve_backend(backend)
        self._keys: StorageBackend = make_backend(
            self.backend_name, block_size=block_size, key_bound=self._spans[0]
        )

    @property
    def depth(self) -> int:
        """Maximum prefix depth (number of attributes)."""
        return len(self.attr_order)

    def encode(self, t: HiddenTuple) -> int:
        """Full key of a tuple (value digits + tid)."""
        code = 0
        values = t.values
        for attr_index, radix in zip(self.attr_order, self._radices):
            code = code * radix + values[attr_index]
        return code * self._tid_span + t.tid

    def prefix_range(self, prefix_values: Sequence[int]) -> tuple[int, int]:
        """Half-open key interval of the node fixing ``prefix_values``.

        ``prefix_values`` are value indices for the first ``len(prefix)``
        attributes of this index's order.
        """
        depth = len(prefix_values)
        code = 0
        for position in range(depth):
            code = code * self._radices[position] + prefix_values[position]
        span = self._spans[depth]
        lo = code * span
        return lo, lo + span

    def add(self, t: HiddenTuple) -> None:
        self._keys.add(self.encode(t))

    def remove(self, t: HiddenTuple) -> None:
        self._keys.remove(self.encode(t))

    def bulk_add(self, tuples: Iterable[HiddenTuple]) -> None:
        """Index a batch of tuples with one backend merge."""
        self._keys.bulk_add([self.encode(t) for t in tuples])

    def bulk_remove(self, tuples: Iterable[HiddenTuple]) -> None:
        """Unindex a batch of tuples with one backend merge."""
        self._keys.bulk_remove([self.encode(t) for t in tuples])

    def count_prefix(self, prefix_values: Sequence[int]) -> int:
        """Number of stored tuples matching the prefix."""
        lo, hi = self.prefix_range(prefix_values)
        return self._keys.count_range(lo, hi)

    def iter_tids(self, prefix_values: Sequence[int]) -> Iterator[int]:
        """Yield tids of tuples matching the prefix (key order)."""
        lo, hi = self.prefix_range(prefix_values)
        tid_span = self._tid_span
        for key in self._keys.iter_range(lo, hi):
            yield key % tid_span

    def __len__(self) -> int:
        return len(self._keys)


class TupleStore:
    """Tuple heap plus registered prefix indexes and a mutation stream.

    Listeners registered via :meth:`subscribe` receive
    ``("insert", tuple)`` / ``("delete", tuple)`` events, which is how the
    experiment harness maintains exact ground truth in O(1) per mutation.

    All prefix indexes share one storage backend, chosen at construction
    (``backend=None`` picks the process-wide default).  Inside a
    :meth:`bulk` block, per-mutation index maintenance is deferred and the
    buffered batch is applied with one ``bulk_add``/``bulk_remove`` per
    index when the block exits; the tuple heap and the listener stream stay
    exact throughout, so only *index reads* must wait for the block to end.
    """

    def __init__(
        self,
        schema: Schema,
        block_size: int = DEFAULT_BLOCK_SIZE,
        backend: str | None = None,
    ):
        self.schema = schema
        self.backend_name = resolve_backend(backend)
        self._block_size = block_size
        self._tuples: dict[int, HiddenTuple] = {}
        self._indexes: dict[tuple[int, ...], PrefixIndex] = {}
        self._listeners: list[Callable[[str, HiddenTuple], None]] = []
        self._bulk_depth = 0
        self._pending_add: list[HiddenTuple] = []
        self._pending_del: list[HiddenTuple] = []

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, tid: int) -> bool:
        return tid in self._tuples

    def get(self, tid: int) -> HiddenTuple:
        return self._tuples[tid]

    def tuples(self) -> Iterator[HiddenTuple]:
        """Iterate over all stored tuples (no particular order)."""
        return iter(self._tuples.values())

    def subscribe(self, listener: Callable[[str, HiddenTuple], None]) -> None:
        """Register a mutation listener (``event in {"insert", "delete"}``)."""
        self._listeners.append(listener)

    def ensure_index(self, attr_order: Sequence[int]) -> PrefixIndex:
        """Get (or build, backfilling existing tuples) the index for an order."""
        key = tuple(attr_order)
        index = self._indexes.get(key)
        if index is None:
            # A new index built mid-bulk must not re-apply the buffered
            # mutations its backfill already covers.
            self._flush_pending()
            index = PrefixIndex(
                self.schema,
                key,
                block_size=self._block_size,
                backend=self.backend_name,
            )
            index.bulk_add(self._tuples.values())
            self._indexes[key] = index
        return index

    def insert(self, t: HiddenTuple) -> None:
        """Insert a tuple; tids must be unique for the store's lifetime."""
        if t.tid in self._tuples:
            raise SchemaError(f"duplicate tid {t.tid}")
        self._tuples[t.tid] = t
        if self._bulk_depth:
            self._pending_add.append(t)
        else:
            for index in self._indexes.values():
                index.add(t)
        for listener in self._listeners:
            listener("insert", t)

    def delete(self, tid: int) -> HiddenTuple:
        """Delete by tid and return the removed tuple."""
        t = self._tuples.pop(tid)
        if self._bulk_depth:
            self._pending_del.append(t)
        else:
            for index in self._indexes.values():
                index.remove(t)
        for listener in self._listeners:
            listener("delete", t)
        return t

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    @contextmanager
    def bulk(self):
        """Defer index maintenance for a batch of mutations.

        Mutations inside the block update the heap and fire listener events
        immediately; prefix indexes are brought up to date in one
        ``bulk_add``/``bulk_remove`` pass when the outermost block exits.
        Index-backed queries issued *inside* the block would see stale
        counts — the simulator only mutates between queries, so no such
        read exists in any supported workload.
        """
        self._bulk_depth += 1
        try:
            yield self
        finally:
            self._bulk_depth -= 1
            if self._bulk_depth == 0:
                self._flush_pending()

    def _flush_pending(self) -> None:
        if not self._pending_add and not self._pending_del:
            return
        adds, dels = self._pending_add, self._pending_del
        self._pending_add, self._pending_del = [], []
        for index in self._indexes.values():
            if adds:
                index.bulk_add(adds)
            if dels:
                index.bulk_remove(dels)

    def bulk_insert(self, tuples: Iterable[HiddenTuple]) -> int:
        """Insert many tuples, paying one index merge for the whole batch."""
        count = 0
        with self.bulk():
            for t in tuples:
                self.insert(t)
                count += 1
        return count

    def bulk_delete(self, tids: Iterable[int]) -> list[HiddenTuple]:
        """Delete many tids, paying one index merge for the whole batch."""
        with self.bulk():
            return [self.delete(tid) for tid in tids]

    def replace(self, t: HiddenTuple) -> None:
        """Swap the stored tuple with the same tid (measure updates)."""
        old = self._tuples[t.tid]
        if old.values != t.values:
            # Categorical change moves the tuple in every index; model it
            # as delete + insert so indexes and listeners stay consistent.
            self.delete(old.tid)
            self.insert(t)
            return
        self._tuples[t.tid] = t
        for listener in self._listeners:
            listener("delete", old)
            listener("insert", t)

    def random_tids(self, rng, count: int) -> list[int]:
        """Sample ``count`` distinct tids uniformly (for deletion schedules)."""
        population = list(self._tuples.keys())
        if count >= len(population):
            return population
        return rng.sample(population, count)
