"""The dynamic hidden database (paper §2.1, round-update model).

A :class:`HiddenDatabase` owns a :class:`~repro.hiddendb.store.TupleStore`,
assigns ranking scores at insert time, tracks the current round index, and —
for the convenience of update schedules — hands out fresh tids.

The round-update model: mutations are applied, then :meth:`advance_round` is
called, and the database is considered static for the duration of the round
(estimators query it through :class:`~repro.hiddendb.interface.TopKInterface`).
The constant-update model of §5.2 simply mutates the database *between
queries* instead (see :class:`repro.data.schedules.IntraRoundDriver`).

Epoch double-buffering (HTAP overlap): :meth:`HiddenDatabase.publish_epoch`
freezes the live store into an immutable
:class:`~repro.hiddendb.epoch.StoreEpoch` and installs it as the published
read version.  Readers that enter a :func:`reading_epoch` scope resolve
:attr:`HiddenDatabase.read_store` (and :attr:`current_round`) against that
pinned epoch, so round-boundary churn on the live store can proceed
concurrently without invalidating in-flight estimator pages.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..obs import OBS
from .backends import DEFAULT_BLOCK_SIZE
from .epoch import StoreEpoch
from .ranking import RandomScore, RankingPolicy, scores_for_batch
from .schema import Schema
from .store import TupleStore, get_data_plane
from .tuples import HiddenTuple, TupleBatch

#: Per-context (thread / task) epoch pin: ``(database, epoch)`` while inside
#: a :func:`reading_epoch` scope, ``None`` otherwise.  Worker threads do NOT
#: inherit context variables — executors that fan reads out must re-enter
#: :func:`reading_epoch` inside each worker.
_epoch_pin: ContextVar["tuple[HiddenDatabase, StoreEpoch] | None"] = ContextVar(
    "repro_epoch_pin", default=None
)

# Import-time observability handles (see repro.obs).
_PUBLISH_SECONDS = OBS.histogram("repro_epoch_publish_seconds")
_PINNED_READERS = OBS.gauge("repro_epoch_pinned_readers")


@contextmanager
def reading_epoch(db: "HiddenDatabase", epoch: StoreEpoch):
    """Pin all reads of ``db`` in this context to ``epoch``.

    While the scope is active, ``db.read_store`` resolves to ``epoch`` and
    ``db.current_round`` reports the round the epoch was published for —
    estimators see one immutable version end to end even if the live store
    is being churned and re-published concurrently.
    """
    token = _epoch_pin.set((db, epoch))
    # Capture the enabled flag so a registry toggled mid-scope cannot
    # unbalance the gauge (inc without dec or vice versa).
    tracked = OBS.enabled
    if tracked:
        _PINNED_READERS.inc()
    try:
        yield epoch
    finally:
        _epoch_pin.reset(token)
        if tracked:
            _PINNED_READERS.dec()


class HiddenDatabase:
    """A dynamic hidden web database with round semantics.

    ``backend`` selects the storage engine behind every prefix index
    (``None`` = the process-wide default, see
    :mod:`repro.hiddendb.backends`); ``backend_options`` carries
    engine-specific factory knobs — ``HiddenDatabase(schema,
    backend="sharded", backend_options={"shards": 8})`` partitions every
    index across 8 inner engines.
    """

    def __init__(
        self,
        schema: Schema,
        ranking: RankingPolicy | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        backend: str | None = None,
        backend_options: Mapping | None = None,
    ):
        self.schema = schema
        self.ranking = ranking if ranking is not None else RandomScore()
        self.store = TupleStore(
            schema,
            block_size=block_size,
            backend=backend,
            backend_options=backend_options,
        )
        self._round = 1
        self._next_tid = 0
        self._published: StoreEpoch | None = None

    @property
    def backend(self) -> str:
        """Name of the storage backend behind this database's indexes."""
        return self.store.backend_name

    # ------------------------------------------------------------------
    # Round bookkeeping
    # ------------------------------------------------------------------
    @property
    def current_round(self) -> int:
        """1-based index of the current round ``Ri``.

        Inside a :func:`reading_epoch` scope for this database, reports the
        round the pinned epoch was published for (the live counter may have
        advanced concurrently).
        """
        pin = _epoch_pin.get()
        if pin is not None and pin[0] is self:
            return pin[1].round_index
        return self._round

    def advance_round(self) -> int:
        """Start the next round and return its index."""
        self._round += 1
        return self._round

    # ------------------------------------------------------------------
    # Epoch double-buffering
    # ------------------------------------------------------------------
    @property
    def published(self) -> StoreEpoch | None:
        """The most recently published read epoch (``None`` before the
        first :meth:`publish_epoch`)."""
        return self._published

    @property
    def read_store(self) -> TupleStore:
        """The store reads should target in the current context.

        Resolves to the pinned epoch inside a :func:`reading_epoch` scope
        for this database, and to the live store otherwise.
        """
        pin = _epoch_pin.get()
        if pin is not None and pin[0] is self:
            return pin[1]
        return self.store

    def migrate_backend(
        self,
        backend: str | None,
        backend_options: Mapping | None = None,
    ) -> str:
        """Rebuild the store's indexes on a new backend, atomically.

        A thin forward to :meth:`TupleStore.migrate_backend` — same
        serialization contract as :meth:`publish_epoch` (callers hold the
        engine write lock), same guarantee: content and mutation epoch are
        untouched, so estimates are bit-identical across the swap.
        Readers pinned to a published epoch keep their frozen version.
        """
        if not OBS.enabled:
            return self.store.migrate_backend(backend, backend_options)
        with OBS.span("tuning.migrate_backend"):
            return self.store.migrate_backend(backend, backend_options)

    def publish_epoch(self) -> StoreEpoch:
        """Freeze the live store and install it as the published epoch.

        Callers must serialize this against writers (the engine facade's
        write lock provides that); readers already pinned to the previous
        epoch are unaffected — their version stays readable until released.
        """
        if not OBS.enabled:
            self._published = self.store.publish_epoch(self._round)
            return self._published
        with OBS.span("round.publish_flip"):
            started = perf_counter()
            self._published = self.store.publish_epoch(self._round)
            _PUBLISH_SECONDS.observe(perf_counter() - started)
        return self._published

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def allocate_tid(self) -> int:
        """A fresh, never-used tuple id."""
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def insert(
        self,
        values: bytes | Sequence[int],
        measures: Sequence[float] = (),
        tid: int | None = None,
    ) -> HiddenTuple:
        """Insert a new tuple; its ranking score is assigned by the policy."""
        if tid is None:
            tid = self.allocate_tid()
        else:
            self._next_tid = max(self._next_tid, tid + 1)
        if not isinstance(values, bytes):
            values = bytes(values)
        t = HiddenTuple(tid, values, tuple(measures))
        t.score = self.ranking.score(t, self.schema)
        self.store.insert(t)
        return t

    def insert_tuple(self, t: HiddenTuple) -> HiddenTuple:
        """Insert a pre-built tuple (keeps its score — used by pools)."""
        self._next_tid = max(self._next_tid, t.tid + 1)
        self.store.insert(t)
        return t

    def delete(self, tid: int) -> HiddenTuple:
        """Delete a tuple by id and return it."""
        return self.store.delete(tid)

    def update_measures(self, tid: int, measures: Sequence[float]) -> HiddenTuple:
        """Replace a tuple's measures (e.g. a price change on a listing)."""
        updated = self.store.get(tid).with_measures(tuple(measures))
        self.store.replace(updated)
        return updated

    def bulk_load(self, tuples: Iterable[HiddenTuple]) -> int:
        """Insert many pre-built tuples; returns how many were loaded."""
        with self.store.bulk():
            count = 0
            for t in tuples:
                self.insert_tuple(t)
                count += 1
        return count

    def insert_batch(self, batch: TupleBatch) -> int:
        """Insert a columnar batch: one tid range, one score vector, one
        index merge.

        Semantically identical to inserting the batch's rows one by one
        with :meth:`insert` — same tid allocation, same ranking-policy
        score stream — but the whole batch stays columnar on the
        vectorized data plane (see :mod:`repro.hiddendb.store`).
        """
        n = len(batch)
        if n == 0:
            return 0
        tids = np.arange(self._next_tid, self._next_tid + n, dtype=np.int64)
        scores = scores_for_batch(self.ranking, batch, tids, self.schema)
        self._next_tid += n
        self.store.insert_batch(batch.with_identity(tids, scores))
        return n

    def insert_many(
        self,
        rows: (
            Iterable[tuple[bytes | Sequence[int], Sequence[float]]] | TupleBatch
        ),
    ) -> int:
        """Insert many ``(values, measures)`` payloads in one index merge.

        Semantically identical to calling :meth:`insert` per row (same tid
        allocation, same ranking-policy score stream) but the indexes are
        brought up to date with one bulk merge for the whole batch.  A
        :class:`TupleBatch` — or, on the vectorized data plane, any uniform
        payload list — takes the columnar fast path.
        """
        if isinstance(rows, TupleBatch):
            return self.insert_batch(rows)
        if get_data_plane() == "vectorized":
            rows = list(rows)
            if self._payloads_uniform(rows):
                return self.insert_batch(
                    TupleBatch.from_payloads(rows, len(self.schema.measures))
                )
        count = 0
        with self.store.bulk():
            for values, measures in rows:
                self.insert(values, measures)
                count += 1
        return count

    def _payloads_uniform(self, rows: list) -> bool:
        """True when payload rows can be packed into one value matrix."""
        num_attributes = self.schema.num_attributes
        num_measures = len(self.schema.measures)
        return bool(rows) and all(
            len(values) == num_attributes and len(measures) == num_measures
            for values, measures in rows
        )

    def bulk_delete(self, tids: Iterable[int]) -> list[HiddenTuple]:
        """Delete many tuples by id in one index merge; returns them."""
        return self.store.bulk_delete(tids)

    # ------------------------------------------------------------------
    # Introspection (simulator-side only; NOT visible to estimators)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.read_store)

    def tuples(self) -> Iterator[HiddenTuple]:
        return self.read_store.tuples()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"HiddenDatabase(n={len(self)}, m={self.schema.num_attributes}, "
            f"round={self._round})"
        )
