"""The restrictive top-k search interface (paper §2.1).

This is the *only* channel estimators may use to see the database.  A query
returns at most ``k`` tuples chosen by the proprietary ranking; whether more
matches exist is revealed only through the overflow flag (no counts).

Query evaluation strategy:

* If the query's predicate attributes are a prefix of some registered
  attribute order, the matching set is a contiguous range in that order's
  :class:`~repro.hiddendb.store.PrefixIndex` — count via two bisects, page
  materialised lazily.
* Otherwise (ad-hoc conjunctions) evaluation falls back to a full scan.
  The scan path doubles as the correctness oracle in property tests.

Two query planes implement both strategies (selected by the process-wide
``REPRO_DATA_PLANE`` switch, see :mod:`repro.hiddendb.store`):

* **scalar** — the reference plane: per-tuple ``store.get`` plus
  :func:`~repro.hiddendb.result.top_k_by_score`.  The oracle the parity
  tests compare against.
* **columnar** (the ``vectorized`` plane, default) — candidate tids come
  from the index as vectors (:meth:`PrefixIndex.range_tids`), scan
  predicates are matched against the frozen blocks' value matrices
  (:meth:`TupleStore.scan_match`), and a valid result carries a deferred
  :class:`~repro.hiddendb.result.PageColumns`: page selection
  (``np.argpartition`` + exact lexsort, tie-broken ``(-score, tid)``
  exactly like ``top_k_by_score``) and tuple materialisation run only when
  a consumer reads the page.  Deferred *valid* pages are pinned to the
  store's mutation epoch and raise
  :class:`~repro.errors.StaleResultError` rather than reflect post-query
  state (their scalar twin was computed eagerly); the intra-round update
  driver is safe because :class:`~repro.hiddendb.session.QuerySession`
  freezes results before its mutation hook fires.  *Overflow* pages keep
  the scalar plane's lazy semantics path by path: prefix loaders re-read
  the current index state at access on both planes, scan loaders rank a
  query-time snapshot on both planes.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from ..errors import StaleResultError
from ..obs import OBS
from .database import HiddenDatabase
from .query import ConjunctiveQuery
from .result import (
    PageColumns,
    QueryResult,
    QueryStatus,
    top_k_by_score,
    top_k_select,
)
from .store import get_data_plane
from .tuples import HiddenTuple


#: Registry handles per query status, created once at import so the hot
#: path (``search``) never takes the registry's get-or-create lock.
_STATUS_COUNTERS = {
    QueryStatus.UNDERFLOW: OBS.counter(
        "repro_queries_total", {"status": "underflow"}
    ),
    QueryStatus.VALID: OBS.counter(
        "repro_queries_total", {"status": "valid"}
    ),
    QueryStatus.OVERFLOW: OBS.counter(
        "repro_queries_total", {"status": "overflow"}
    ),
}


class InterfaceStats:
    """Simulator-side counters (a real site would keep these server-side).

    Updates run under a per-instance lock, so observers reading during a
    ``run_round(parallel=N)`` (telemetry, ``Engine.metrics()``) always see
    a consistent ``queries == underflow + valid + overflow`` snapshot.
    """

    __slots__ = ("queries", "underflow", "valid", "overflow", "_lock")

    def __init__(self) -> None:
        self.queries = 0
        self.underflow = 0
        self.valid = 0
        self.overflow = 0
        self._lock = threading.Lock()

    def record(self, status: QueryStatus) -> None:
        with self._lock:
            self.queries += 1
            if status is QueryStatus.UNDERFLOW:
                self.underflow += 1
            elif status is QueryStatus.VALID:
                self.valid += 1
            else:
                self.overflow += 1
        if OBS.enabled:
            _STATUS_COUNTERS[status].inc()

    def merge(self, other: "InterfaceStats") -> None:
        """Fold another stats object into this one (both stay valid).

        Snapshots ``other`` first, then adds under this instance's lock —
        never holding both, so concurrent merges cannot deadlock.
        """
        snapshot = other.to_dict()
        with self._lock:
            self.queries += snapshot["queries"]
            self.underflow += snapshot["underflow"]
            self.valid += snapshot["valid"]
            self.overflow += snapshot["overflow"]

    def to_dict(self) -> dict[str, int]:
        """Consistent counter snapshot (stable keys)."""
        with self._lock:
            return {
                "queries": self.queries,
                "underflow": self.underflow,
                "valid": self.valid,
                "overflow": self.overflow,
            }

    def as_dict(self) -> dict[str, int]:
        """Alias of :meth:`to_dict` (the pre-PR-9 name)."""
        return self.to_dict()


class TopKInterface:
    """Search endpoint of a hidden database with page size ``k``."""

    def __init__(self, db: HiddenDatabase, k: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.db = db
        self.k = k
        self.stats = InterfaceStats()

    @property
    def schema(self):
        return self.db.schema

    @property
    def current_round(self) -> int:
        """Round index, as a client could infer from wall-clock time."""
        return self.db.current_round

    @property
    def backend(self) -> str:
        """Storage backend behind the database (simulator-side metadata)."""
        return self.db.backend

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def search(self, query: ConjunctiveQuery) -> QueryResult:
        """Execute one conjunctive search query."""
        query.validate(self.db.schema)
        result = self._evaluate(query)
        self.stats.record(result.status)
        return result

    def _evaluate(self, query: ConjunctiveQuery) -> QueryResult:
        prefix = self._match_prefix_order(query)
        if prefix is not None:
            attr_order, prefix_values = prefix
            return self._evaluate_prefix(attr_order, prefix_values)
        return self._evaluate_scan(query)

    def register_attr_order(self, attr_order: Sequence[int]) -> None:
        """Pre-register an attribute order so its queries use the index.

        Resolves against the context's read store: inside an epoch-pinned
        round this builds an epoch-local index from the frozen heap and
        leaves the live store (being churned concurrently) untouched.
        """
        self.db.read_store.ensure_index(attr_order)

    def _match_prefix_order(
        self, query: ConjunctiveQuery
    ) -> tuple[tuple[int, ...], list[int]] | None:
        """Find a registered order whose prefix covers the query's attributes."""
        # Iterate a snapshot: another tenant's thread may register a new
        # index (ensure_index) while this query plans.
        if not query.predicates:
            # Root query: any registered index (or none yet) works.
            for attr_order in self.db.read_store.index_orders():
                return attr_order, []
            return None
        wanted = {a: v for a, v in query.predicates}
        for attr_order in self.db.read_store.index_orders():
            head = attr_order[: len(wanted)]
            if set(head) == set(wanted):
                return attr_order, [wanted[a] for a in head]
        return None

    def _epoch_guarded(self, fetch: Callable) -> Callable:
        """Pin a deferred column fetch / page load to the current store state.

        Captures the context's read store: a page pinned to a published
        :class:`~repro.hiddendb.epoch.StoreEpoch` can never go stale (the
        epoch's mutation counter is frozen), so overlapped churn on the
        live store does not invalidate reads started before the flip.
        """
        store = self.db.read_store
        epoch = store.mutation_epoch

        def guarded():
            if store.mutation_epoch != epoch:
                raise StaleResultError(
                    "result page read after a database mutation; read "
                    "pages before mutating (QuerySession freezes them "
                    "ahead of its on_query hook)"
                )
            return fetch()
        return guarded

    def _evaluate_prefix(
        self, attr_order: Sequence[int], prefix_values: list[int]
    ) -> QueryResult:
        store = self.db.read_store
        index = store.ensure_index(attr_order)
        matching = index.count_prefix(prefix_values)
        if matching == 0:
            return QueryResult(QueryStatus.UNDERFLOW, self.k, tuples=())
        if get_data_plane() == "scalar":
            if matching <= self.k:
                page = top_k_by_score(
                    (store.get(tid) for tid in index.iter_tids(prefix_values)),
                    self.k,
                )
                return QueryResult(QueryStatus.VALID, self.k, tuples=page)

            def load_page() -> list[HiddenTuple]:
                return top_k_by_score(
                    (store.get(tid) for tid in index.iter_tids(prefix_values)),
                    self.k,
                )

            return QueryResult(QueryStatus.OVERFLOW, self.k, loader=load_page)
        if matching <= self.k:
            fetch = self._epoch_guarded(
                lambda: store.gather(index.range_tids(prefix_values))
            )
            return QueryResult(
                QueryStatus.VALID,
                self.k,
                page=PageColumns(matching, self.k, fetch),
            )

        def load_page() -> list[HiddenTuple]:
            # Overflow pages re-read the index at access time on both
            # planes (leaf-overflow outcomes are read mid-round by the
            # intra-round driver), so no epoch guard here: the scalar
            # loader above has the identical read-at-access semantics.
            rows = store.gather(index.range_tids(prefix_values))
            batch = rows.batch
            order = top_k_select(batch.scores, batch.tids, self.k)
            return [rows.materialize_row(int(row)) for row in order]

        return QueryResult(QueryStatus.OVERFLOW, self.k, loader=load_page)

    def _evaluate_scan(self, query: ConjunctiveQuery) -> QueryResult:
        """Full-scan evaluation for arbitrary conjunctions."""
        if get_data_plane() == "scalar":
            # Reference path: per-tuple predicate matching over the heap.
            matches = [t for t in self.db.tuples() if query.matches(t)]
            if not matches:
                return QueryResult(QueryStatus.UNDERFLOW, self.k, tuples=())
            if len(matches) <= self.k:
                return QueryResult(
                    QueryStatus.VALID, self.k,
                    tuples=top_k_by_score(matches, self.k),
                )
            return QueryResult(
                QueryStatus.OVERFLOW,
                self.k,
                loader=lambda: top_k_by_score(matches, self.k),
            )
        store = self.db.read_store
        tids, scores = store.scan_match(query.predicates)
        matching = len(tids)
        if matching == 0:
            return QueryResult(QueryStatus.UNDERFLOW, self.k, tuples=())
        if matching <= self.k:
            fetch = self._epoch_guarded(lambda: store.gather(tids))
            return QueryResult(
                QueryStatus.VALID,
                self.k,
                page=PageColumns(matching, self.k, fetch),
            )
        # The scalar scan branch captures its match list eagerly and only
        # ranks it on access; mirror that snapshot semantics exactly by
        # selecting and gathering the page rows now (k rows — cheap next
        # to the scan itself) and deferring just the materialization.
        rows = store.gather(tids[top_k_select(scores, tids, self.k)])
        return QueryResult(
            QueryStatus.OVERFLOW,
            self.k,
            loader=lambda: [
                rows.materialize_row(row) for row in range(len(rows))
            ],
        )
