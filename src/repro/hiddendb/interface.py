"""The restrictive top-k search interface (paper §2.1).

This is the *only* channel estimators may use to see the database.  A query
returns at most ``k`` tuples chosen by the proprietary ranking; whether more
matches exist is revealed only through the overflow flag (no counts).

Query evaluation strategy:

* If the query's predicate attributes are a prefix of some registered
  attribute order, the matching set is a contiguous range in that order's
  :class:`~repro.hiddendb.store.PrefixIndex` — count via two bisects, page
  materialised lazily.
* Otherwise (ad-hoc conjunctions) evaluation falls back to a full scan.
  The scan path doubles as the correctness oracle in property tests.
"""

from __future__ import annotations

from typing import Sequence

from .database import HiddenDatabase
from .query import ConjunctiveQuery
from .result import QueryResult, QueryStatus, top_k_by_score
from .tuples import HiddenTuple


class InterfaceStats:
    """Simulator-side counters (a real site would keep these server-side)."""

    __slots__ = ("queries", "underflow", "valid", "overflow")

    def __init__(self) -> None:
        self.queries = 0
        self.underflow = 0
        self.valid = 0
        self.overflow = 0

    def record(self, status: QueryStatus) -> None:
        self.queries += 1
        if status is QueryStatus.UNDERFLOW:
            self.underflow += 1
        elif status is QueryStatus.VALID:
            self.valid += 1
        else:
            self.overflow += 1


class TopKInterface:
    """Search endpoint of a hidden database with page size ``k``."""

    def __init__(self, db: HiddenDatabase, k: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.db = db
        self.k = k
        self.stats = InterfaceStats()

    @property
    def schema(self):
        return self.db.schema

    @property
    def current_round(self) -> int:
        """Round index, as a client could infer from wall-clock time."""
        return self.db.current_round

    @property
    def backend(self) -> str:
        """Storage backend behind the database (simulator-side metadata)."""
        return self.db.backend

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def search(self, query: ConjunctiveQuery) -> QueryResult:
        """Execute one conjunctive search query."""
        query.validate(self.db.schema)
        result = self._evaluate(query)
        self.stats.record(result.status)
        return result

    def _evaluate(self, query: ConjunctiveQuery) -> QueryResult:
        prefix = self._match_prefix_order(query)
        if prefix is not None:
            attr_order, prefix_values = prefix
            return self._evaluate_prefix(attr_order, prefix_values)
        return self._evaluate_scan(query)

    def register_attr_order(self, attr_order: Sequence[int]) -> None:
        """Pre-register an attribute order so its queries use the index."""
        self.db.store.ensure_index(attr_order)

    def _match_prefix_order(
        self, query: ConjunctiveQuery
    ) -> tuple[tuple[int, ...], list[int]] | None:
        """Find a registered order whose prefix covers the query's attributes."""
        if not query.predicates:
            # Root query: any registered index (or none yet) works.
            for attr_order in self.db.store._indexes:
                return attr_order, []
            return None
        wanted = {a: v for a, v in query.predicates}
        for attr_order in self.db.store._indexes:
            head = attr_order[: len(wanted)]
            if set(head) == set(wanted):
                return attr_order, [wanted[a] for a in head]
        return None

    def _evaluate_prefix(
        self, attr_order: Sequence[int], prefix_values: list[int]
    ) -> QueryResult:
        index = self.db.store.ensure_index(attr_order)
        matching = index.count_prefix(prefix_values)
        if matching == 0:
            return QueryResult(QueryStatus.UNDERFLOW, self.k, tuples=())
        store = self.db.store
        if matching <= self.k:
            page = top_k_by_score(
                (store.get(tid) for tid in index.iter_tids(prefix_values)),
                self.k,
            )
            return QueryResult(QueryStatus.VALID, self.k, tuples=page)

        def load_page() -> list[HiddenTuple]:
            return top_k_by_score(
                (store.get(tid) for tid in index.iter_tids(prefix_values)),
                self.k,
            )

        return QueryResult(QueryStatus.OVERFLOW, self.k, loader=load_page)

    def _evaluate_scan(self, query: ConjunctiveQuery) -> QueryResult:
        """Reference full-scan evaluation for arbitrary conjunctions."""
        matches = [t for t in self.db.tuples() if query.matches(t)]
        if not matches:
            return QueryResult(QueryStatus.UNDERFLOW, self.k, tuples=())
        if len(matches) <= self.k:
            return QueryResult(
                QueryStatus.VALID, self.k, tuples=top_k_by_score(matches, self.k)
            )
        return QueryResult(
            QueryStatus.OVERFLOW,
            self.k,
            loader=lambda: top_k_by_score(matches, self.k),
        )
