"""Schema of a hidden web database.

The paper's model (§2.1): a database has ``m`` categorical attributes
``A1..Am`` with finite domains ``U1..Um``.  Search queries are conjunctions of
``Ai = u`` predicates.  Numerical attributes that are *not* searchable (price,
mileage, ...) are modelled separately as *measures*: real-valued columns that
aggregates may reference but the search interface cannot filter on.

Values are stored as small integer indices into the attribute's domain; a
whole tuple's categorical part is a ``bytes`` object of length ``m`` (domain
sizes are capped at 255), which keeps multi-million-tuple databases affordable
in pure Python.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import SchemaError

#: Largest supported domain size (values are stored in one byte each).
MAX_DOMAIN_SIZE = 255


class Attribute:
    """A searchable categorical attribute with a finite value domain."""

    __slots__ = ("name", "values", "_value_index")

    def __init__(self, name: str, values: Sequence[str] | int):
        if isinstance(values, int):
            if values < 1:
                raise SchemaError(f"attribute {name!r} needs a positive domain size")
            values = tuple(f"{name}_{i}" for i in range(values))
        else:
            values = tuple(values)
        if not values:
            raise SchemaError(f"attribute {name!r} has an empty domain")
        if len(values) > MAX_DOMAIN_SIZE:
            raise SchemaError(
                f"attribute {name!r} domain size {len(values)} exceeds "
                f"{MAX_DOMAIN_SIZE}"
            )
        if len(set(values)) != len(values):
            raise SchemaError(f"attribute {name!r} has duplicate domain values")
        self.name = name
        self.values = values
        self._value_index = {v: i for i, v in enumerate(values)}

    @property
    def size(self) -> int:
        """Domain size |Ui|."""
        return len(self.values)

    def index_of(self, value: str) -> int:
        """Translate a domain label to its stored integer index."""
        try:
            return self._value_index[value]
        except KeyError:
            raise QueryValueError(self.name, value) from None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Attribute({self.name!r}, size={self.size})"


def QueryValueError(attr_name: str, value: str) -> SchemaError:
    """Build a consistent error for an unknown domain label."""
    return SchemaError(f"value {value!r} is not in the domain of {attr_name!r}")


class Schema:
    """Attribute and measure layout of a hidden database.

    Parameters
    ----------
    attributes:
        Searchable categorical attributes, in interface order (the paper's
        ``A1..Am``).
    measures:
        Names of non-searchable numeric columns carried by every tuple
        (e.g. ``("price",)``).  Aggregates reference measures by name.
    """

    __slots__ = ("attributes", "measures", "_attr_index", "_measure_index")

    def __init__(
        self,
        attributes: Iterable[Attribute],
        measures: Sequence[str] = (),
    ):
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise SchemaError("a schema needs at least one attribute")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate attribute names in schema")
        self.measures = tuple(measures)
        if len(set(self.measures)) != len(self.measures):
            raise SchemaError("duplicate measure names in schema")
        self._attr_index = {a.name: i for i, a in enumerate(self.attributes)}
        self._measure_index = {m: i for i, m in enumerate(self.measures)}

    @property
    def num_attributes(self) -> int:
        """Number of searchable attributes (the paper's ``m``)."""
        return len(self.attributes)

    @property
    def domain_sizes(self) -> tuple[int, ...]:
        """Domain size of every attribute, in schema order."""
        return tuple(a.size for a in self.attributes)

    def attribute_index(self, name: str) -> int:
        """Position of the named attribute in the schema."""
        try:
            return self._attr_index[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def measure_index(self, name: str) -> int:
        """Position of the named measure in every tuple's measure vector."""
        try:
            return self._measure_index[name]
        except KeyError:
            raise SchemaError(f"unknown measure {name!r}") from None

    def leaf_space_size(self) -> int:
        """Number of leaves of the full query tree, ``prod |Ui|``."""
        product = 1
        for attribute in self.attributes:
            product *= attribute.size
        return product

    def validate_values(self, values: bytes) -> None:
        """Raise :class:`SchemaError` if ``values`` is not a valid vector."""
        if len(values) != self.num_attributes:
            raise SchemaError(
                f"value vector has {len(values)} entries, schema has "
                f"{self.num_attributes} attributes"
            )
        for position, value in enumerate(values):
            if value >= self.attributes[position].size:
                raise SchemaError(
                    f"value index {value} out of range for attribute "
                    f"{self.attributes[position].name!r}"
                )

    def labels_for(self, values: bytes) -> tuple[str, ...]:
        """Human-readable labels for a stored value vector."""
        return tuple(
            self.attributes[i].values[v] for i, v in enumerate(values)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Schema(m={self.num_attributes}, "
            f"domains={self.domain_sizes}, measures={self.measures})"
        )


def boolean_schema(num_attributes: int, measures: Sequence[str] = ()) -> Schema:
    """Convenience: a schema of ``num_attributes`` Boolean attributes."""
    attrs = [Attribute(f"A{i}", ("0", "1")) for i in range(num_attributes)]
    return Schema(attrs, measures=measures)
