"""Tuple representation for the hidden database simulator.

Tuples are immutable once inserted (an *update* is modelled, as on real
websites, by the owner deleting and re-listing — or by
:meth:`repro.hiddendb.database.HiddenDatabase.update_measures`, which swaps
the tuple object).  The categorical part is a compact ``bytes`` vector of
domain-value indices; measures are a parallel ``tuple`` of floats whose layout
is given by :attr:`repro.hiddendb.schema.Schema.measures`.
"""

from __future__ import annotations

from typing import Sequence

from .schema import Schema


class HiddenTuple:
    """One row of the hidden database.

    Attributes
    ----------
    tid:
        Unique, never-reused tuple identifier.
    values:
        Categorical value indices, one byte per schema attribute.
    measures:
        Numeric measure values, aligned with ``schema.measures``.
    score:
        The proprietary ranking score used by the top-k interface.  Higher
        scores rank earlier.  Assigned by the database's ranking policy at
        insert time; opaque to estimators.
    """

    __slots__ = ("tid", "values", "measures", "score")

    def __init__(
        self,
        tid: int,
        values: bytes,
        measures: tuple[float, ...] = (),
        score: float = 0.0,
    ):
        self.tid = tid
        self.values = values
        self.measures = measures
        self.score = score

    def value(self, attr_index: int) -> int:
        """Stored value index of the given attribute."""
        return self.values[attr_index]

    def measure(self, measure_index: int) -> float:
        """Measure value by position (see ``Schema.measure_index``)."""
        return self.measures[measure_index]

    def with_measures(self, measures: tuple[float, ...]) -> "HiddenTuple":
        """A copy of this tuple with replaced measures (same tid/score)."""
        return HiddenTuple(self.tid, self.values, measures, self.score)

    def describe(self, schema: Schema) -> dict[str, object]:
        """Human-readable mapping of this tuple's attributes and measures."""
        description: dict[str, object] = {
            attribute.name: attribute.values[self.values[i]]
            for i, attribute in enumerate(schema.attributes)
        }
        for i, name in enumerate(schema.measures):
            description[name] = self.measures[i]
        return description

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"HiddenTuple(tid={self.tid}, values={tuple(self.values)})"


def make_tuple(
    tid: int,
    values: Sequence[int],
    measures: Sequence[float] = (),
    score: float = 0.0,
) -> HiddenTuple:
    """Build a :class:`HiddenTuple` from any integer sequence of values."""
    return HiddenTuple(tid, bytes(values), tuple(measures), score)
