"""Tuple representation for the hidden database simulator.

Tuples are immutable once inserted (an *update* is modelled, as on real
websites, by the owner deleting and re-listing — or by
:meth:`repro.hiddendb.database.HiddenDatabase.update_measures`, which swaps
the tuple object).  The categorical part is a compact ``bytes`` vector of
domain-value indices; measures are a parallel ``tuple`` of floats whose layout
is given by :attr:`repro.hiddendb.schema.Schema.measures`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .schema import Schema


class HiddenTuple:
    """One row of the hidden database.

    Attributes
    ----------
    tid:
        Unique, never-reused tuple identifier.
    values:
        Categorical value indices, one byte per schema attribute.
    measures:
        Numeric measure values, aligned with ``schema.measures``.
    score:
        The proprietary ranking score used by the top-k interface.  Higher
        scores rank earlier.  Assigned by the database's ranking policy at
        insert time; opaque to estimators.
    """

    __slots__ = ("tid", "values", "measures", "score")

    def __init__(
        self,
        tid: int,
        values: bytes,
        measures: tuple[float, ...] = (),
        score: float = 0.0,
    ):
        self.tid = tid
        self.values = values
        self.measures = measures
        self.score = score

    def value(self, attr_index: int) -> int:
        """Stored value index of the given attribute."""
        return self.values[attr_index]

    def measure(self, measure_index: int) -> float:
        """Measure value by position (see ``Schema.measure_index``)."""
        return self.measures[measure_index]

    def with_measures(self, measures: tuple[float, ...]) -> "HiddenTuple":
        """A copy of this tuple with replaced measures (same tid/score)."""
        return HiddenTuple(self.tid, self.values, measures, self.score)

    def describe(self, schema: Schema) -> dict[str, object]:
        """Human-readable mapping of this tuple's attributes and measures."""
        description: dict[str, object] = {
            attribute.name: attribute.values[self.values[i]]
            for i, attribute in enumerate(schema.attributes)
        }
        for i, name in enumerate(schema.measures):
            description[name] = self.measures[i]
        return description

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"HiddenTuple(tid={self.tid}, values={tuple(self.values)})"


class TupleBatch:
    """A columnar batch of tuples — the payload unit of the vectorized
    data plane.

    Attributes
    ----------
    values:
        ``(n, m)`` uint8 matrix of categorical value indices; row ``i`` is
        the value vector of tuple ``i`` in schema attribute order.
    measures:
        ``(n, num_measures)`` float64 matrix of measure values.
    tids:
        int64 vector of tuple ids, or ``None`` before the database has
        assigned identity (see :meth:`with_identity`).  When present, must
        be strictly increasing so heap blocks can locate rows by bisect.
    scores:
        float64 vector of ranking scores, or ``None`` before assignment.
    """

    __slots__ = ("values", "measures", "tids", "scores")

    def __init__(
        self,
        values: np.ndarray,
        measures: np.ndarray,
        tids: np.ndarray | None = None,
        scores: np.ndarray | None = None,
    ):
        values = np.ascontiguousarray(values, dtype=np.uint8)
        if values.ndim != 2:
            raise ValueError("values must be an (n, m) matrix")
        measures = np.ascontiguousarray(measures, dtype=np.float64)
        if measures.ndim != 2 or len(measures) != len(values):
            raise ValueError("measures must be an (n, num_measures) matrix")
        self.values = values
        self.measures = measures
        self.tids = None if tids is None else np.asarray(tids, dtype=np.int64)
        self.scores = (
            None if scores is None else np.asarray(scores, dtype=np.float64)
        )

    def __len__(self) -> int:
        return len(self.values)

    @property
    def num_attributes(self) -> int:
        return self.values.shape[1]

    def with_identity(
        self, tids: np.ndarray, scores: np.ndarray
    ) -> "TupleBatch":
        """This batch's content with tids and ranking scores attached."""
        return TupleBatch(self.values, self.measures, tids, scores)

    def row_measures(self, row: int) -> tuple[float, ...]:
        """Measure tuple of one row (matches the scalar payload layout)."""
        if self.measures.shape[1] == 0:
            return ()
        return tuple(self.measures[row].tolist())

    def materialize(self, row: int) -> HiddenTuple:
        """Build the :class:`HiddenTuple` for one row (identity required)."""
        if self.tids is None or self.scores is None:
            raise ValueError("batch has no identity; database-assigned "
                             "tids/scores are required to materialize")
        return HiddenTuple(
            int(self.tids[row]),
            self.values[row].tobytes(),
            self.row_measures(row),
            float(self.scores[row]),
        )

    def iter_tuples(self) -> Iterator[HiddenTuple]:
        """Materialize every row in order (scalar-compatibility path)."""
        for row in range(len(self)):
            yield self.materialize(row)

    def payloads(self) -> list[tuple[bytes, tuple[float, ...]]]:
        """The batch as scalar ``(values, measures)`` payloads."""
        return [
            (self.values[row].tobytes(), self.row_measures(row))
            for row in range(len(self))
        ]

    @classmethod
    def from_payloads(
        cls,
        payloads: Iterable[tuple[bytes | Sequence[int], Sequence[float]]],
        num_measures: int,
    ) -> "TupleBatch":
        """Columnar view of scalar payloads (all rows must be uniform)."""
        rows = list(payloads)
        if not rows:
            return cls(
                np.empty((0, 0), dtype=np.uint8),
                np.empty((0, num_measures), dtype=np.float64),
            )
        raw = b"".join(
            v if isinstance(v, bytes) else bytes(v) for v, _ in rows
        )
        values = np.frombuffer(raw, dtype=np.uint8).reshape(len(rows), -1)
        measures = np.array(
            [m for _, m in rows], dtype=np.float64
        ).reshape(len(rows), num_measures)
        return cls(values, measures)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"TupleBatch(n={len(self)}, m={self.num_attributes}, "
            f"identity={self.tids is not None})"
        )


def make_tuple(
    tid: int,
    values: Sequence[int],
    measures: Sequence[float] = (),
    score: float = 0.0,
) -> HiddenTuple:
    """Build a :class:`HiddenTuple` from any integer sequence of values."""
    return HiddenTuple(tid, bytes(values), tuple(measures), score)
