"""Memory-mapped sorted-run storage engine — the ``"mapped"`` backend.

The fourth storage engine (see :mod:`repro.hiddendb.backends` for the
other three) keeps its main sorted run in **memory-mapped files** instead
of process RAM.  The layout is the packed engine's run/tail/dead scheme —
one large immutable sorted run plus small in-RAM insert/delete buffers —
but each compaction writes a *new* run file, fsyncs it, remaps, and only
then unlinks the old one, so:

* multi-ten-million-key indexes cost page cache, not anonymous RAM, and
  a warm index reopens at page-in speed;
* every view handed out by :meth:`MappedBackend.range_keys` is a slice of
  an immutable mapped run — the columnar query plane reads mapped runs
  with no format change, and a view stays a valid snapshot across
  compactions (the old mapping survives the unlink until released);
* the on-disk format is trivial to specify and snapshot (see
  ``docs/format.md`` — run files are raw little-endian int64 vectors, or
  fixed-width limb matrices for wide keys).

Key representation:

* **Narrow keys** (the key universe fits a signed 64-bit word, which
  :class:`~repro.hiddendb.store.KeyCodec` guarantees whenever
  ``fits_int64``): the run file is one little-endian int64 vector; rank
  is a single C-speed ``np.searchsorted``.
* **Wide keys** (mixed-radix universes beyond ``2**63``): each key is
  split into a fixed number of 63-bit limbs, most-significant first, and
  the run file is an ``(n, L)`` little-endian int64 matrix.  Rows in
  lexicographic order are exactly keys in numeric order (limbs are
  non-negative and fixed-width), so rank narrows an index window with one
  ``np.searchsorted`` per limb column — L binary searches instead of
  ~log2(n) arbitrary-precision comparisons.  Range reads recombine only
  the rows inside the window back into Python ints.

Run files live in a private subdirectory of the factory's ``path`` option
(a fresh temporary directory when no path is given) and are **scratch**:
crash durability comes from the atomic epoch snapshots of
:mod:`repro.api.persistence`, which serialize the tuple heap and rebuild
indexes on restore.  The directory is removed when the backend is
garbage-collected or :meth:`MappedBackend.close`\\ d.

Concurrency follows the module contract of
:mod:`repro.hiddendb.backends`: concurrent readers are safe (the rank
cache is add-only under the GIL; runs are immutable), mutations must be
externally serialized — the engine facade's round barrier provides that.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from bisect import bisect_left, insort
from heapq import merge as heap_merge
from time import perf_counter
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import ExperimentError
from ..obs import OBS
from .backends import (
    _CHUNK,
    _INT64_MAX,
    _RANK_CACHE_LIMIT,
    DEFAULT_BLOCK_SIZE,
    _as_int64_batch,
    _object_chunks,
    _sorted_multiset_subtract,
    register_backend,
)

# Import-time observability handles (see repro.hiddendb.backends).
_MAPPED_HITS = OBS.counter(
    "repro_rank_cache_hits_total", {"backend": "mapped"}
)
_MAPPED_MISSES = OBS.counter(
    "repro_rank_cache_misses_total", {"backend": "mapped"}
)
_MAPPED_COMPACTIONS = OBS.counter(
    "repro_backend_compactions_total", {"backend": "mapped"}
)
_MAPPED_REMAPS = OBS.counter("repro_mapped_remaps_total")
_MAPPED_REFREEZE_REUSED = OBS.counter(
    "repro_epoch_refreeze_reused_total", {"backend": "mapped"}
)
_MAPPED_FSYNC_SECONDS = OBS.histogram("repro_mapped_fsync_seconds")
_MAPPED_COMPACTION_SECONDS = OBS.histogram(
    "repro_mapped_compaction_seconds"
)

#: Bits per limb of a wide key (63 keeps every limb a non-negative int64,
#: so limb columns sort identically as signed and as unsigned words).
LIMB_BITS = 63

#: Mask selecting one limb.
LIMB_MASK = (1 << LIMB_BITS) - 1

#: On-disk element type of every run file: little-endian signed 64-bit.
RUN_DTYPE = np.dtype("<i8")


def limb_count(key_bound: int) -> int:
    """Limbs needed for keys in ``[0, key_bound)`` (``key_bound > 2**63``)."""
    bits = max(int(key_bound) - 1, 1).bit_length()
    return max(1, (bits + LIMB_BITS - 1) // LIMB_BITS)


def _recombine_rows(rows: np.ndarray, limbs: int) -> list[int]:
    """Limb-matrix rows back to Python ints (inverse of ``_limb_matrix``)."""
    if not len(rows):
        return []
    acc = rows[:, 0].astype(object)
    for column in range(1, limbs):
        acc = (acc << LIMB_BITS) | rows[:, column].astype(object)
    return acc.tolist()


def _window_of(run: np.ndarray, limbs: int, key: int) -> tuple[int, int]:
    """Equal range ``[lo, hi)`` of a wide key in a limb-matrix run.

    One ``np.searchsorted`` per limb column narrows the window; the
    fixed-width most-significant-first layout makes each narrowing exact
    (truncating a key to its leading limbs is monotone).
    """
    lo, hi = 0, len(run)
    if key < 0:
        return 0, 0
    if key >> (LIMB_BITS * limbs):
        return hi, hi
    key_limbs = [0] * limbs
    remaining = key
    for position in range(limbs - 1, -1, -1):
        key_limbs[position] = remaining & LIMB_MASK
        remaining >>= LIMB_BITS
    for column, limb in enumerate(key_limbs):
        window = run[lo:hi, column]
        offset = lo
        lo = offset + int(np.searchsorted(window, limb, side="left"))
        hi = offset + int(np.searchsorted(window, limb, side="right"))
        if lo == hi:
            break
    return lo, hi


class MappedBackend:
    """Sorted-multiset engine whose main run is a memory-mapped file.

    Parameters
    ----------
    keys:
        Initial contents (any iterable of non-negative ints).
    key_bound:
        Exclusive upper bound of the key universe.  ``<= 2**63 - 1``
        (or ``None``) selects the narrow int64 layout; a wider bound
        selects the fixed-width limb-matrix layout.  Prefix indexes
        always pass their codec's exact bound.
    min_buffer:
        Floor of the in-RAM tail/dead buffer size before a compaction
        rewrites the run file (the adaptive limit is
        ``max(min_buffer, len(run) / 8)``, as in the packed engine).
    path:
        Directory under which this backend creates its private run
        directory.  ``None`` uses the system temporary directory.  Run
        files are scratch — see the module docstring for the durability
        story — and the private directory is deleted on :meth:`close`
        or garbage collection.
    """

    __slots__ = (
        "directory", "_run", "_run_path", "_generation", "_limbs",
        "_packed", "_tail", "_dead", "_size", "_min_buffer",
        "_rank_cache", "_key_bound", "_finalizer", "_freeze_rev",
        "_frozen_rev", "_frozen_view", "_buffers_shared", "__weakref__",
    )

    def __init__(
        self,
        keys: Iterable[int] = (),
        key_bound: int | None = None,
        min_buffer: int = 256,
        path: str | None = None,
    ):
        self._packed = key_bound is None or 0 <= key_bound <= _INT64_MAX
        self._limbs = 1 if self._packed else limb_count(key_bound)
        self._key_bound = key_bound
        self._min_buffer = min_buffer
        if path is not None:
            os.makedirs(path, exist_ok=True)
        self.directory = tempfile.mkdtemp(prefix="mapped-", dir=path)
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, self.directory, ignore_errors=True
        )
        self._run_path: str | None = None
        self._generation = 0
        self._freeze_rev = 0
        self._frozen_rev = -1
        self._frozen_view = None
        self._buffers_shared = False
        self._install_run(sorted(keys))
        self._tail: list[int] = []
        self._dead: list[int] = []
        self._size = len(self._run)
        self._rank_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Run-file management
    # ------------------------------------------------------------------
    @property
    def is_packed(self) -> bool:
        """True when the run is a plain int64 vector (narrow keys)."""
        return self._packed

    @property
    def run_path(self) -> str | None:
        """Path of the current run file (``None`` before the first write)."""
        return self._run_path

    def close(self) -> None:
        """Delete the backend's run directory now (idempotent).

        Views previously handed out by :meth:`range_keys` stay readable —
        the unlinked files' mappings survive until the views are
        released — but the backend itself must not be used afterwards.
        """
        self._finalizer()

    def _limb_matrix(self, keys: Sequence[int]) -> np.ndarray:
        """Wide keys as an ``(n, L)`` int64 matrix, most-significant limb
        first (lexicographic row order == numeric key order)."""
        out = np.empty((len(keys), self._limbs), dtype=np.int64)
        position = 0
        for chunk in _object_chunks(keys):
            n = len(chunk)
            remaining = chunk
            for column in range(self._limbs - 1, -1, -1):
                out[position:position + n, column] = (
                    remaining & LIMB_MASK
                ).astype(np.int64)
                remaining = remaining >> LIMB_BITS
            position += n
        return out

    def _recombine(self, rows: np.ndarray) -> list[int]:
        """Limb-matrix rows back to Python ints (inverse of the above)."""
        return _recombine_rows(rows, self._limbs)

    def _install_run(self, sorted_keys) -> None:
        """Replace the run file with the given sorted contents."""
        if self._packed:
            data = np.ascontiguousarray(sorted_keys, dtype=RUN_DTYPE)
        else:
            data = self._limb_matrix(
                sorted_keys if isinstance(sorted_keys, list)
                else list(sorted_keys)
            ).astype(RUN_DTYPE, copy=False)
        self._generation += 1
        path = os.path.join(
            self.directory, f"run-{self._generation:08d}.i64"
        )
        with open(path, "wb") as handle:
            handle.write(data.tobytes())
            handle.flush()
            if OBS.enabled:
                fsync_started = perf_counter()
                os.fsync(handle.fileno())
                _MAPPED_FSYNC_SECONDS.observe(
                    perf_counter() - fsync_started
                )
            else:
                os.fsync(handle.fileno())
        previous = self._run_path
        self._run_path = path
        if data.size:
            self._run = np.memmap(
                path, dtype=RUN_DTYPE, mode="r", shape=data.shape
            )
            if OBS.enabled:
                _MAPPED_REMAPS.inc()
        else:
            self._run = np.empty(data.shape, dtype=RUN_DTYPE)
        if previous is not None:
            try:
                os.unlink(previous)
            except OSError:  # pragma: no cover - best-effort scratch cleanup
                pass

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Run probes
    # ------------------------------------------------------------------
    def _run_bisect(self, key: int, side: str = "left") -> int:
        """Bisect position of ``key`` in the mapped run."""
        run = self._run
        length = len(run)
        if not length:
            return 0
        if self._packed:
            if key > _INT64_MAX:
                return length
            if key < -_INT64_MAX - 1:
                return 0
            return int(np.searchsorted(run, key, side=side))
        return self._run_window(key)[0 if side == "left" else 1]

    def _run_window(self, key: int) -> tuple[int, int]:
        """Equal range ``[lo, hi)`` of a wide key in the limb-matrix run
        (see :func:`_window_of`)."""
        return _window_of(self._run, self._limbs, key)

    def _iter_run_keys(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[int]:
        """Run keys in row positions ``[start, stop)`` as Python ints."""
        run = self._run
        if stop is None:
            stop = len(run)
        for position in range(start, stop, _CHUNK):
            chunk = run[position:min(position + _CHUNK, stop)]
            if self._packed:
                yield from chunk.tolist()
            else:
                yield from self._recombine(chunk)

    def _iter_live_run(
        self, lo: int | None = None, hi: int | None = None
    ) -> Iterator[int]:
        """Run keys in ``[lo, hi)`` minus their dead occurrences."""
        start = 0 if lo is None else self._run_bisect(lo, "left")
        stop = (
            len(self._run) if hi is None else self._run_bisect(hi, "left")
        )
        dead = self._dead
        dead_position = 0 if lo is None else bisect_left(dead, lo)
        dead_length = len(dead)
        for key in self._iter_run_keys(start, stop):
            if dead_position < dead_length and dead[dead_position] == key:
                dead_position += 1
                continue
            yield key

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _buffer_limit(self) -> int:
        return max(self._min_buffer, len(self._run) >> 3)

    def _dirty(self) -> None:
        self._freeze_rev += 1
        if self._rank_cache:
            self._rank_cache.clear()

    def _privatize_buffers(self) -> None:
        """Copy-on-write the tail/dead buffers a frozen view shares (see
        :meth:`repro.hiddendb.backends.PackedArrayBackend
        ._privatize_buffers`)."""
        if self._buffers_shared:
            self._tail = list(self._tail)
            self._dead = list(self._dead)
            self._buffers_shared = False

    def _maybe_compact(self) -> None:
        if len(self._tail) + len(self._dead) > self._buffer_limit():
            self._compact()

    def _compact(self) -> None:
        """Merge the buffers into a fresh fsynced run file (O(n))."""
        if not (self._tail or self._dead):
            return
        if not OBS.enabled:
            self._compact_inner()
            return
        _MAPPED_COMPACTIONS.inc()
        started = perf_counter()
        try:
            self._compact_inner()
        finally:
            # merge + write + fsync + remap, end to end
            _MAPPED_COMPACTION_SECONDS.observe(perf_counter() - started)

    def _compact_inner(self) -> None:
        if self._packed:
            # One vectorized multiset-subtract + concatenate-sort instead
            # of a per-key Python heap walk over the whole run.
            self._replace_run(self._live_array())
            return
        self._install_run(
            list(heap_merge(self._iter_live_run(), self._tail))
        )
        self._tail = []
        self._dead = []

    def add(self, key: int) -> None:
        """Insert ``key`` keeping order; duplicates are allowed."""
        self._privatize_buffers()
        insort(self._tail, key)
        self._size += 1
        self._dirty()
        self._maybe_compact()

    def bulk_add(self, keys: Iterable[int]) -> None:
        """Insert a batch in one sort+merge instead of per-key insertion.

        A numeric ``np.ndarray`` batch that rivals the run size rewrites
        the run file in one vectorized merge (narrow layout only); small
        batches land in the in-RAM tail.
        """
        array_batch = _as_int64_batch(keys)
        if array_batch is not None:
            if self._packed and len(array_batch) * 8 >= len(self._run):
                self._bulk_add_array(array_batch)
                return
            keys = array_batch.tolist()
        batch = sorted(keys)
        if not batch:
            return
        if self._tail:
            self._tail = list(heap_merge(self._tail, batch))
        else:
            self._tail = batch
        self._size += len(batch)
        self._dirty()
        self._maybe_compact()

    def _live_array(self) -> np.ndarray:
        """All live keys (run − dead, merged with tail) as sorted int64."""
        run = (
            np.asarray(self._run, dtype=np.int64)
            if len(self._run)
            else np.empty(0, dtype=np.int64)
        )
        if self._dead:
            run = _sorted_multiset_subtract(
                run, np.asarray(self._dead, dtype=np.int64),
                type(self).__name__,
            )
        if self._tail:
            run = np.concatenate(
                [run, np.asarray(self._tail, dtype=np.int64)]
            )
            run.sort()
        return run

    def _replace_run(self, merged: np.ndarray) -> None:
        self._install_run(merged)
        self._tail = []
        self._dead = []
        self._size = len(merged)
        self._dirty()

    def _bulk_add_array(self, batch: np.ndarray) -> None:
        if not len(batch):
            return
        merged = np.concatenate([self._live_array(), batch])
        merged.sort()
        self._replace_run(merged)

    def _remove_one(self, key: int) -> None:
        self._privatize_buffers()
        position = bisect_left(self._tail, key)
        if position < len(self._tail) and self._tail[position] == key:
            del self._tail[position]
        elif (
            self._run_bisect(key, "right") - self._run_bisect(key, "left")
            - self._count(self._dead, key) > 0
        ):
            insort(self._dead, key)
        else:
            raise ValueError(f"key {key} not in MappedBackend")
        self._size -= 1
        self._dirty()

    def remove(self, key: int) -> None:
        """Remove one occurrence of ``key``; raise ``ValueError`` if absent."""
        self._remove_one(key)
        self._maybe_compact()

    def bulk_remove(self, keys: Iterable[int]) -> None:
        """Remove a batch, deferring physical deletion to one compaction.

        A numeric ``np.ndarray`` batch that rivals the run size rewrites
        the run file with one vectorized multiset subtraction (narrow
        layout only).
        """
        array_batch = _as_int64_batch(keys)
        if array_batch is not None:
            if self._packed and len(array_batch) * 8 >= len(self._run):
                self._bulk_remove_array(array_batch)
                return
            keys = array_batch.tolist()
        for key in sorted(keys):
            self._remove_one(key)
        self._maybe_compact()

    def _bulk_remove_array(self, batch: np.ndarray) -> None:
        if not len(batch):
            return
        survivors = _sorted_multiset_subtract(
            self._live_array(), np.sort(batch), type(self).__name__
        )
        self._replace_run(survivors)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @staticmethod
    def _count(seq, key: int) -> int:
        from bisect import bisect_right

        return bisect_right(seq, key) - bisect_left(seq, key)

    def __contains__(self, key: int) -> bool:
        if self._count(self._tail, key):
            return True
        run_count = (
            self._run_bisect(key, "right") - self._run_bisect(key, "left")
        )
        return run_count - self._count(self._dead, key) > 0

    def rank(self, key: int) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        cached = self._rank_cache.get(key)
        if cached is not None:
            if OBS.enabled:
                _MAPPED_HITS.inc()
            return cached
        if OBS.enabled:
            _MAPPED_MISSES.inc()
        value = (
            self._run_bisect(key, "left")
            + bisect_left(self._tail, key)
            - bisect_left(self._dead, key)
        )
        if len(self._rank_cache) < _RANK_CACHE_LIMIT:
            self._rank_cache[key] = value
        return value

    def count_range(self, lo: int, hi: int) -> int:
        """Number of keys in the half-open interval ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.rank(hi) - self.rank(lo)

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        """Yield keys in ``[lo, hi)`` in ascending order."""
        if hi <= lo:
            return iter(())
        tail = self._tail
        tail_slice = tail[bisect_left(tail, lo):bisect_left(tail, hi)]
        dead = self._dead
        if not tail_slice and bisect_left(dead, lo) == bisect_left(dead, hi):
            return self._iter_run_keys(
                self._run_bisect(lo, "left"), self._run_bisect(hi, "left")
            )
        return heap_merge(self._iter_live_run(lo, hi), tail_slice)

    def range_keys(self, lo: int, hi: int) -> "np.ndarray | list[int]":
        """Keys in ``[lo, hi)`` as one vector — array-native ``iter_range``.

        With no buffered keys in range this is a **zero-copy slice of the
        memory-mapped run** (narrow layout; an int64 view the columnar
        query plane consumes directly), or the recombined window rows
        (wide layout, a list of Python ints).  Returned views must not be
        mutated; they stay valid snapshots across compactions because
        runs are replaced, never mutated, and an unlinked mapping
        survives until the view is released.
        """
        if hi <= lo:
            return np.empty(0, dtype=np.int64) if self._packed else []
        tail = self._tail
        tail_slice = tail[bisect_left(tail, lo):bisect_left(tail, hi)]
        dead = self._dead
        if not tail_slice and bisect_left(dead, lo) == bisect_left(dead, hi):
            start = self._run_bisect(lo, "left")
            stop = self._run_bisect(hi, "left")
            if self._packed:
                return self._run[start:stop]
            return self._recombine(self._run[start:stop])
        return list(heap_merge(self._iter_live_run(lo, hi), tail_slice))

    def __iter__(self) -> Iterator[int]:
        yield from heap_merge(self._iter_live_run(), list(self._tail))

    def _snapshot_view(self):
        """A point-in-time clone for frozen reads: the mapped run (and
        its fd) is shared by reference — it survives any later compaction
        because runs are replaced, never mutated, and an unlinked mapping
        lives until released — the tail/dead buffers are shared too (the
        live side privatizes them on its next in-place mutation), and the
        rank cache starts fresh."""
        clone = object.__new__(type(self))
        for name in self.__slots__:
            if name == "__weakref__":
                continue
            setattr(clone, name, getattr(self, name))
        clone._rank_cache = {}
        clone._frozen_view = None
        clone._frozen_rev = -1
        clone._buffers_shared = True
        self._buffers_shared = True
        return clone

    def freeze(self):
        """An immutable snapshot view of the current multiset contents.

        With clean buffers the frozen view references the mapped run
        *directly* — zero copy, no file I/O — and stays valid across
        every future compaction (runs are replaced, never mutated, and an
        unlinked mapping survives until the view is released).  With
        buffered churn pending, the view wraps a clone that shares the
        mapped run and copies only the small tail/dead buffers — a
        publish flip never rewrites the run file.
        """
        from .epoch import FrozenBuffered, FrozenRun

        if self._frozen_view is not None and (
            self._frozen_rev == self._freeze_rev
        ):
            if OBS.enabled:
                _MAPPED_REFREEZE_REUSED.inc()
            return self._frozen_view
        if self._tail or self._dead:
            frozen = FrozenBuffered(self._snapshot_view())
        elif self._packed:
            frozen = FrozenRun(np.asarray(self._run, dtype=np.int64))
        else:
            frozen = _FrozenMappedRun(self._run, self._limbs)
        self._frozen_view = frozen
        self._frozen_rev = self._freeze_rev
        return frozen

    def check_invariants(self) -> None:
        """Validate internal structure (used by property tests)."""
        run = list(self._iter_run_keys())
        assert run == sorted(run), "unsorted run"
        assert self._tail == sorted(self._tail), "unsorted tail"
        assert self._dead == sorted(self._dead), "unsorted dead list"
        for key in set(self._dead):
            assert self._count(self._dead, key) <= self._count(run, key), (
                "dead key without matching run occurrence"
            )
        assert self._size == len(run) + len(self._tail) - len(self._dead), (
            "size counter out of sync"
        )
        if run:
            assert self._run_path is not None, "run without a backing file"
            assert os.path.exists(self._run_path), "missing run file"
            expected = len(run) * self._limbs * RUN_DTYPE.itemsize
            assert os.path.getsize(self._run_path) == expected, (
                "run file size out of sync"
            )
        if not self._packed:
            assert self._run.ndim == 2 and (
                self._run.shape[1] == self._limbs
            ), "limb matrix shape out of sync"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        layout = "int64" if self._packed else f"{self._limbs}-limb"
        return (
            f"MappedBackend(n={self._size}, layout={layout}, "
            f"dir={self.directory!r})"
        )


class _FrozenMappedRun:
    """Immutable read view over a wide-key limb-matrix run.

    Holds a direct reference to the (n, limbs) memory mapping captured at
    freeze time; the mapping stays readable after the backing file is
    unlinked by later compactions, so the view never observes new writes.
    """

    __slots__ = ("_run", "_limbs")

    def __init__(self, run: np.ndarray, limbs: int) -> None:
        self._run = run
        self._limbs = int(limbs)

    def __len__(self) -> int:
        return len(self._run)

    def rank(self, key: int) -> int:
        return _window_of(self._run, self._limbs, key)[0]

    def count_range(self, lo: int, hi: int) -> int:
        if hi <= lo:
            return 0
        return self.rank(hi) - self.rank(lo)

    def range_keys(self, lo: int, hi: int) -> list[int]:
        if hi <= lo:
            return []
        start = self.rank(lo)
        stop = self.rank(hi)
        return _recombine_rows(self._run[start:stop], self._limbs)

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        yield from self.range_keys(lo, hi)

    def __contains__(self, key: int) -> bool:
        lo, hi = _window_of(self._run, self._limbs, key)
        return hi > lo

    def __iter__(self) -> Iterator[int]:
        for start in range(0, len(self._run), _CHUNK):
            yield from _recombine_rows(
                self._run[start:start + _CHUNK], self._limbs
            )

    def add(self, key: int) -> None:
        raise ExperimentError("add: epoch view is read-only")

    def remove(self, key: int) -> None:
        raise ExperimentError("remove: epoch view is read-only")

    def bulk_add(self, keys) -> None:
        raise ExperimentError("bulk_add: epoch view is read-only")

    def bulk_remove(self, keys) -> None:
        raise ExperimentError("bulk_remove: epoch view is read-only")

    def check_invariants(self) -> None:
        assert self._run.ndim == 2 and self._run.shape[1] == self._limbs, (
            "limb matrix shape out of sync"
        )


def _mapped_factory(
    block_size: int = DEFAULT_BLOCK_SIZE,
    key_bound: int | None = None,
    path: str | None = None,
    min_buffer: int | None = None,
) -> MappedBackend:
    # Like the packed factory, block_size tunes the buffer floor so the
    # one knob threaded through TupleStore / HiddenDatabase applies here
    # too; an explicit min_buffer option wins.
    return MappedBackend(
        key_bound=key_bound,
        min_buffer=(
            int(min_buffer) if min_buffer is not None
            else max(64, block_size // 4)
        ),
        path=path,
    )


register_backend("mapped", _mapped_factory)
