"""Search results returned by the top-k interface.

A query either *underflows* (no match), is *valid* (1..k matches, all
returned), or *overflows* (more than k matches; only the top-k by the
proprietary score are returned, and the true count is NOT revealed).

Ranking an overflowing node would require scoring its entire (possibly
database-sized) answer set.  Estimators never read the tuples of an
overflowing result — only the flag — so materialisation is lazy: semantics
are identical to an eager interface, but the simulator only pays for ranking
when some consumer actually looks at the returned page.
"""

from __future__ import annotations

import enum
import heapq
from typing import Callable, Iterable, Sequence

from .tuples import HiddenTuple


class QueryStatus(enum.Enum):
    """Outcome class of a search query (paper §2.1)."""

    UNDERFLOW = "underflow"
    VALID = "valid"
    OVERFLOW = "overflow"


class QueryResult:
    """Result page of one search query.

    Attributes
    ----------
    status:
        Underflow / valid / overflow classification.
    k:
        The interface's page size.
    """

    __slots__ = ("status", "k", "_tuples", "_loader")

    def __init__(
        self,
        status: QueryStatus,
        k: int,
        tuples: Sequence[HiddenTuple] | None = None,
        loader: Callable[[], Sequence[HiddenTuple]] | None = None,
    ):
        self.status = status
        self.k = k
        self._tuples = tuple(tuples) if tuples is not None else None
        self._loader = loader

    @property
    def overflow(self) -> bool:
        return self.status is QueryStatus.OVERFLOW

    @property
    def underflow(self) -> bool:
        return self.status is QueryStatus.UNDERFLOW

    @property
    def valid(self) -> bool:
        return self.status is QueryStatus.VALID

    @property
    def tuples(self) -> tuple[HiddenTuple, ...]:
        """The returned page: all matches if valid, top-k if overflowing."""
        if self._tuples is None:
            loaded = self._loader() if self._loader is not None else ()
            self._tuples = tuple(loaded)
            self._loader = None
        return self._tuples

    def __len__(self) -> int:
        return len(self.tuples)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"QueryResult({self.status.value}, k={self.k})"


def top_k_by_score(
    candidates: Iterable[HiddenTuple], k: int
) -> list[HiddenTuple]:
    """Top-k tuples by (score desc, tid asc) — the interface's page order."""
    return heapq.nsmallest(k, candidates, key=lambda t: (-t.score, t.tid))
