"""Search results returned by the top-k interface.

A query either *underflows* (no match), is *valid* (1..k matches, all
returned), or *overflows* (more than k matches; only the top-k by the
proprietary score are returned, and the true count is NOT revealed).

Ranking an overflowing node would require scoring its entire (possibly
database-sized) answer set.  Estimators never read the tuples of an
overflowing result — only the flag — so materialisation is lazy: semantics
are identical to an eager interface, but the simulator only pays for ranking
when some consumer actually looks at the returned page.

The columnar query plane extends the same idea to *valid* pages: a
:class:`PageColumns` knows the matching count at query time (that decides
the status) but fetches the candidate columns, orders them with
:func:`top_k_select`, and materialises :class:`HiddenTuple` objects only on
first access.  The fetch is epoch-guarded by the interface, so a deferred
page can never silently reflect post-query database state.
"""

from __future__ import annotations

import enum
import heapq
from typing import Callable, Iterable, Sequence

import numpy as np

from .tuples import HiddenTuple, TupleBatch


class QueryStatus(enum.Enum):
    """Outcome class of a search query (paper §2.1)."""

    UNDERFLOW = "underflow"
    VALID = "valid"
    OVERFLOW = "overflow"


def top_k_select(
    scores: np.ndarray, tids: np.ndarray, k: int
) -> np.ndarray:
    """Row indices of the top-k page, in page order — the columnar twin of
    :func:`top_k_by_score`.

    Page order is (score desc, tid asc); tids are unique, so the order is
    total and must match ``top_k_by_score`` exactly (property-tested).  For
    ``n > k`` an ``np.argpartition`` pass narrows the candidates to the
    boundary score before the (much smaller) exact lexsort.
    """
    scores = np.asarray(scores, dtype=np.float64)
    tids = np.asarray(tids, dtype=np.int64)
    n = len(scores)
    if k <= 0 or n == 0:
        return np.empty(0, dtype=np.intp)
    if n <= k:
        return np.lexsort((tids, -scores))
    # Positions n-k..n-1 of the ascending partition hold the k largest
    # scores; the value at n-k is the page's boundary score.  Every row
    # tied with the boundary stays a candidate so the tid tie-break is
    # decided by the exact sort, not by partition order.
    boundary = scores[np.argpartition(scores, n - k)[n - k]]
    candidates = np.flatnonzero(scores >= boundary)
    order = candidates[np.lexsort((tids[candidates], -scores[candidates]))]
    return order[:k]


class PageColumns:
    """Deferred columnar page of one valid query result.

    ``matching`` (the number of matching tuples) is known at query time;
    ``fetch`` returns the candidates as a
    :class:`~repro.hiddendb.store.GatheredRows` (column vectors plus exact
    per-row materialization) and is called at most once, on first access.
    The interface's fetch closures raise
    :class:`~repro.errors.StaleResultError` when the store has mutated
    since the query, so deferral is observationally identical to an eager
    page in every supported workload.
    """

    __slots__ = ("matching", "k", "_fetch", "_rows", "_order")

    def __init__(self, matching: int, k: int, fetch: Callable):
        self.matching = matching
        self.k = k
        self._fetch = fetch
        self._rows = None
        self._order: np.ndarray | None = None

    @property
    def page_size(self) -> int:
        """Number of tuples the materialised page will contain."""
        return min(self.matching, self.k)

    def resolve(self):
        """Fetch (once) and return the candidate rows (``GatheredRows``)."""
        if self._rows is None:
            self._rows = self._fetch()
            self._fetch = None  # the closure pins store objects; drop it
        return self._rows

    def order(self) -> np.ndarray:
        """Candidate row indices of the page, in page order."""
        if self._order is None:
            batch = self.resolve().batch
            self._order = top_k_select(batch.scores, batch.tids, self.k)
        return self._order

    def page_batch(self) -> TupleBatch:
        """The page as a columnar batch, rows in page order."""
        batch = self.resolve().batch
        order = self.order()
        return TupleBatch(
            batch.values[order],
            batch.measures[order],
            batch.tids[order],
            batch.scores[order],
        )

    def materialize(self) -> list[HiddenTuple]:
        """Build the page's tuples (page order)."""
        rows = self.resolve()
        return [rows.materialize_row(int(row)) for row in self.order()]


class QueryResult:
    """Result page of one search query.

    Attributes
    ----------
    status:
        Underflow / valid / overflow classification.
    k:
        The interface's page size.
    page:
        Deferred columnar page (columnar query plane, valid results only),
        or ``None``.  Consumers that only need the page's column totals
        (see :meth:`repro.core.aggregates.AggregateSpec.contribution`) read
        it without materialising tuples.
    """

    __slots__ = ("status", "k", "page", "_tuples", "_loader")

    def __init__(
        self,
        status: QueryStatus,
        k: int,
        tuples: Sequence[HiddenTuple] | None = None,
        loader: Callable[[], Sequence[HiddenTuple]] | None = None,
        page: PageColumns | None = None,
    ):
        self.status = status
        self.k = k
        self.page = page
        self._tuples = tuple(tuples) if tuples is not None else None
        self._loader = loader

    @property
    def overflow(self) -> bool:
        return self.status is QueryStatus.OVERFLOW

    @property
    def underflow(self) -> bool:
        return self.status is QueryStatus.UNDERFLOW

    @property
    def valid(self) -> bool:
        return self.status is QueryStatus.VALID

    @property
    def tuples(self) -> tuple[HiddenTuple, ...]:
        """The returned page: all matches if valid, top-k if overflowing."""
        if self._tuples is None:
            if self._loader is not None:
                self._tuples = tuple(self._loader())
                self._loader = None
            elif self.page is not None:
                self._tuples = tuple(self.page.materialize())
            else:
                self._tuples = ()
        return self._tuples

    def freeze(self) -> None:
        """Pin a deferred page against later store mutations.

        Called by :class:`~repro.hiddendb.session.QuerySession` before its
        ``on_query`` hook fires (the hook is how the intra-round driver
        mutates the database between queries).  Overflow loaders are left
        lazy, exactly like the scalar plane — prefix loaders re-read the
        index at access time and scan loaders rank a query-time snapshot,
        identically on both planes — so a post-mutation read (e.g. a
        leaf-overflow outcome consumed mid-round) stays plane-identical.
        """
        if self._tuples is None and self.page is not None:
            self.page.resolve()

    def __len__(self) -> int:
        if self._tuples is None and self.page is not None:
            return self.page.page_size
        return len(self.tuples)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"QueryResult({self.status.value}, k={self.k})"


def top_k_by_score(
    candidates: Iterable[HiddenTuple], k: int
) -> list[HiddenTuple]:
    """Top-k tuples by (score desc, tid asc) — the interface's page order."""
    return heapq.nsmallest(k, candidates, key=lambda t: (-t.score, t.tid))
