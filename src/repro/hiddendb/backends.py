"""Pluggable key-storage backends for the prefix indexes.

Every estimator round bottoms out in rank and range queries over the sorted
key multiset of a :class:`~repro.hiddendb.store.PrefixIndex`, so the engine
behind that multiset bounds the throughput of every figure benchmark.  This
module separates the *query interface* (:class:`StorageBackend`) from the
*storage engine* so engines can be swapped per database, per experiment, or
globally (the ``--backend`` CLI flag and the ``REPRO_BENCH_BACKEND``
benchmark knob).

Two engines ship:

* ``"blocked"`` — :class:`~repro.hiddendb.store.SortedKeyList`, the seed's
  blocked sorted list: O(sqrt n) point updates, O(log n + #blocks) rank.
  Registered by :mod:`repro.hiddendb.store` to avoid a circular import.
* ``"packed"`` — :class:`PackedArrayBackend` below: one large sorted run
  (a packed ``array('q')`` when the key universe fits 64 bits, a plain list
  otherwise) plus small sorted insert/delete buffers that are lazily merged
  back into the run.  Rank is O(log n) regardless of size, bulk loads sort
  once instead of paying per-key insertion, and repeated rank probes — the
  prefix-conjunction workload issues the same node boundaries over and over
  — hit an amortized rank cache that is invalidated on mutation.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right, insort
from contextlib import contextmanager
from heapq import merge as heap_merge
from typing import Callable, Iterable, Iterator, Protocol, runtime_checkable

import numpy as np

from ..errors import SchemaError

#: Target number of keys per block for blocked engines; blocks split at
#: twice this size.
DEFAULT_BLOCK_SIZE = 1024

#: Largest key a packed ``array('q')`` run can hold.
_INT64_MAX = 2**63 - 1

#: Entries kept in the rank cache before it stops growing (safety valve;
#: the cache is cleared on every mutation anyway).
_RANK_CACHE_LIMIT = 65536


def _as_int64_batch(keys) -> np.ndarray | None:
    """The keys as an int64 vector if they arrived as an integer ndarray.

    Non-integer arrays (floats, bools, objects) fall through to the
    generic iterable path so their per-key semantics stay identical.
    """
    if isinstance(keys, np.ndarray) and np.issubdtype(
        keys.dtype, np.integer
    ):
        return np.asarray(keys, dtype=np.int64)
    return None


def _sorted_multiset_subtract(
    existing: np.ndarray, batch: np.ndarray, owner: str
) -> np.ndarray:
    """Remove the sorted ``batch`` multiset from sorted ``existing``.

    Occurrence ``j`` of a key in ``batch`` cancels the ``j``-th occurrence
    of that key in ``existing`` — pure searchsorted arithmetic, no Python
    loop.  Raises ``ValueError`` (and leaves both inputs untouched) when a
    batch key has no remaining occurrence.
    """
    n = len(existing)
    positions = np.searchsorted(existing, batch, side="left")
    occurrence = np.arange(len(batch)) - np.searchsorted(
        batch, batch, side="left"
    )
    remove_positions = positions + occurrence
    out_of_range = remove_positions >= n
    if out_of_range.any():
        bad = out_of_range
        bad[~out_of_range] = (
            existing[remove_positions[~out_of_range]] != batch[~out_of_range]
        )
    else:
        bad = existing[remove_positions] != batch
    if bad.any():
        missing = int(batch[int(np.argmax(bad))])
        raise ValueError(f"key {missing} not in {owner}")
    keep = np.ones(n, dtype=bool)
    keep[remove_positions] = False
    return existing[keep]


@runtime_checkable
class StorageBackend(Protocol):
    """A sorted multiset of integers — the contract prefix indexes query.

    Implementations must support duplicate keys and raise ``ValueError``
    from :meth:`remove` / :meth:`bulk_remove` when a key is absent.

    :meth:`range_keys` (the array-native ``iter_range``, feeding the
    columnar query plane) is part of the contract and implemented by both
    shipped engines; :meth:`PrefixIndex.range_tids
    <repro.hiddendb.store.PrefixIndex.range_tids>` degrades gracefully to
    ``iter_range`` for third-party engines that predate it, at per-key
    cost.
    """

    def add(self, key: int) -> None: ...

    def remove(self, key: int) -> None: ...

    def bulk_add(self, keys: Iterable[int]) -> None: ...

    def bulk_remove(self, keys: Iterable[int]) -> None: ...

    def rank(self, key: int) -> int: ...

    def count_range(self, lo: int, hi: int) -> int: ...

    def iter_range(self, lo: int, hi: int) -> Iterator[int]: ...

    def range_keys(self, lo: int, hi: int) -> "np.ndarray | list[int]": ...

    def __len__(self) -> int: ...

    def __contains__(self, key: int) -> bool: ...

    def __iter__(self) -> Iterator[int]: ...

    def check_invariants(self) -> None: ...


class PackedArrayBackend:
    """Sorted-run storage engine with buffered mutations and rank caching.

    Layout:

    * ``_run`` — the main sorted run.  Packed into an ``array('q')`` when
      ``key_bound`` (the exclusive upper bound of the key universe, known
      to the prefix index from its radices) fits in a signed 64-bit word;
      mixed-radix keys of wide schemas exceed that, in which case the run
      falls back to a flat Python list — still O(log n) rank via bisect.
    * ``_tail`` — small sorted list of keys added since the last compaction.
    * ``_dead`` — small sorted multiset of keys deleted from the run but not
      yet physically removed (every dead key has a matching live occurrence
      in the run; tail deletions are applied immediately).

    ``rank(key)`` is then ``bisect(run) + bisect(tail) - bisect(dead)``.
    When the buffers outgrow ``max(min_buffer, len(run) / 8)`` they are
    merged back into a fresh run — O(n), amortized O(1) per mutation.
    """

    __slots__ = ("_run", "_tail", "_dead", "_size", "_packed", "_min_buffer",
                 "_rank_cache")

    def __init__(
        self,
        keys: Iterable[int] = (),
        key_bound: int | None = None,
        min_buffer: int = 256,
    ):
        self._packed = key_bound is not None and 0 <= key_bound <= _INT64_MAX
        self._min_buffer = min_buffer
        self._run = self._new_run(sorted(keys))
        self._tail: list[int] = []
        self._dead: list[int] = []
        self._size = len(self._run)
        self._rank_cache: dict[int, int] = {}

    @property
    def is_packed(self) -> bool:
        """True when the main run is a 64-bit packed array."""
        return self._packed

    def _new_run(self, sorted_keys):
        if self._packed:
            return array("q", sorted_keys)
        return list(sorted_keys)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _buffer_limit(self) -> int:
        return max(self._min_buffer, len(self._run) >> 3)

    def _dirty(self) -> None:
        if self._rank_cache:
            self._rank_cache.clear()

    def _maybe_compact(self) -> None:
        if len(self._tail) + len(self._dead) > self._buffer_limit():
            self._compact()

    def _compact(self) -> None:
        """Merge the tail into the run and drop dead keys (O(n))."""
        if self._tail or self._dead:
            self._run = self._new_run(
                list(heap_merge(self._iter_live_run(), self._tail))
            )
            self._tail = []
            self._dead = []

    def add(self, key: int) -> None:
        """Insert ``key`` keeping order; duplicates are allowed."""
        insort(self._tail, key)
        self._size += 1
        self._dirty()
        self._maybe_compact()

    def bulk_add(self, keys: Iterable[int]) -> None:
        """Insert a batch in one sort+merge instead of per-key insertion.

        A numeric ``np.ndarray`` batch takes a fully vectorized path on
        packed runs: one ``np.sort`` merge into a fresh run, no
        per-element Python calls.
        """
        array_batch = _as_int64_batch(keys)
        if array_batch is not None:
            if self._packed and len(array_batch) * 8 >= len(self._run):
                self._bulk_add_array(array_batch)
                return
            keys = array_batch.tolist()
        batch = sorted(keys)
        if not batch:
            return
        if self._tail:
            self._tail = list(heap_merge(self._tail, batch))
        else:
            self._tail = batch
        self._size += len(batch)
        self._dirty()
        self._maybe_compact()

    def _live_array(self) -> np.ndarray:
        """All live keys (run − dead, merged with tail) as sorted int64."""
        if len(self._run):
            run = np.frombuffer(self._run, dtype=np.int64)
        else:
            run = np.empty(0, dtype=np.int64)
        if self._dead:
            run = _sorted_multiset_subtract(
                run, np.asarray(self._dead, dtype=np.int64),
                type(self).__name__,
            )
        if self._tail:
            run = np.concatenate(
                [run, np.asarray(self._tail, dtype=np.int64)]
            )
            run.sort()
        return run

    def _replace_run(self, merged: np.ndarray) -> None:
        new_run = array("q")
        new_run.frombytes(merged.astype(np.int64, copy=False).tobytes())
        self._run = new_run
        self._tail = []
        self._dead = []
        self._size = len(merged)
        self._dirty()

    def _bulk_add_array(self, batch: np.ndarray) -> None:
        if not len(batch):
            return
        merged = np.concatenate([self._live_array(), batch])
        merged.sort()
        self._replace_run(merged)

    def _remove_one(self, key: int) -> None:
        position = bisect_left(self._tail, key)
        if position < len(self._tail) and self._tail[position] == key:
            del self._tail[position]
        elif self._count(self._run, key) - self._count(self._dead, key) > 0:
            insort(self._dead, key)
        else:
            raise ValueError(f"key {key} not in PackedArrayBackend")
        self._size -= 1
        self._dirty()

    def remove(self, key: int) -> None:
        """Remove one occurrence of ``key``; raise ``ValueError`` if absent."""
        self._remove_one(key)
        self._maybe_compact()

    def bulk_remove(self, keys: Iterable[int]) -> None:
        """Remove a batch, deferring physical deletion to one compaction.

        A numeric ``np.ndarray`` batch on a packed run is subtracted with
        one vectorized multiset pass and a run rebuild.
        """
        array_batch = _as_int64_batch(keys)
        if array_batch is not None:
            if self._packed and len(array_batch) * 8 >= len(self._run):
                self._bulk_remove_array(array_batch)
                return
            keys = array_batch.tolist()
        for key in sorted(keys):
            self._remove_one(key)
        self._maybe_compact()

    def _bulk_remove_array(self, batch: np.ndarray) -> None:
        if not len(batch):
            return
        survivors = _sorted_multiset_subtract(
            self._live_array(), np.sort(batch), type(self).__name__
        )
        self._replace_run(survivors)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @staticmethod
    def _count(seq, key: int) -> int:
        return bisect_right(seq, key) - bisect_left(seq, key)

    def __contains__(self, key: int) -> bool:
        if self._count(self._tail, key):
            return True
        return self._count(self._run, key) - self._count(self._dead, key) > 0

    def rank(self, key: int) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        cached = self._rank_cache.get(key)
        if cached is not None:
            return cached
        value = (
            bisect_left(self._run, key)
            + bisect_left(self._tail, key)
            - bisect_left(self._dead, key)
        )
        if len(self._rank_cache) < _RANK_CACHE_LIMIT:
            self._rank_cache[key] = value
        return value

    def count_range(self, lo: int, hi: int) -> int:
        """Number of keys in the half-open interval ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.rank(hi) - self.rank(lo)

    def _iter_live_run(self, lo: int | None = None, hi: int | None = None):
        """Run keys in ``[lo, hi)`` minus their dead occurrences.

        Dead keys pair with run occurrences count-for-count, and both
        sequences are sorted, so a single forward walk cancels them.
        """
        run, dead = self._run, self._dead
        start = 0 if lo is None else bisect_left(run, lo)
        dead_position = 0 if lo is None else bisect_left(dead, lo)
        dead_length = len(dead)
        for position in range(start, len(run)):
            key = run[position]
            if hi is not None and key >= hi:
                return
            if dead_position < dead_length and dead[dead_position] == key:
                dead_position += 1
                continue
            yield key

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        """Yield keys in ``[lo, hi)`` in ascending order."""
        if hi <= lo:
            return iter(())
        tail = self._tail
        tail_slice = tail[bisect_left(tail, lo):bisect_left(tail, hi)]
        dead = self._dead
        if not tail_slice and bisect_left(dead, lo) == bisect_left(dead, hi):
            # No buffered keys in range: the answer is one contiguous run
            # slice — a C-level copy instead of a per-key generator merge.
            run = self._run
            return iter(run[bisect_left(run, lo):bisect_left(run, hi)])
        return heap_merge(self._iter_live_run(lo, hi), tail_slice)

    def range_keys(self, lo: int, hi: int) -> "np.ndarray | list[int]":
        """Keys in ``[lo, hi)`` as one vector — array-native ``iter_range``.

        On a packed run with no buffered keys in range this is a zero-copy
        int64 view of the run slice; otherwise it degrades to a list with
        the same contents.  Callers must not mutate a returned view
        (compactions replace the run rather than mutating it, so views
        taken here stay valid snapshots).
        """
        if hi <= lo:
            return np.empty(0, dtype=np.int64) if self._packed else []
        tail = self._tail
        tail_slice = tail[bisect_left(tail, lo):bisect_left(tail, hi)]
        dead = self._dead
        if not tail_slice and bisect_left(dead, lo) == bisect_left(dead, hi):
            run = self._run
            start, stop = bisect_left(run, lo), bisect_left(run, hi)
            if self._packed:
                if not len(run):
                    return np.empty(0, dtype=np.int64)
                return np.frombuffer(run, dtype=np.int64)[start:stop]
            return run[start:stop]
        return list(heap_merge(self._iter_live_run(lo, hi), tail_slice))

    def __iter__(self) -> Iterator[int]:
        yield from heap_merge(self._iter_live_run(), list(self._tail))

    def check_invariants(self) -> None:
        """Validate internal structure (used by property tests)."""
        run = list(self._run)
        assert run == sorted(run), "unsorted run"
        assert self._tail == sorted(self._tail), "unsorted tail"
        assert self._dead == sorted(self._dead), "unsorted dead list"
        for key in set(self._dead):
            assert self._count(self._dead, key) <= self._count(run, key), (
                "dead key without matching run occurrence"
            )
        assert self._size == len(run) + len(self._tail) - len(self._dead), (
            "size counter out of sync"
        )


# ----------------------------------------------------------------------
# Registry and default-backend management
# ----------------------------------------------------------------------

#: Factory: keyword arguments ``block_size`` and ``key_bound`` (either may
#: be ignored) to a fresh, empty backend.
BackendFactory = Callable[..., StorageBackend]

_REGISTRY: dict[str, BackendFactory] = {}

_default_backend = "blocked"


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a storage engine under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Names of all registered storage engines."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: str | None) -> str:
    """Validate a backend name; ``None`` means the process-wide default."""
    if name is None:
        return _default_backend
    if name not in _REGISTRY:
        raise SchemaError(
            f"unknown storage backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return name


def get_default_backend() -> str:
    """The backend used when a database is built without an explicit one."""
    return _default_backend


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _default_backend
    if name not in _REGISTRY:
        raise SchemaError(
            f"unknown storage backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    previous = _default_backend
    _default_backend = name
    return previous


@contextmanager
def using_backend(name: str | None):
    """Scope the default backend (``None`` leaves it untouched)."""
    if name is None:
        yield get_default_backend()
        return
    previous = set_default_backend(name)
    try:
        yield name
    finally:
        set_default_backend(previous)


def make_backend(
    name: str | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    key_bound: int | None = None,
) -> StorageBackend:
    """Build an empty backend by name (``None`` = process default).

    ``key_bound`` is the exclusive upper bound of the key universe when the
    caller knows it (prefix indexes do); packing engines use it to choose a
    64-bit representation.
    """
    factory = _REGISTRY[resolve_backend(name)]
    return factory(block_size=block_size, key_bound=key_bound)


def _packed_factory(
    block_size: int = DEFAULT_BLOCK_SIZE, key_bound: int | None = None
) -> PackedArrayBackend:
    # block_size is the one tuning knob threaded through TupleStore /
    # HiddenDatabase; map it onto the packed engine's buffer floor so the
    # parameter tunes every backend rather than being silently ignored.
    return PackedArrayBackend(
        key_bound=key_bound, min_buffer=max(64, block_size // 4)
    )


register_backend("packed", _packed_factory)
