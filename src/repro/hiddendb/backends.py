"""Pluggable key-storage backends for the prefix indexes.

Every estimator round bottoms out in rank and range queries over the sorted
key multiset of a :class:`~repro.hiddendb.store.PrefixIndex`, so the engine
behind that multiset bounds the throughput of every figure benchmark.  This
module separates the *query interface* (:class:`StorageBackend`) from the
*storage engine* so engines can be swapped per database, per experiment, or
globally (the ``--backend`` CLI flag and the ``REPRO_BENCH_BACKEND``
benchmark knob).

Four engines ship:

* ``"blocked"`` — :class:`~repro.hiddendb.store.SortedKeyList`, the seed's
  blocked sorted list: O(sqrt n) point updates, O(log n + #blocks) rank.
  Registered by :mod:`repro.hiddendb.store` to avoid a circular import.
* ``"packed"`` — :class:`PackedArrayBackend` below: one large sorted run
  (a packed ``array('q')`` when the key universe fits 64 bits, a plain list
  otherwise) plus small sorted insert/delete buffers that are lazily merged
  back into the run.  Rank is O(log n) regardless of size, bulk loads sort
  once instead of paying per-key insertion, and repeated rank probes — the
  prefix-conjunction workload issues the same node boundaries over and over
  — hit an amortized rank cache that is invalidated on mutation.
* ``"sharded"`` — :class:`ShardedBackend` below: hash-partitions the key
  multiset across N inner engines (each ``packed`` by default).  Bulk
  mutations split the batch per shard and can dispatch the per-shard work
  to a thread pool (numpy sorts release the GIL, so shard merges genuinely
  overlap); range reads k-way-merge the per-shard sorted slices.  Shard
  count, the inner engine, and the worker count arrive through the
  *backend options* channel (``make_backend(..., shards=8)``), which
  :class:`~repro.api.EngineConfig` and the CLI (``--shards``) populate.
* ``"mapped"`` — :class:`~repro.hiddendb.backends_mapped.MappedBackend`:
  the packed engine's run/tail/dead scheme with the main sorted run laid
  into memory-mapped little-endian int64 files (fixed-width 63-bit limb
  matrices for key universes beyond int64) under a store directory — the
  persistent tier; see :mod:`repro.hiddendb.backends_mapped` and
  ``docs/format.md``.  Registered by its own module to keep this one
  import-light.

**Reader-concurrency contract** (all shipped engines): any number of
threads may issue read-only calls (``rank`` / ``count_range`` /
``iter_range`` / ``range_keys`` / ``__contains__`` / ``__len__`` /
iteration) concurrently — internal read-side caches (rank caches, the
wide-run probe array) are only ever *added to* by readers, which is safe
under the GIL, and compactions replace runs instead of mutating them, so
a view handed out by ``range_keys`` stays a valid snapshot.  Mutations
(``add`` / ``remove`` / ``bulk_*``) must be externally serialized against
both readers and other writers; the engine facade's round barrier
(:meth:`repro.api.Engine.run_round` vs ``apply_updates``) provides that
serialization.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right, insort
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from heapq import merge as heap_merge
from typing import (
    Callable,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

import numpy as np

from ..errors import SchemaError
from ..obs import OBS

#: Target number of keys per block for blocked engines; blocks split at
#: twice this size.
DEFAULT_BLOCK_SIZE = 1024

# Observability handles, created once at import: rank() and the bulk merge
# paths are the hottest code in the tree, so the enabled check is the only
# per-call cost and the registry lock is never touched here.
_PACKED_HITS = OBS.counter(
    "repro_rank_cache_hits_total", {"backend": "packed"}
)
_PACKED_MISSES = OBS.counter(
    "repro_rank_cache_misses_total", {"backend": "packed"}
)
_PACKED_COMPACTIONS = OBS.counter(
    "repro_backend_compactions_total", {"backend": "packed"}
)
_SHARDED_HITS = OBS.counter(
    "repro_rank_cache_hits_total", {"backend": "sharded"}
)
_SHARDED_MISSES = OBS.counter(
    "repro_rank_cache_misses_total", {"backend": "sharded"}
)
_MERGE_ADD_ROWS = OBS.histogram("repro_bulk_merge_rows", {"op": "add"})
_MERGE_REMOVE_ROWS = OBS.histogram("repro_bulk_merge_rows", {"op": "remove"})
_PACKED_REFREEZE_REUSED = OBS.counter(
    "repro_epoch_refreeze_reused_total", {"backend": "packed"}
)
_SHARDED_REFREEZE_REUSED = OBS.counter(
    "repro_epoch_refreeze_reused_total", {"backend": "sharded"}
)

#: Largest key a packed ``array('q')`` run can hold.
_INT64_MAX = 2**63 - 1

#: Entries kept in the rank cache before it stops growing (safety valve;
#: the cache is cleared on every mutation anyway).
_RANK_CACHE_LIMIT = 65536

#: Default shard count of the ``sharded`` storage engine.
DEFAULT_SHARDS = 8

#: One 63-bit limb of a wide (>= 2**63) key.
_LIMB_BITS = 63
_LIMB_MASK = (1 << _LIMB_BITS) - 1

#: Keys are processed this many at a time by the chunked big-int helpers,
#: bounding the transient object arrays they allocate.
_CHUNK = 8192

#: Largest modulus the 16-bit-digit modular multiply stays exact in
#: uint64 for; moduli in ``[2**48, 2**63)`` switch to the double-and-add
#: multiply (:func:`_mulmod_big_vec`).
_MOD_MANY_BOUND = 1 << 48

#: Keys in range before a sharded ``range_keys`` fans the per-shard scans
#: out to a thread pool; below this the pool start-up dominates.
_PARALLEL_SCAN_MIN = 4096


def _mulmod_scalar_vec(
    values: np.ndarray, factor: int, modulus: int
) -> np.ndarray:
    """``(values * factor) % modulus`` exactly, for uint64 ``values`` and a
    scalar ``factor``, both already reduced mod ``modulus < 2**48``.

    ``factor`` is split into 16-bit digits so every intermediate product
    stays below 2**64 (``values < 2**48``, digit ``< 2**16``) — Horner over
    the digits then reduces after each step.
    """
    if modulus < 1 << 31:
        # Direct product fits: values < 2**31, factor < 2**31.
        return (values * np.uint64(factor)) % np.uint64(modulus)
    m = np.uint64(modulus)
    out = np.zeros_like(values)
    started = False
    for shift in (32, 16, 0):
        digit = (factor >> shift) & 0xFFFF
        if started:
            out = ((out << np.uint64(16)) % m + (values * np.uint64(digit)) % m) % m
        elif digit:
            out = (values * np.uint64(digit)) % m
            started = True
    return out


def _mulmod_big_vec(
    values: np.ndarray, factor: int, modulus: int
) -> np.ndarray:
    """``(values * factor) % modulus`` exactly, for uint64 ``values`` and
    a scalar ``factor``, both already reduced mod ``modulus < 2**63``.

    The digit split of :func:`_mulmod_scalar_vec` stops being exact once
    ``modulus`` reaches 2**48, so this band multiplies by binary
    double-and-add instead: every intermediate stays below ``modulus``,
    which keeps both the doubling (``2 * acc < 2**64``) and the
    conditional add (``acc + values < 2**64``) exact in uint64.  Costs
    ~2 vector ops per factor bit — fine for the rare non-power-of-two
    ``tid_span`` configurations that reach it.
    """
    m = np.uint64(modulus)
    one = np.uint64(1)
    acc = np.zeros_like(values)
    started = False
    for bit in bin(factor)[2:]:
        if started:
            acc = (acc << one) % m
        if bit == "1":
            acc = (acc + values) % m
            started = True
    return acc


def _object_chunks(keys: Sequence[int]) -> Iterator[np.ndarray]:
    """The keys as object-dtype chunks (C-dispatched big-int arithmetic)."""
    for start in range(0, len(keys), _CHUNK):
        yield np.array(keys[start : start + _CHUNK], dtype=object)


def _limbs_of(chunk: np.ndarray) -> list[np.ndarray]:
    """63-bit limbs of a non-negative big-int chunk, least significant
    first, each as an int64 vector.  No per-key Python-bytecode loop: the
    mask/shift/convert steps are all C-dispatched object-array ufuncs."""
    limbs: list[np.ndarray] = []
    remaining = chunk
    while True:
        limbs.append((remaining & _LIMB_MASK).astype(np.int64))
        remaining = remaining >> _LIMB_BITS
        if not remaining.any():
            return limbs


def mod_many(keys, modulus: int) -> np.ndarray:
    """``key % modulus`` for every key, as an int64 vector.

    The vectorized twin of ``[key % modulus for key in keys]`` for key
    schemas wider than 64 bits: keys are processed in chunks, decomposed
    into int64 limbs with object-array arithmetic (one C-dispatched ufunc
    per limb instead of a Python-bytecode loop per key), and recombined
    with an exact modular Horner evaluation.  Power-of-two moduli — the
    default ``tid_span`` is ``2**48`` — reduce to a single masked low
    limb.  Non-power-of-two moduli pick the modular multiply that stays
    exact for their size: 16-bit digit splitting below ``2**48``
    (:func:`_mulmod_scalar_vec`), binary double-and-add for
    ``[2**48, 2**63)`` (:func:`_mulmod_big_vec`).  Above ``2**63`` the
    remainders themselves stop fitting the int64 result vector, so the
    modulus is rejected outright.

    Parity with the scalar loop is property-tested
    (``tests/test_wide_key_vectorization.py``).
    """
    if modulus < 1:
        raise ValueError("modulus must be positive")
    if modulus > 1 << 63:
        raise ValueError(
            "mod_many returns int64 remainders; modulus must be <= 2**63"
        )
    if isinstance(keys, np.ndarray) and keys.dtype != object:
        if modulus > _INT64_MAX:
            # modulus == 2**63 (guarded above): a power of two one past
            # int64, so the two's-complement mask is the exact remainder.
            return np.asarray(keys, dtype=np.int64) & (modulus - 1)
        return np.asarray(keys, dtype=np.int64) % modulus
    n = len(keys)
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    power_of_two = modulus & (modulus - 1) == 0
    mulmod = (
        _mulmod_scalar_vec if modulus < _MOD_MANY_BOUND else _mulmod_big_vec
    )
    position = 0
    base_mod = pow(2, _LIMB_BITS, modulus) if not power_of_two else 0
    for chunk in _object_chunks(keys):
        stop = position + len(chunk)
        if power_of_two:
            # key % 2**j == low limb % 2**j for j <= 63: truncation keeps
            # every bit the mask can see (and, like ``%``, a two's
            # complement ``&`` maps negatives into [0, 2**j)).
            out[position:stop] = (chunk & (modulus - 1)).astype(np.int64)
        else:
            if (chunk < 0).any():
                # The limb decomposition would loop forever on a negative
                # key (arithmetic shift converges to -1, never 0); keys
                # are non-negative by construction everywhere in the repo.
                raise ValueError("mod_many requires non-negative keys")
            limbs = _limbs_of(chunk)
            acc = np.zeros(len(chunk), dtype=np.uint64)
            m = np.uint64(modulus)
            for limb in reversed(limbs):
                acc = mulmod(acc, base_mod, modulus)
                acc = (acc + limb.astype(np.uint64) % m) % m
            out[position:stop] = acc.astype(np.int64)
        position = stop
    return out


def shift_many(keys: Sequence[int], shift: int) -> np.ndarray:
    """``key >> shift`` for every key, as an int64 vector (chunked
    object-array shifts — the construction path of the wide-run probe
    array).  Every shifted value must fit int64; callers guarantee that by
    deriving ``shift`` from the key universe's bit length."""
    n = len(keys)
    out = np.empty(n, dtype=np.int64)
    position = 0
    for chunk in _object_chunks(keys):
        stop = position + len(chunk)
        out[position:stop] = (chunk >> shift).astype(np.int64)
        position = stop
    return out


def _as_int64_batch(keys) -> np.ndarray | None:
    """The keys as an int64 vector if they arrived as an integer ndarray.

    Non-integer arrays (floats, bools, objects) fall through to the
    generic iterable path so their per-key semantics stay identical.
    """
    if isinstance(keys, np.ndarray) and np.issubdtype(
        keys.dtype, np.integer
    ):
        return np.asarray(keys, dtype=np.int64)
    return None


def _sorted_multiset_subtract(
    existing: np.ndarray, batch: np.ndarray, owner: str
) -> np.ndarray:
    """Remove the sorted ``batch`` multiset from sorted ``existing``.

    Occurrence ``j`` of a key in ``batch`` cancels the ``j``-th occurrence
    of that key in ``existing`` — pure searchsorted arithmetic, no Python
    loop.  Raises ``ValueError`` (and leaves both inputs untouched) when a
    batch key has no remaining occurrence.
    """
    n = len(existing)
    positions = np.searchsorted(existing, batch, side="left")
    occurrence = np.arange(len(batch)) - np.searchsorted(
        batch, batch, side="left"
    )
    remove_positions = positions + occurrence
    out_of_range = remove_positions >= n
    if out_of_range.any():
        bad = out_of_range
        bad[~out_of_range] = (
            existing[remove_positions[~out_of_range]] != batch[~out_of_range]
        )
    else:
        bad = existing[remove_positions] != batch
    if bad.any():
        missing = int(batch[int(np.argmax(bad))])
        raise ValueError(f"key {missing} not in {owner}")
    keep = np.ones(n, dtype=bool)
    keep[remove_positions] = False
    return existing[keep]


@runtime_checkable
class StorageBackend(Protocol):
    """A sorted multiset of integers — the contract prefix indexes query.

    Implementations must support duplicate keys and raise ``ValueError``
    from :meth:`remove` / :meth:`bulk_remove` when a key is absent.

    :meth:`range_keys` (the array-native ``iter_range``, feeding the
    columnar query plane) is part of the contract and implemented by both
    shipped engines; :meth:`PrefixIndex.range_tids
    <repro.hiddendb.store.PrefixIndex.range_tids>` degrades gracefully to
    ``iter_range`` for third-party engines that predate it, at per-key
    cost.
    """

    def add(self, key: int) -> None: ...

    def remove(self, key: int) -> None: ...

    def bulk_add(self, keys: Iterable[int]) -> None: ...

    def bulk_remove(self, keys: Iterable[int]) -> None: ...

    def rank(self, key: int) -> int: ...

    def count_range(self, lo: int, hi: int) -> int: ...

    def iter_range(self, lo: int, hi: int) -> Iterator[int]: ...

    def range_keys(self, lo: int, hi: int) -> "np.ndarray | list[int]": ...

    def __len__(self) -> int: ...

    def __contains__(self, key: int) -> bool: ...

    def __iter__(self) -> Iterator[int]: ...

    def check_invariants(self) -> None: ...


class PackedArrayBackend:
    """Sorted-run storage engine with buffered mutations and rank caching.

    Layout:

    * ``_run`` — the main sorted run.  Packed into an ``array('q')`` when
      ``key_bound`` (the exclusive upper bound of the key universe, known
      to the prefix index from its radices) fits in a signed 64-bit word;
      mixed-radix keys of wide schemas exceed that, in which case the run
      falls back to a flat Python list — still O(log n) rank via bisect.
    * ``_tail`` — small sorted list of keys added since the last compaction.
    * ``_dead`` — small sorted multiset of keys deleted from the run but not
      yet physically removed (every dead key has a matching live occurrence
      in the run; tail deletions are applied immediately).

    ``rank(key)`` is then ``bisect(run) + bisect(tail) - bisect(dead)``.
    When the buffers outgrow ``max(min_buffer, len(run) / 8)`` they are
    merged back into a fresh run — O(n), amortized O(1) per mutation.

    Wide-key runs (key universe beyond int64, so the run is a plain list
    of Python big ints) additionally keep a *probe array*: the int64
    vector of every run key's top 63 bits, rebuilt at each compaction.  A
    rank probe then narrows to the (typically tiny) equal-top-bits window
    with two C-speed ``np.searchsorted`` calls before the exact big-int
    bisect — replacing ~log2(n) arbitrary-precision comparisons per probe
    with two int64 binary searches, the ``count_prefix`` hot spot of
    wide-schema workloads like fig12's m=50.
    """

    __slots__ = ("_run", "_tail", "_dead", "_size", "_packed", "_min_buffer",
                 "_rank_cache", "_key_bound", "_hi_shift", "_run_hi",
                 "_freeze_rev", "_frozen_rev", "_frozen_view",
                 "_buffers_shared")

    def __init__(
        self,
        keys: Iterable[int] = (),
        key_bound: int | None = None,
        min_buffer: int = 256,
    ):
        self._packed = key_bound is not None and 0 <= key_bound <= _INT64_MAX
        self._min_buffer = min_buffer
        self._key_bound = key_bound
        self._freeze_rev = 0
        self._frozen_rev = -1
        self._frozen_view = None
        self._buffers_shared = False
        # Wide-key probe plan: shift every key so the result fits int64.
        if key_bound is not None and not self._packed:
            self._hi_shift = max(0, int(key_bound).bit_length() - 63)
        else:
            self._hi_shift = 0
        self._run_hi: np.ndarray | None = None
        self._install_run(sorted(keys))
        self._tail: list[int] = []
        self._dead: list[int] = []
        self._size = len(self._run)
        self._rank_cache: dict[int, int] = {}

    @property
    def is_packed(self) -> bool:
        """True when the main run is a 64-bit packed array."""
        return self._packed

    def _new_run(self, sorted_keys):
        if self._packed:
            return array("q", sorted_keys)
        return list(sorted_keys)

    def _install_run(self, sorted_keys) -> None:
        """Replace the main run (and rebuild the wide-key probe array)."""
        self._run = self._new_run(sorted_keys)
        if self._hi_shift and len(self._run) >= 64:
            self._run_hi = shift_many(self._run, self._hi_shift)
        else:
            self._run_hi = None

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _buffer_limit(self) -> int:
        return max(self._min_buffer, len(self._run) >> 3)

    def _dirty(self) -> None:
        self._freeze_rev += 1
        if self._rank_cache:
            self._rank_cache.clear()

    def _privatize_buffers(self) -> None:
        """Copy-on-write the tail/dead buffers a frozen view shares.

        :meth:`_snapshot_view` hands the *live* buffer lists to the frozen
        clone by reference (an O(1) publish flip); the first in-place
        buffer mutation afterwards must therefore copy them so the
        immutable epoch never observes post-flip churn.  Rebinding
        assignments (``self._tail = ...``) are always safe and skip this.
        """
        if self._buffers_shared:
            self._tail = list(self._tail)
            self._dead = list(self._dead)
            self._buffers_shared = False

    def _maybe_compact(self) -> None:
        if len(self._tail) + len(self._dead) > self._buffer_limit():
            self._compact()

    def _compact(self) -> None:
        """Merge the tail into the run and drop dead keys (O(n))."""
        if not (self._tail or self._dead):
            return
        if OBS.enabled:
            _PACKED_COMPACTIONS.inc()
        if self._packed:
            # One vectorized multiset-subtract + concatenate-sort instead
            # of a per-key Python heap walk over the whole run.
            self._replace_run(self._live_array())
            return
        self._install_run(
            list(heap_merge(self._iter_live_run(), self._tail))
        )
        self._tail = []
        self._dead = []

    def add(self, key: int) -> None:
        """Insert ``key`` keeping order; duplicates are allowed."""
        self._privatize_buffers()
        insort(self._tail, key)
        self._size += 1
        self._dirty()
        self._maybe_compact()

    def bulk_add(self, keys: Iterable[int]) -> None:
        """Insert a batch in one sort+merge instead of per-key insertion.

        A numeric ``np.ndarray`` batch takes a fully vectorized path on
        packed runs: one ``np.sort`` merge into a fresh run, no
        per-element Python calls.
        """
        array_batch = _as_int64_batch(keys)
        if array_batch is not None:
            if OBS.enabled and len(array_batch):
                _MERGE_ADD_ROWS.observe(len(array_batch))
            if self._packed and len(array_batch) * 8 >= len(self._run):
                self._bulk_add_array(array_batch)
                return
            keys = array_batch.tolist()
        batch = sorted(keys)
        if not batch:
            return
        if OBS.enabled and array_batch is None:
            _MERGE_ADD_ROWS.observe(len(batch))
        if self._tail:
            self._tail = list(heap_merge(self._tail, batch))
        else:
            self._tail = batch
        self._size += len(batch)
        self._dirty()
        self._maybe_compact()

    def _live_array(self) -> np.ndarray:
        """All live keys (run − dead, merged with tail) as sorted int64."""
        if len(self._run):
            run = np.frombuffer(self._run, dtype=np.int64)
        else:
            run = np.empty(0, dtype=np.int64)
        if self._dead:
            run = _sorted_multiset_subtract(
                run, np.asarray(self._dead, dtype=np.int64),
                type(self).__name__,
            )
        if self._tail:
            run = np.concatenate(
                [run, np.asarray(self._tail, dtype=np.int64)]
            )
            run.sort()
        return run

    def _replace_run(self, merged: np.ndarray) -> None:
        new_run = array("q")
        new_run.frombytes(merged.astype(np.int64, copy=False).tobytes())
        self._run = new_run
        self._tail = []
        self._dead = []
        self._size = len(merged)
        self._dirty()

    def _bulk_add_array(self, batch: np.ndarray) -> None:
        if not len(batch):
            return
        merged = np.concatenate([self._live_array(), batch])
        merged.sort()
        self._replace_run(merged)

    def _remove_one(self, key: int) -> None:
        self._privatize_buffers()
        position = bisect_left(self._tail, key)
        if position < len(self._tail) and self._tail[position] == key:
            del self._tail[position]
        elif self._count(self._run, key) - self._count(self._dead, key) > 0:
            insort(self._dead, key)
        else:
            raise ValueError(f"key {key} not in PackedArrayBackend")
        self._size -= 1
        self._dirty()

    def remove(self, key: int) -> None:
        """Remove one occurrence of ``key``; raise ``ValueError`` if absent."""
        self._remove_one(key)
        self._maybe_compact()

    def bulk_remove(self, keys: Iterable[int]) -> None:
        """Remove a batch, deferring physical deletion to one compaction.

        A numeric ``np.ndarray`` batch on a packed run is subtracted with
        one vectorized multiset pass and a run rebuild.
        """
        array_batch = _as_int64_batch(keys)
        if array_batch is not None:
            if OBS.enabled and len(array_batch):
                _MERGE_REMOVE_ROWS.observe(len(array_batch))
            if self._packed and len(array_batch) * 8 >= len(self._run):
                self._bulk_remove_array(array_batch)
                return
            keys = array_batch.tolist()
        batch = sorted(keys)
        if OBS.enabled and array_batch is None and batch:
            _MERGE_REMOVE_ROWS.observe(len(batch))
        for key in batch:
            self._remove_one(key)
        self._maybe_compact()

    def _bulk_remove_array(self, batch: np.ndarray) -> None:
        if not len(batch):
            return
        survivors = _sorted_multiset_subtract(
            self._live_array(), np.sort(batch), type(self).__name__
        )
        self._replace_run(survivors)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @staticmethod
    def _count(seq, key: int) -> int:
        return bisect_right(seq, key) - bisect_left(seq, key)

    def __contains__(self, key: int) -> bool:
        if self._count(self._tail, key):
            return True
        return self._count(self._run, key) - self._count(self._dead, key) > 0

    def _run_bisect(self, key: int) -> int:
        """``bisect_left`` over the main run, probe-accelerated when wide.

        Keys sharing the same top 63 bits form a contiguous window of the
        run; two int64 ``searchsorted`` probes locate it and the exact
        big-int bisect only runs inside.  Truncation is monotone, so the
        window bounds are exact.
        """
        run_hi = self._run_hi
        if run_hi is not None and 0 <= key < self._key_bound:
            probe = key >> self._hi_shift
            lo = int(np.searchsorted(run_hi, probe, side="left"))
            hi = int(np.searchsorted(run_hi, probe, side="right"))
            return bisect_left(self._run, key, lo, hi)
        return bisect_left(self._run, key)

    def rank(self, key: int) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        cached = self._rank_cache.get(key)
        if cached is not None:
            if OBS.enabled:
                _PACKED_HITS.inc()
            return cached
        if OBS.enabled:
            _PACKED_MISSES.inc()
        value = (
            self._run_bisect(key)
            + bisect_left(self._tail, key)
            - bisect_left(self._dead, key)
        )
        if len(self._rank_cache) < _RANK_CACHE_LIMIT:
            self._rank_cache[key] = value
        return value

    def count_range(self, lo: int, hi: int) -> int:
        """Number of keys in the half-open interval ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.rank(hi) - self.rank(lo)

    def _iter_live_run(self, lo: int | None = None, hi: int | None = None):
        """Run keys in ``[lo, hi)`` minus their dead occurrences.

        Dead keys pair with run occurrences count-for-count, and both
        sequences are sorted, so a single forward walk cancels them.
        """
        run, dead = self._run, self._dead
        start = 0 if lo is None else bisect_left(run, lo)
        dead_position = 0 if lo is None else bisect_left(dead, lo)
        dead_length = len(dead)
        for position in range(start, len(run)):
            key = run[position]
            if hi is not None and key >= hi:
                return
            if dead_position < dead_length and dead[dead_position] == key:
                dead_position += 1
                continue
            yield key

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        """Yield keys in ``[lo, hi)`` in ascending order."""
        if hi <= lo:
            return iter(())
        tail = self._tail
        tail_slice = tail[bisect_left(tail, lo):bisect_left(tail, hi)]
        dead = self._dead
        if not tail_slice and bisect_left(dead, lo) == bisect_left(dead, hi):
            # No buffered keys in range: the answer is one contiguous run
            # slice — a C-level copy instead of a per-key generator merge.
            run = self._run
            return iter(run[bisect_left(run, lo):bisect_left(run, hi)])
        return heap_merge(self._iter_live_run(lo, hi), tail_slice)

    def range_keys(self, lo: int, hi: int) -> "np.ndarray | list[int]":
        """Keys in ``[lo, hi)`` as one vector — array-native ``iter_range``.

        On a packed run with no buffered keys in range this is a zero-copy
        int64 view of the run slice; otherwise it degrades to a list with
        the same contents.  Callers must not mutate a returned view
        (compactions replace the run rather than mutating it, so views
        taken here stay valid snapshots).
        """
        if hi <= lo:
            return np.empty(0, dtype=np.int64) if self._packed else []
        tail = self._tail
        tail_slice = tail[bisect_left(tail, lo):bisect_left(tail, hi)]
        dead = self._dead
        if not tail_slice and bisect_left(dead, lo) == bisect_left(dead, hi):
            run = self._run
            start, stop = bisect_left(run, lo), bisect_left(run, hi)
            if self._packed:
                if not len(run):
                    return np.empty(0, dtype=np.int64)
                return np.frombuffer(run, dtype=np.int64)[start:stop]
            return run[start:stop]
        return list(heap_merge(self._iter_live_run(lo, hi), tail_slice))

    def __iter__(self) -> Iterator[int]:
        yield from heap_merge(self._iter_live_run(), list(self._tail))

    def _snapshot_view(self):
        """A point-in-time clone for frozen reads: the (immutable) run
        *and* the tail/dead buffers are shared by reference — the live
        side privatizes the buffers on its next in-place mutation
        (:meth:`_privatize_buffers`), so the flip itself is O(1) — and
        the rank cache starts fresh.  Reads on the clone run the exact
        live query code over state that can never change."""
        clone = object.__new__(type(self))
        for name in self.__slots__:
            if name == "__weakref__":
                continue
            setattr(clone, name, getattr(self, name))
        clone._rank_cache = {}
        # The clone must not retain the previous epoch's frozen view (an
        # unbounded chain of epochs otherwise) and never mutates, so its
        # shared-buffer flag is moot but kept True for clarity.
        clone._frozen_view = None
        clone._frozen_rev = -1
        clone._buffers_shared = True
        self._buffers_shared = True
        return clone

    def freeze(self):
        """An immutable snapshot view of the current multiset contents.

        With clean buffers the frozen view references the sorted run *by
        reference*: mutations never touch an installed run in place
        (``_install_run`` / ``_replace_run`` build fresh ones), so the
        view stays a valid snapshot forever at zero copy cost — the
        property the epoch publish flip relies on.  With buffered churn
        pending, the view wraps a clone that shares the run *and* the
        tail/dead buffers by reference (the live side copies them on its
        next in-place mutation), so a publish flip is O(1) here.

        Re-freezing with no content change since the previous freeze
        returns the previous frozen view unchanged — back-to-back flips
        under light churn only rebuild the views whose backend actually
        mutated (counted by ``repro_epoch_refreeze_reused_total``).
        """
        from .epoch import FrozenBuffered, FrozenRun

        if self._frozen_view is not None and (
            self._frozen_rev == self._freeze_rev
        ):
            if OBS.enabled:
                _PACKED_REFREEZE_REUSED.inc()
            return self._frozen_view
        if self._tail or self._dead:
            frozen = FrozenBuffered(self._snapshot_view())
        else:
            frozen = FrozenRun(
                self._run,
                run_hi=self._run_hi,
                hi_shift=self._hi_shift,
                key_bound=self._key_bound,
            )
        self._frozen_view = frozen
        self._frozen_rev = self._freeze_rev
        return frozen

    def check_invariants(self) -> None:
        """Validate internal structure (used by property tests)."""
        run = list(self._run)
        assert run == sorted(run), "unsorted run"
        assert self._tail == sorted(self._tail), "unsorted tail"
        assert self._dead == sorted(self._dead), "unsorted dead list"
        for key in set(self._dead):
            assert self._count(self._dead, key) <= self._count(run, key), (
                "dead key without matching run occurrence"
            )
        assert self._size == len(run) + len(self._tail) - len(self._dead), (
            "size counter out of sync"
        )
        if self._run_hi is not None:
            assert len(self._run_hi) == len(run), "stale probe array"
            assert self._run_hi.tolist() == [
                key >> self._hi_shift for key in run
            ], "probe array out of sync with run"


class ShardedBackend:
    """Hash-partitioned composite engine over N inner sorted multisets.

    Every key lives in shard ``key % num_shards`` — modulo of the mixed
    radix key is effectively a hash of the tuple id digit, so shards stay
    balanced no matter how skewed the attribute-value distribution is.
    Point and bulk mutations dispatch to the owning shard; ``rank`` sums
    per-shard ranks (amortized by a sharded-level rank cache, same policy
    as the packed engine's); ``iter_range`` / ``range_keys`` k-way-merge
    the per-shard sorted slices (one ``np.sort`` over the concatenated
    int64 slices when every shard hands back an array).

    ``workers > 1`` dispatches per-shard *bulk* mutations — and, since
    the HTAP epoch split, wide ``range_keys`` scans — to an ephemeral
    thread pool.  The inner engines are fully independent — a key maps to
    exactly one shard — and the per-shard work is dominated by numpy
    sorts and searchsorted passes, which release the GIL, so shard merges
    and scans genuinely overlap on multi-core hosts.  Reads follow the
    module-level reader-concurrency contract; scan pools live only for
    one call and never share mutable state across shards.
    """

    __slots__ = ("_shards", "num_shards", "inner_name", "_size",
                 "_rank_cache", "_workers", "_freeze_rev", "_frozen_rev",
                 "_frozen_view")

    def __init__(
        self,
        num_shards: int = DEFAULT_SHARDS,
        inner: str = "packed",
        key_bound: int | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        workers: int = 0,
    ):
        if num_shards < 1:
            raise SchemaError("sharded backend needs at least 1 shard")
        self.num_shards = num_shards
        self.inner_name = resolve_backend(inner)
        self._shards: list[StorageBackend] = [
            make_backend(inner, block_size=block_size, key_bound=key_bound)
            for _ in range(num_shards)
        ]
        self._size = 0
        self._rank_cache: dict[int, int] = {}
        self._workers = max(int(workers or 0), 0)
        self._freeze_rev = 0
        self._frozen_rev = -1
        self._frozen_view = None

    def __len__(self) -> int:
        return self._size

    def _shard_of(self, key: int) -> StorageBackend:
        return self._shards[key % self.num_shards]

    def _dirty(self) -> None:
        self._freeze_rev += 1
        if self._rank_cache:
            self._rank_cache.clear()

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add(self, key: int) -> None:
        """Insert ``key`` keeping order; duplicates are allowed."""
        self._shard_of(key).add(key)
        self._size += 1
        self._dirty()

    def remove(self, key: int) -> None:
        """Remove one occurrence of ``key``; raise ``ValueError`` if absent."""
        self._shard_of(key).remove(key)
        self._size -= 1
        self._dirty()

    def _partition(self, keys) -> list:
        """Split a batch into per-shard sub-batches (index = shard).

        int64 arrays partition with one stable argsort of the shard ids
        (contiguous zero-copy slices of the permuted batch); other
        iterables — including wide Python-int keys — group via the chunked
        :func:`mod_many` reduction, never a per-key ``%`` in bytecode.
        """
        count = self.num_shards
        if count == 1:
            return [keys if isinstance(keys, np.ndarray) else list(keys)]
        array_batch = _as_int64_batch(keys)
        if array_batch is not None:
            shard_ids = array_batch % count
            order = np.argsort(shard_ids, kind="stable")
            ordered = array_batch[order]
            bounds = np.searchsorted(shard_ids[order], np.arange(count + 1))
            return [
                ordered[bounds[s]:bounds[s + 1]] for s in range(count)
            ]
        keys = list(keys)
        shard_ids = mod_many(keys, count)
        parts: list[list[int]] = [[] for _ in range(count)]
        for key, shard in zip(keys, shard_ids.tolist()):
            parts[shard].append(key)
        return parts

    def _dispatch(self, method: str, parts: list) -> None:
        """Run ``shard.<method>(part)`` for every non-empty sub-batch,
        on an ephemeral worker pool when workers are configured.

        The pool lives only for this dispatch: thread start-up is
        microseconds against the per-shard sorts it overlaps, and a
        per-backend pool would pin ``workers`` idle threads per prefix
        index for the store's whole lifetime.  Dispatches are mutations,
        already serialized externally, so no pool is ever shared.
        """
        jobs = [
            (shard, part)
            for shard, part in zip(self._shards, parts)
            if len(part)
        ]
        if self._workers > 1 and len(jobs) > 1:
            with ThreadPoolExecutor(
                max_workers=min(self._workers, len(jobs)),
                thread_name_prefix="repro-shard",
            ) as pool:
                futures = [
                    pool.submit(getattr(shard, method), part)
                    for shard, part in jobs
                ]
                for future in futures:
                    future.result()
        else:
            for shard, part in jobs:
                getattr(shard, method)(part)

    def _observe_shard_keys(self) -> None:
        """Refresh the per-shard key-count gauges (enabled path only)."""
        for index, shard in enumerate(self._shards):
            OBS.gauge(
                "repro_shard_keys", {"shard": str(index)}
            ).set(len(shard))

    def bulk_add(self, keys: Iterable[int]) -> None:
        """Insert a batch: partition once, one inner merge per shard."""
        parts = self._partition(keys)
        added = sum(len(part) for part in parts)
        if not added:
            return
        self._dispatch("bulk_add", parts)
        self._size += added
        self._dirty()
        if OBS.enabled:
            self._observe_shard_keys()

    def _verify_removable(self, shard: StorageBackend, part) -> None:
        """Raise ``ValueError`` unless every occurrence in ``part`` has a
        matching occurrence in ``shard`` (two rank probes per distinct
        key)."""
        if isinstance(part, np.ndarray):
            distinct, needed = np.unique(part, return_counts=True)
            pairs = zip(distinct.tolist(), needed.tolist())
        else:
            counts: dict[int, int] = {}
            for key in part:
                counts[key] = counts.get(key, 0) + 1
            pairs = counts.items()
        for key, needed in pairs:
            if shard.count_range(key, key + 1) < needed:
                raise ValueError(f"key {key} not in {type(self).__name__}")

    def bulk_remove(self, keys: Iterable[int]) -> None:
        """Remove a batch, one inner pass per shard.

        Every occurrence is verified against its shard *before* any shard
        mutates (missing keys are the only contract failure mode), so a
        failed bulk raises ``ValueError`` with the composite multiset
        untouched — stronger than the shipped inner engines' own small
        batch paths, which may partially apply before raising.
        """
        parts = self._partition(keys)
        if not any(len(part) for part in parts):
            return
        for shard, part in zip(self._shards, parts):
            if len(part):
                self._verify_removable(shard, part)
        self._dispatch("bulk_remove", parts)
        self._size -= sum(len(part) for part in parts)
        self._dirty()
        if OBS.enabled:
            self._observe_shard_keys()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, key: int) -> bool:
        return key in self._shard_of(key)

    def rank(self, key: int) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        cached = self._rank_cache.get(key)
        if cached is not None:
            if OBS.enabled:
                _SHARDED_HITS.inc()
            return cached
        if OBS.enabled:
            _SHARDED_MISSES.inc()
        value = sum(shard.rank(key) for shard in self._shards)
        if len(self._rank_cache) < _RANK_CACHE_LIMIT:
            self._rank_cache[key] = value
        return value

    def count_range(self, lo: int, hi: int) -> int:
        """Number of keys in the half-open interval ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.rank(hi) - self.rank(lo)

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        """Yield keys in ``[lo, hi)`` ascending (k-way shard merge)."""
        if hi <= lo:
            return iter(())
        return heap_merge(
            *(shard.iter_range(lo, hi) for shard in self._shards)
        )

    def _scan_shards(self, lo: int, hi: int) -> list:
        """Per-shard ``range_keys`` slices, fanned out to a pool when the
        range is wide enough to amortize thread start-up.

        Read-only: each worker touches exactly one shard, and the
        two-rank ``count_range`` gate only feeds the add-only rank cache
        (safe under the GIL per the module's reader-concurrency
        contract), so concurrent readers may scan in parallel too.
        """
        if (
            self._workers > 1
            and self.num_shards > 1
            and self.count_range(lo, hi) >= _PARALLEL_SCAN_MIN
        ):
            with ThreadPoolExecutor(
                max_workers=min(self._workers, self.num_shards),
                thread_name_prefix="repro-scan",
            ) as pool:
                return list(
                    pool.map(
                        lambda shard: shard.range_keys(lo, hi),
                        self._shards,
                    )
                )
        return [shard.range_keys(lo, hi) for shard in self._shards]

    def range_keys(self, lo: int, hi: int) -> "np.ndarray | list[int]":
        """Keys in ``[lo, hi)`` as one sorted vector.

        Merges the per-shard sorted run slices: int64 slices concatenate
        and sort in C; mixed or wide-key slices fall back to a heap merge
        with identical contents.  With ``workers > 1`` configured and at
        least :data:`_PARALLEL_SCAN_MIN` keys in range, the per-shard
        slice extraction fans out to an ephemeral thread pool — slicing
        is read-only on independent shards and dominated by searchsorted
        and copy work that releases the GIL, so wide analytical scans
        genuinely overlap (the merge itself stays single-threaded).
        """
        if hi <= lo:
            slices = []
        else:
            slices = self._scan_shards(lo, hi)
            slices = [part for part in slices if len(part)]
        if not slices:
            first = self._shards[0].range_keys(0, 0)
            return (
                np.empty(0, dtype=np.int64)
                if isinstance(first, np.ndarray)
                else []
            )
        if len(slices) == 1:
            return slices[0]
        if all(isinstance(part, np.ndarray) for part in slices):
            merged = np.concatenate(slices)
            merged.sort()
            return merged
        return list(heap_merge(*slices))

    def __iter__(self) -> Iterator[int]:
        return heap_merge(*(iter(shard) for shard in self._shards))

    def freeze(self):
        """An immutable snapshot view preserving the shard partition.

        Each inner engine freezes independently (zero-copy for packed
        inners), and the frozen composite keeps the shard structure so
        epoch-pinned analytical scans can still fan out per shard.
        """
        from .epoch import FrozenSharded, freeze_backend

        if self._frozen_view is not None and (
            self._frozen_rev == self._freeze_rev
        ):
            if OBS.enabled:
                _SHARDED_REFREEZE_REUSED.inc()
            return self._frozen_view
        # Unchanged shards reuse their own previous frozen view through
        # the inner engines' freeze memoization, so a light-churn flip
        # rebuilds only the composite shell plus the dirty shards.
        frozen = FrozenSharded(
            [freeze_backend(shard) for shard in self._shards],
            num_shards=self.num_shards,
            workers=self._workers,
        )
        self._frozen_view = frozen
        self._frozen_rev = self._freeze_rev
        return frozen

    def check_invariants(self) -> None:
        """Validate shard placement, sizes, and every inner engine."""
        total = 0
        for shard_index, shard in enumerate(self._shards):
            shard.check_invariants()
            total += len(shard)
            for key in shard:
                assert key % self.num_shards == shard_index, (
                    "key in the wrong shard"
                )
        assert total == self._size, "size counter out of sync"


# ----------------------------------------------------------------------
# Registry and default-backend management
# ----------------------------------------------------------------------

#: Factory: keyword arguments ``block_size`` and ``key_bound`` (either may
#: be ignored) plus any backend-specific options to a fresh, empty backend.
BackendFactory = Callable[..., StorageBackend]

_REGISTRY: dict[str, BackendFactory] = {}

_default_backend = "blocked"

#: Process-wide default backend *options*, keyed by backend name and
#: merged under any explicit options at :func:`make_backend` time
#: (explicit wins).  The options channel is how engine-specific knobs —
#: ``shards`` / ``workers`` / ``inner`` for the sharded engine — travel
#: without widening every constructor signature in between; keying by
#: name keeps one engine's defaults from leaking into another's factory.
_default_backend_options: dict[str, dict] = {}


#: Relative cost signatures of the shipped storage engines, consumed by
#: the :mod:`repro.tuning` cost model.  Unitless ratios on a common scale
#: (``blocked`` probe = 1.0), NOT wall-clock predictions: ``probe`` is the
#: per-rank-probe cost factor, ``bulk_per_row`` the per-row bulk
#: add/remove maintenance factor, ``round_fixed`` a per-round fixed
#: overhead in probe-equivalents (dispatch, fsync), ``delete_penalty``
#: how much a pure-delete churn mix inflates maintenance (dense layouts
#: compact on delete, sorted lists just drop), ``parallel_maintenance``
#: whether bulk maintenance divides across workers, and ``persistent``
#: whether runs survive the process.  Extensions register their engine's
#: signature here (plain dict assignment) so the tuner can score it.
BACKEND_COST_SIGNATURES: dict[str, dict] = {
    "blocked": {
        "probe": 1.0, "bulk_per_row": 1.0, "round_fixed": 0.0,
        "delete_penalty": 0.3,
        "parallel_maintenance": False, "persistent": False,
    },
    "packed": {
        # Dense sorted arrays: cheapest probes and appends, but deletes
        # force compaction of the packed runs.
        "probe": 0.9, "bulk_per_row": 0.9, "round_fixed": 0.0,
        "delete_penalty": 3.5,
        "parallel_maintenance": False, "persistent": False,
    },
    "sharded": {
        # Per-row work costs more (composite rank merge), but bulk
        # maintenance splits across shard workers and each shard adds
        # per-round dispatch overhead.
        "probe": 1.15, "bulk_per_row": 1.4, "round_fixed": 400.0,
        "delete_penalty": 1.0,
        "parallel_maintenance": True, "persistent": False,
    },
    "mapped": {
        "probe": 1.35, "bulk_per_row": 1.5, "round_fixed": 800.0,
        "delete_penalty": 2.0,
        "parallel_maintenance": False, "persistent": True,
    },
}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a storage engine under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Names of all registered storage engines."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: str | None) -> str:
    """Validate a backend name; ``None`` means the process-wide default."""
    if name is None:
        return _default_backend
    if name not in _REGISTRY:
        raise SchemaError(
            f"unknown storage backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return name


def get_default_backend() -> str:
    """The backend used when a database is built without an explicit one."""
    return _default_backend


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _default_backend
    if name not in _REGISTRY:
        raise SchemaError(
            f"unknown storage backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    previous = _default_backend
    _default_backend = name
    return previous


@contextmanager
def using_backend(name: str | None):
    """Scope the default backend (``None`` leaves it untouched)."""
    if name is None:
        yield get_default_backend()
        return
    previous = set_default_backend(name)
    try:
        yield name
    finally:
        set_default_backend(previous)


def get_default_backend_options(name: str) -> dict:
    """A copy of the process-wide default options for backend ``name``."""
    return dict(_default_backend_options.get(name, {}))


def set_default_backend_options(
    name: str, options: Mapping | None
) -> dict | None:
    """Replace the default options of backend ``name``; returns the
    previous mapping (``None`` when none was set) so the save/restore
    idiom round-trips exactly."""
    previous = _default_backend_options.get(name)
    if options:
        _default_backend_options[name] = dict(options)
    else:
        _default_backend_options.pop(name, None)
    return previous


@contextmanager
def using_backend_options(name: str, options: Mapping | None):
    """Scope the default options of one backend (``None`` = untouched).

    The CLI's ``--shards`` flag uses this so every database a figure
    driver builds inside the scope picks the sharded engine's shard count
    up without each driver having to thread the knob explicitly.
    """
    if options is None:
        yield get_default_backend_options(name)
        return
    previous = set_default_backend_options(name, options)
    try:
        yield dict(options)
    finally:
        set_default_backend_options(name, previous)


def make_backend(
    name: str | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    key_bound: int | None = None,
    **options,
) -> StorageBackend:
    """Build an empty backend by name (``None`` = process default).

    ``key_bound`` is the exclusive upper bound of the key universe when the
    caller knows it (prefix indexes do); packing engines use it to choose a
    64-bit representation.  Extra keyword ``options`` are backend-specific
    (the sharded engine takes ``shards`` / ``inner`` / ``workers``); they
    are merged over the process-wide defaults
    (:func:`set_default_backend_options`) and an option the factory does
    not accept raises :class:`~repro.errors.SchemaError`.
    """
    resolved = resolve_backend(name)
    factory = _REGISTRY[resolved]
    merged = {**_default_backend_options.get(resolved, {}), **options}
    try:
        return factory(block_size=block_size, key_bound=key_bound, **merged)
    except TypeError as exc:
        # Chained (`from exc`): the usual cause is an option the factory's
        # signature lacks, but a TypeError from deeper inside construction
        # must keep its traceback.
        raise SchemaError(
            f"backend {resolved!r} rejected options "
            f"{sorted(merged)}: {exc}"
        ) from exc


def _packed_factory(
    block_size: int = DEFAULT_BLOCK_SIZE, key_bound: int | None = None
) -> PackedArrayBackend:
    # block_size is the one tuning knob threaded through TupleStore /
    # HiddenDatabase; map it onto the packed engine's buffer floor so the
    # parameter tunes every backend rather than being silently ignored.
    return PackedArrayBackend(
        key_bound=key_bound, min_buffer=max(64, block_size // 4)
    )


register_backend("packed", _packed_factory)


def _sharded_factory(
    block_size: int = DEFAULT_BLOCK_SIZE,
    key_bound: int | None = None,
    shards: int = DEFAULT_SHARDS,
    inner: str = "packed",
    workers: int = 0,
) -> ShardedBackend:
    return ShardedBackend(
        num_shards=int(shards),
        inner=inner,
        key_bound=key_bound,
        block_size=block_size,
        workers=workers,
    )


register_backend("sharded", _sharded_factory)
