"""Hidden web database simulator: the substrate the paper's estimators query.

Public surface: schemas and tuples, the dynamic database, its restrictive
top-k search interface, and budgeted query sessions.
"""

from .backends import (
    PackedArrayBackend,
    ShardedBackend,
    StorageBackend,
    available_backends,
    get_default_backend,
    get_default_backend_options,
    make_backend,
    mod_many,
    register_backend,
    set_default_backend,
    set_default_backend_options,
    shift_many,
    using_backend,
    using_backend_options,
)
from .backends_mapped import MappedBackend
from .database import HiddenDatabase
from .interface import TopKInterface
from .query import ConjunctiveQuery
from .ranking import MeasureScore, RandomScore, RecencyScore
from .result import QueryResult, QueryStatus
from .schema import Attribute, Schema, boolean_schema
from .session import QuerySession
from .store import (
    KeyCodec,
    PrefixIndex,
    SortedKeyList,
    TupleStore,
    get_data_plane,
    overriding_data_plane,
    set_data_plane,
    using_data_plane,
)
from .tuples import HiddenTuple, TupleBatch, make_tuple

__all__ = [
    "Attribute",
    "ConjunctiveQuery",
    "HiddenDatabase",
    "HiddenTuple",
    "KeyCodec",
    "MappedBackend",
    "MeasureScore",
    "PackedArrayBackend",
    "PrefixIndex",
    "QueryResult",
    "QuerySession",
    "QueryStatus",
    "RandomScore",
    "RecencyScore",
    "Schema",
    "ShardedBackend",
    "SortedKeyList",
    "StorageBackend",
    "TopKInterface",
    "TupleBatch",
    "TupleStore",
    "available_backends",
    "boolean_schema",
    "get_data_plane",
    "get_default_backend",
    "get_default_backend_options",
    "make_backend",
    "make_tuple",
    "mod_many",
    "overriding_data_plane",
    "register_backend",
    "set_data_plane",
    "set_default_backend",
    "set_default_backend_options",
    "shift_many",
    "using_backend",
    "using_backend_options",
    "using_data_plane",
]
