"""Hidden web database simulator: the substrate the paper's estimators query.

Public surface: schemas and tuples, the dynamic database, its restrictive
top-k search interface, and budgeted query sessions.
"""

from .database import HiddenDatabase
from .interface import TopKInterface
from .query import ConjunctiveQuery
from .ranking import MeasureScore, RandomScore, RecencyScore
from .result import QueryResult, QueryStatus
from .schema import Attribute, Schema, boolean_schema
from .session import QuerySession
from .store import PrefixIndex, SortedKeyList, TupleStore
from .tuples import HiddenTuple, make_tuple

__all__ = [
    "Attribute",
    "ConjunctiveQuery",
    "HiddenDatabase",
    "HiddenTuple",
    "MeasureScore",
    "PrefixIndex",
    "QueryResult",
    "QuerySession",
    "QueryStatus",
    "RandomScore",
    "RecencyScore",
    "Schema",
    "SortedKeyList",
    "TopKInterface",
    "TupleStore",
    "boolean_schema",
    "make_tuple",
]
