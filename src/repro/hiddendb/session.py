"""Per-round query sessions with hard budget enforcement.

Real hidden databases limit queries per IP / API key per day (the paper's
``G``).  A :class:`QuerySession` wraps an interface with a budget counter
that raises :class:`~repro.errors.QueryBudgetExhausted` once spent — charged
queries stay charged, exactly like a metered web API.

The optional within-round answer cache models a client that remembers
answers it already received this round (issuing the same URL twice costs a
second request on a real site, which is the paper's accounting — hence the
cache defaults to off; turning it on is the "client cache" ablation).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable

from ..errors import QueryBudgetExhausted
from .interface import TopKInterface
from .query import ConjunctiveQuery
from .result import QueryResult


class QuerySession:
    """A budgeted client connection to a hidden database interface."""

    def __init__(
        self,
        interface: TopKInterface,
        budget: int | None = None,
        cache_within_round: bool = False,
        on_query: Callable[[], None] | None = None,
    ):
        self.interface = interface
        self.budget = budget
        self.cache_within_round = cache_within_round
        self.queries_used = 0
        self._cache: dict[ConjunctiveQuery, QueryResult] = {}
        # Hook invoked after every charged query; used by the intra-round
        # update driver to interleave database mutations with query traffic.
        self._on_query = on_query

    @property
    def k(self) -> int:
        return self.interface.k

    @property
    def backend(self) -> str:
        """Storage backend serving this session (simulator-side metadata)."""
        return self.interface.backend

    @property
    def stats(self):
        """The interface's query counters (simulator-side metadata)."""
        return self.interface.stats

    @property
    def remaining(self) -> int | None:
        """Queries left in the budget (None = unlimited)."""
        if self.budget is None:
            return None
        return self.budget - self.queries_used

    def can_afford(self, queries: int = 1) -> bool:
        """True if at least ``queries`` more requests fit in the budget."""
        return self.budget is None or self.queries_used + queries <= self.budget

    @contextmanager
    def reading(self, epoch=None):
        """Pin every query issued inside the scope to a published epoch.

        Session-level sugar over :func:`~repro.hiddendb.database.reading_epoch`
        (which the HTAP round executor enters directly): everything inside
        the scope resolves against one immutable
        :class:`~repro.hiddendb.epoch.StoreEpoch` while round-boundary
        churn lands on the live store concurrently.
        ``epoch=None`` is a no-op scope (sequential mode), so call sites
        need no branching.  Context-local: worker threads must re-enter
        the scope themselves (context variables are not inherited).
        """
        if epoch is None:
            yield self
            return
        from .database import reading_epoch

        with reading_epoch(self.interface.db, epoch):
            yield self

    def search(self, query: ConjunctiveQuery) -> QueryResult:
        """Issue one search query, charging the budget.

        Raises
        ------
        QueryBudgetExhausted
            If the budget is already spent.  The offending query is *not*
            executed (the client knows its own budget and does not fire a
            request it cannot pay for).
        """
        if self.cache_within_round:
            cached = self._cache.get(query)
            if cached is not None:
                return cached
        if not self.can_afford():
            raise QueryBudgetExhausted(self.budget or 0)
        self.queries_used += 1
        result = self.interface.search(query)
        if self._on_query is not None:
            # The hook mutates the database (intra-round update model), so
            # pin the columnar plane's deferred page to pre-mutation state
            # before it fires — mirroring the scalar plane's eager pages.
            result.freeze()
        if self.cache_within_round:
            self._cache[query] = result
        if self._on_query is not None:
            self._on_query()
        return result

    def reset_round(self, budget: int | None = None) -> None:
        """Start a new round: clear the cache, restart the budget counter."""
        if budget is not None:
            self.budget = budget
        self.queries_used = 0
        self._cache.clear()
