"""Published read epochs: immutable snapshots of a :class:`TupleStore`.

The HTAP split of the engine facade (``EngineConfig(overlap=True)``) runs
round-boundary churn *concurrently* with estimator queries.  That only
works if the analytical readers never observe the transactional writers —
so writers mutate the live store while readers are pinned to a
:class:`StoreEpoch`: a frozen, fully self-contained snapshot produced by
an atomic publish flip (:meth:`TupleStore.publish_epoch
<repro.hiddendb.store.TupleStore.publish_epoch>`, called under the
engine's write lock at every ``advance_round``).

A publish is cheap by construction:

* heap blocks become copy-on-write clones
  (:meth:`~repro.hiddendb.store._HeapBlock.snapshot`) — no column copies
  until churn actually touches a shared block;
* the scalar dict remainder copies shallowly
  (:class:`~repro.hiddendb.tuples.HiddenTuple` is never mutated in
  place);
* every prefix index freezes its storage backend
  (:func:`freeze_backend`): the packing engines hand their sorted run
  over *by reference* (compactions replace runs, never mutate them), the
  blocked engine pays one content copy.

The epoch's ``mutation_epoch`` counter is frozen at publish time, so
deferred result pages pinned to an epoch can never raise
:class:`~repro.errors.StaleResultError` — exactly the guarantee that lets
reads started before a publish flip keep resolving after churn lands.

Because :class:`StoreEpoch` *is* a :class:`TupleStore` (same heap layout,
same index table, custom construction), the whole read path — ``get`` /
``gather`` / ``scan_match`` / ``tuples`` / ``ensure_index`` — is
inherited verbatim: epoch reads are bit-identical to reading the live
store at the publish instant, by construction rather than by reimplementation.
Mutation entry points raise :class:`~repro.errors.ExperimentError`.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left
from concurrent.futures import ThreadPoolExecutor
from heapq import merge as heap_merge
from typing import Iterator

import numpy as np

from ..errors import ExperimentError
from .backends import _PARALLEL_SCAN_MIN, _RANK_CACHE_LIMIT
from .store import PrefixIndex, TupleStore

__all__ = [
    "FrozenBuffered",
    "FrozenPrefixIndex",
    "FrozenRun",
    "FrozenSharded",
    "StoreEpoch",
    "freeze_backend",
]

#: Exclusive int64 bound — rank probes at or past it clamp to the run end
#: instead of overflowing ``np.searchsorted``'s needle conversion.
_INT64_BOUND = 2**63


def _frozen(operation: str):
    raise ExperimentError(
        f"cannot {operation}: published epochs are immutable read "
        "snapshots — mutate the live store and publish a new epoch"
    )


class FrozenRun:
    """An immutable sorted key multiset — one backend's frozen contents.

    Holds either an int64 vector (zero-copy view of a packed engine's
    run, or a copy of a blocked engine's contents) or, for key universes
    beyond int64, a plain list of Python ints with the packed engine's
    top-63-bits probe array riding along for C-speed window narrowing.

    Implements the read subset of the
    :class:`~repro.hiddendb.backends.StorageBackend` protocol; mutation
    entry points raise.
    """

    __slots__ = ("_run", "_is_array", "_run_hi", "_hi_shift", "_key_bound")

    def __init__(
        self,
        keys,
        run_hi: np.ndarray | None = None,
        hi_shift: int = 0,
        key_bound: int | None = None,
    ):
        if isinstance(keys, array):
            # A packed engine's array('q') run: zero-copy int64 view (the
            # view keeps the buffer alive; the engine only ever *replaces*
            # its run, so the contents can never change underneath).
            self._run = (
                np.frombuffer(keys, dtype=np.int64)
                if len(keys)
                else np.empty(0, dtype=np.int64)
            )
            self._is_array = True
        elif isinstance(keys, np.ndarray):
            self._run = np.asarray(keys, dtype=np.int64)
            self._is_array = True
        else:
            self._run = list(keys)
            self._is_array = False
        self._run_hi = run_hi
        self._hi_shift = hi_shift
        self._key_bound = key_bound

    def __len__(self) -> int:
        return len(self._run)

    def _bisect(self, key: int) -> int:
        """``bisect_left`` over the frozen run, probe-accelerated when
        the run holds wide Python ints."""
        if self._is_array:
            if key >= _INT64_BOUND:
                return len(self._run)
            if key < -_INT64_BOUND:
                return 0
            return int(np.searchsorted(self._run, key, side="left"))
        run_hi = self._run_hi
        if (
            run_hi is not None
            and self._key_bound is not None
            and 0 <= key < self._key_bound
        ):
            probe = key >> self._hi_shift
            lo = int(np.searchsorted(run_hi, probe, side="left"))
            hi = int(np.searchsorted(run_hi, probe, side="right"))
            return bisect_left(self._run, key, lo, hi)
        return bisect_left(self._run, key)

    def rank(self, key: int) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        return self._bisect(key)

    def count_range(self, lo: int, hi: int) -> int:
        """Number of keys in the half-open interval ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self._bisect(hi) - self._bisect(lo)

    def range_keys(self, lo: int, hi: int) -> "np.ndarray | list[int]":
        """Keys in ``[lo, hi)`` as one vector (zero-copy view when packed)."""
        if hi <= lo:
            return (
                np.empty(0, dtype=np.int64) if self._is_array else []
            )
        return self._run[self._bisect(lo):self._bisect(hi)]

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        """Yield keys in ``[lo, hi)`` in ascending order."""
        return iter(self.range_keys(lo, hi))

    def __contains__(self, key: int) -> bool:
        return self.count_range(key, key + 1) > 0

    def __iter__(self) -> Iterator[int]:
        return iter(self._run)

    def add(self, key: int) -> None:
        _frozen("add to a frozen run")

    def remove(self, key: int) -> None:
        _frozen("remove from a frozen run")

    def bulk_add(self, keys) -> None:
        _frozen("bulk_add to a frozen run")

    def bulk_remove(self, keys) -> None:
        _frozen("bulk_remove from a frozen run")

    def check_invariants(self) -> None:
        """Validate internal structure (used by property tests)."""
        run = list(self._run)
        assert run == sorted(run), "unsorted frozen run"
        if self._run_hi is not None:
            assert len(self._run_hi) == len(run), "stale probe array"


class FrozenBuffered:
    """A frozen *buffered* engine state — run plus pending churn buffers.

    Produced by the packing engines' ``freeze()`` when insert/delete
    buffers are non-empty at publish time: rather than eagerly compacting
    the whole O(n) run into a fresh one (work the live lazy-merge read
    path never does), the engine hands over a point-in-time clone of
    itself — shared immutable run, *copied* small tail/dead buffers — and
    this wrapper exposes its read methods while refusing mutation.  Reads
    execute the exact live query code (run bisect + tail/dead buffer
    adjustment), so frozen answers are bit-identical to live answers at
    the publish instant by construction, and a publish flip costs
    O(pending churn) instead of O(n).
    """

    __slots__ = ("_view",)

    def __init__(self, view):
        self._view = view

    def __len__(self) -> int:
        return len(self._view)

    def __contains__(self, key: int) -> bool:
        return key in self._view

    def __iter__(self) -> Iterator[int]:
        return iter(self._view)

    def rank(self, key: int) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        return self._view.rank(key)

    def count_range(self, lo: int, hi: int) -> int:
        """Number of keys in the half-open interval ``[lo, hi)``."""
        return self._view.count_range(lo, hi)

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        """Yield keys in ``[lo, hi)`` in ascending order."""
        return self._view.iter_range(lo, hi)

    def range_keys(self, lo: int, hi: int) -> "np.ndarray | list[int]":
        """Keys in ``[lo, hi)`` as one vector (zero-copy run slice when
        no buffered key falls inside the range)."""
        return self._view.range_keys(lo, hi)

    def add(self, key: int) -> None:
        _frozen("add to a frozen buffered view")

    def remove(self, key: int) -> None:
        _frozen("remove from a frozen buffered view")

    def bulk_add(self, keys) -> None:
        _frozen("bulk_add to a frozen buffered view")

    def bulk_remove(self, keys) -> None:
        _frozen("bulk_remove from a frozen buffered view")

    def check_invariants(self) -> None:
        """Validate the underlying clone (used by property tests)."""
        self._view.check_invariants()


def freeze_backend(backend):
    """Freeze any storage backend into an immutable read view.

    Backends that know how (:meth:`PackedArrayBackend.freeze
    <repro.hiddendb.backends.PackedArrayBackend.freeze>` and friends)
    produce the cheapest view they can; third-party engines degrade to a
    one-pass content copy with identical query results.
    """
    freeze = getattr(backend, "freeze", None)
    if freeze is not None:
        return freeze()
    keys = list(backend)
    try:
        return FrozenRun(np.asarray(keys, dtype=np.int64))
    except OverflowError:
        return FrozenRun(keys)


class FrozenSharded:
    """An immutable composite of per-shard frozen runs.

    Preserves the live :class:`~repro.hiddendb.backends.ShardedBackend`'s
    shard partition so epoch-pinned analytical scans keep the same
    parallel fan-out: ``range_keys`` over a wide range dispatches the
    per-shard slice extraction to an ephemeral pool exactly like the live
    engine does — here without even a reader-vs-writer caveat, because
    nothing can mutate a frozen shard.
    """

    __slots__ = ("_shards", "num_shards", "_workers", "_size", "_rank_cache")

    def __init__(self, shards, num_shards: int, workers: int = 0):
        self._shards = list(shards)
        self.num_shards = int(num_shards)
        self._workers = max(int(workers or 0), 0)
        self._size = sum(len(shard) for shard in self._shards)
        self._rank_cache: dict[int, int] = {}

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return key in self._shards[key % self.num_shards]

    def rank(self, key: int) -> int:
        """Number of stored keys strictly smaller than ``key``."""
        cached = self._rank_cache.get(key)
        if cached is not None:
            return cached
        value = sum(shard.rank(key) for shard in self._shards)
        if len(self._rank_cache) < _RANK_CACHE_LIMIT:
            self._rank_cache[key] = value
        return value

    def count_range(self, lo: int, hi: int) -> int:
        """Number of keys in the half-open interval ``[lo, hi)``."""
        if hi <= lo:
            return 0
        return self.rank(hi) - self.rank(lo)

    def iter_range(self, lo: int, hi: int) -> Iterator[int]:
        """Yield keys in ``[lo, hi)`` ascending (k-way shard merge)."""
        if hi <= lo:
            return iter(())
        return heap_merge(
            *(shard.iter_range(lo, hi) for shard in self._shards)
        )

    def _scan_shards(self, lo: int, hi: int) -> list:
        if (
            self._workers > 1
            and self.num_shards > 1
            and self.count_range(lo, hi) >= _PARALLEL_SCAN_MIN
        ):
            with ThreadPoolExecutor(
                max_workers=min(self._workers, self.num_shards),
                thread_name_prefix="repro-scan",
            ) as pool:
                return list(
                    pool.map(
                        lambda shard: shard.range_keys(lo, hi),
                        self._shards,
                    )
                )
        return [shard.range_keys(lo, hi) for shard in self._shards]

    def range_keys(self, lo: int, hi: int) -> "np.ndarray | list[int]":
        """Keys in ``[lo, hi)`` as one sorted vector (parallel per-shard
        slice extraction when workers are configured and the range is
        wide; C-level concatenate+sort merge)."""
        if hi <= lo:
            slices = []
        else:
            slices = self._scan_shards(lo, hi)
            slices = [part for part in slices if len(part)]
        if not slices:
            first = self._shards[0].range_keys(0, 0)
            return (
                np.empty(0, dtype=np.int64)
                if isinstance(first, np.ndarray)
                else []
            )
        if len(slices) == 1:
            return slices[0]
        if all(isinstance(part, np.ndarray) for part in slices):
            merged = np.concatenate(slices)
            merged.sort()
            return merged
        return list(heap_merge(*slices))

    def __iter__(self) -> Iterator[int]:
        return heap_merge(*(iter(shard) for shard in self._shards))

    def add(self, key: int) -> None:
        _frozen("add to a frozen sharded view")

    def remove(self, key: int) -> None:
        _frozen("remove from a frozen sharded view")

    def bulk_add(self, keys) -> None:
        _frozen("bulk_add to a frozen sharded view")

    def bulk_remove(self, keys) -> None:
        _frozen("bulk_remove from a frozen sharded view")

    def check_invariants(self) -> None:
        """Validate shard placement, sizes, and every frozen shard."""
        total = 0
        for shard_index, shard in enumerate(self._shards):
            shard.check_invariants()
            total += len(shard)
            for key in shard:
                assert key % self.num_shards == shard_index, (
                    "key in the wrong shard"
                )
        assert total == self._size, "size counter out of sync"


class FrozenPrefixIndex(PrefixIndex):
    """A live prefix index's codec over its frozen key multiset.

    Shares the (immutable) codec and attribute order with the live index
    and swaps the storage backend for its frozen view, so every query
    method — ``count_prefix`` / ``iter_tids`` / ``range_tids`` — is
    inherited and bit-identical to querying the live index at the
    publish instant.
    """

    def __init__(self, live: PrefixIndex):
        # Deliberately no super().__init__: the codec/backend are adopted
        # from the live index, not rebuilt.
        self.attr_order = live.attr_order
        self.backend_name = live.backend_name
        self.codec = live.codec
        self._keys = freeze_backend(live._keys)

    def add(self, t) -> None:
        _frozen("index into a frozen prefix index")

    def remove(self, t) -> None:
        _frozen("unindex from a frozen prefix index")

    def bulk_add(self, tuples) -> None:
        _frozen("bulk_add into a frozen prefix index")

    def bulk_remove(self, tuples) -> None:
        _frozen("bulk_remove from a frozen prefix index")

    def bulk_add_batch(self, batch) -> None:
        _frozen("bulk_add_batch into a frozen prefix index")


class StoreEpoch(TupleStore):
    """A published, immutable snapshot of a :class:`TupleStore`.

    Built by :meth:`TupleStore.publish_epoch
    <repro.hiddendb.store.TupleStore.publish_epoch>` under the engine's
    write lock; thereafter served lock-free to any number of readers.
    Carries :attr:`round_index` — the round the publish flip installed —
    so estimators pinned to the epoch report against a stable round even
    while the live database advances underneath them.

    The entire read path is inherited from :class:`TupleStore` (the
    snapshot *is* a tuple store, frozen): ``get``, ``gather``,
    ``scan_match``, ``tuples``, ``segments``, ``random_tids``, index
    queries, and even :meth:`ensure_index` — an attribute order first
    queried mid-round builds an epoch-local index from the frozen heap,
    exactly what the live store would have built at publish time.
    Mutations raise :class:`~repro.errors.ExperimentError`.
    """

    def __init__(self, store: TupleStore, round_index: int):
        # Deliberately no super().__init__: every field is adopted from
        # the live store as a snapshot, not rebuilt empty.
        self.schema = store.schema
        self.backend_name = store.backend_name
        self.backend_options = dict(store.backend_options)
        self._block_size = store._block_size
        self._tuples = dict(store._tuples)
        self._blocks = [block.snapshot() for block in store._blocks]
        self._block_los = list(store._block_los)
        self._size = store._size
        # Frozen forever: pages pinned to this epoch can never go stale.
        self._epoch = store._epoch
        self._read_cache = (store._epoch, {})
        self._indexes = {
            key: FrozenPrefixIndex(index)
            for key, index in store._indexes.items()
        }
        self._index_lock = threading.Lock()
        self._listeners = []
        self._bulk_depth = 0
        self._pending_add = []
        self._pending_del = []
        self._pending_batches = []
        self.round_index = int(round_index)

    def insert(self, t) -> None:
        _frozen("insert into a published epoch")

    def insert_batch(self, batch) -> int:
        _frozen("insert_batch into a published epoch")

    def delete(self, tid: int):
        _frozen("delete from a published epoch")

    def replace(self, t) -> None:
        _frozen("replace in a published epoch")

    def bulk_insert(self, tuples) -> int:
        _frozen("bulk_insert into a published epoch")

    def bulk_delete(self, tids):
        _frozen("bulk_delete from a published epoch")

    def subscribe(self, listener) -> None:
        _frozen("subscribe to a published epoch")
