"""Conjunctive search queries — the only thing the web interface accepts.

A query is a conjunction of equality predicates ``Ai = u`` (paper §2.1):

    SELECT * FROM D WHERE Ai1 = u1 AND ... AND Ais = us

Queries are immutable and hashable so they can serve as cache keys.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import QueryError
from .schema import Schema
from .tuples import HiddenTuple


class ConjunctiveQuery:
    """An immutable conjunction of ``attribute = value`` predicates.

    Predicates are stored as ``(attr_index, value_index)`` pairs sorted by
    attribute index; the empty conjunction is the root query
    ``SELECT * FROM D``.
    """

    __slots__ = ("predicates", "_hash")

    def __init__(self, predicates: Iterable[tuple[int, int]] = ()):
        predicate_list = sorted(predicates)
        seen_attrs = set()
        for attr_index, _value in predicate_list:
            if attr_index in seen_attrs:
                raise QueryError(
                    f"duplicate predicate on attribute index {attr_index}"
                )
            seen_attrs.add(attr_index)
        self.predicates = tuple(predicate_list)
        self._hash = hash(self.predicates)

    @classmethod
    def root(cls) -> "ConjunctiveQuery":
        """The unrestricted query ``SELECT * FROM D``."""
        return cls()

    @classmethod
    def from_labels(
        cls, schema: Schema, predicates: Mapping[str, str]
    ) -> "ConjunctiveQuery":
        """Build a query from ``{attribute name: value label}``."""
        pairs = []
        for name, label in predicates.items():
            attr_index = schema.attribute_index(name)
            value_index = schema.attributes[attr_index].index_of(label)
            pairs.append((attr_index, value_index))
        return cls(pairs)

    @property
    def num_predicates(self) -> int:
        """Number of conjunctive predicates (0 for the root)."""
        return len(self.predicates)

    def matches(self, t: HiddenTuple) -> bool:
        """True if the tuple satisfies every predicate."""
        values = t.values
        for attr_index, value_index in self.predicates:
            if values[attr_index] != value_index:
                return False
        return True

    def extended(self, attr_index: int, value_index: int) -> "ConjunctiveQuery":
        """A new query with one extra predicate appended."""
        return ConjunctiveQuery(self.predicates + ((attr_index, value_index),))

    def validate(self, schema: Schema) -> None:
        """Raise :class:`QueryError` if any predicate is out of range."""
        for attr_index, value_index in self.predicates:
            if attr_index >= schema.num_attributes:
                raise QueryError(f"attribute index {attr_index} out of range")
            if value_index >= schema.attributes[attr_index].size:
                raise QueryError(
                    f"value index {value_index} out of range for attribute "
                    f"{schema.attributes[attr_index].name!r}"
                )

    def describe(self, schema: Schema) -> str:
        """SQL-ish rendering, for logs and error messages."""
        if not self.predicates:
            return "SELECT * FROM D"
        clauses = " AND ".join(
            f"{schema.attributes[a].name} = "
            f"{schema.attributes[a].values[v]!r}"
            for a, v in self.predicates
        )
        return f"SELECT * FROM D WHERE {clauses}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and self.predicates == other.predicates
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ConjunctiveQuery({self.predicates})"
