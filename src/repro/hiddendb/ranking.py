"""Proprietary scoring functions for the top-k interface.

The paper treats the ranking function as an opaque, database-controlled
choice (§2.1).  The simulator supports pluggable policies; the estimators
never inspect scores, so the policy only matters for which k tuples a valid
query's caller *sees* — exactly as on a real site.
"""

from __future__ import annotations

import random
from typing import Protocol

import numpy as np

from .schema import Schema
from .tuples import HiddenTuple, TupleBatch


class RankingPolicy(Protocol):
    """Assigns the static ranking score of a tuple at insert time.

    Policies may additionally implement ``score_batch(batch, tids, schema)
    -> np.ndarray`` to score a columnar batch without materializing
    tuples; it must draw from the same stream as per-tuple :meth:`score`
    calls in row order (see :func:`scores_for_batch`).
    """

    def score(self, t: HiddenTuple, schema: Schema) -> float:
        """Higher scores rank earlier in search results."""
        ...


def scores_for_batch(
    policy: "RankingPolicy",
    batch: TupleBatch,
    tids: np.ndarray,
    schema: Schema,
) -> np.ndarray:
    """Score vector of a batch, matching the per-tuple score stream.

    Uses the policy's ``score_batch`` fast path when it has one; otherwise
    materializes each row and calls :meth:`RankingPolicy.score` exactly as
    the scalar insert path would, so third-party policies keep working.
    """
    score_batch = getattr(policy, "score_batch", None)
    if score_batch is not None:
        return np.asarray(score_batch(batch, tids, schema), dtype=np.float64)
    scores = np.empty(len(batch), dtype=np.float64)
    for row in range(len(batch)):
        t = HiddenTuple(
            int(tids[row]), batch.values[row].tobytes(),
            batch.row_measures(row),
        )
        scores[row] = policy.score(t, schema)
    return scores


class RandomScore:
    """I.i.d. random scores — an arbitrary, stable, opaque ranking."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def score(self, t: HiddenTuple, schema: Schema) -> float:
        return self._rng.random()

    def score_batch(
        self, batch: TupleBatch, tids: np.ndarray, schema: Schema
    ) -> np.ndarray:
        # Draw from the same Mersenne stream as per-tuple scoring so the
        # scalar and vectorized planes assign identical scores.
        rng_random = self._rng.random
        return np.array(
            [rng_random() for _ in range(len(batch))], dtype=np.float64
        )


class MeasureScore:
    """Rank by a measure (e.g. price-ascending like a shopping site)."""

    def __init__(self, measure: str, descending: bool = True):
        self.measure = measure
        self.descending = descending
        self._measure_index: int | None = None

    def score(self, t: HiddenTuple, schema: Schema) -> float:
        if self._measure_index is None:
            self._measure_index = schema.measure_index(self.measure)
        value = t.measure(self._measure_index)
        return value if self.descending else -value

    def score_batch(
        self, batch: TupleBatch, tids: np.ndarray, schema: Schema
    ) -> np.ndarray:
        if self._measure_index is None:
            self._measure_index = schema.measure_index(self.measure)
        column = batch.measures[:, self._measure_index]
        # Copy: returning the view would make the stored score vector
        # alias the measure column, so later in-place measure updates and
        # score writes would corrupt each other.
        return column.copy() if self.descending else -column


class RecencyScore:
    """Rank newest-first (higher tid = inserted later = ranked earlier)."""

    def score(self, t: HiddenTuple, schema: Schema) -> float:
        return float(t.tid)

    def score_batch(
        self, batch: TupleBatch, tids: np.ndarray, schema: Schema
    ) -> np.ndarray:
        return np.asarray(tids, dtype=np.float64)
