"""Proprietary scoring functions for the top-k interface.

The paper treats the ranking function as an opaque, database-controlled
choice (§2.1).  The simulator supports pluggable policies; the estimators
never inspect scores, so the policy only matters for which k tuples a valid
query's caller *sees* — exactly as on a real site.
"""

from __future__ import annotations

import random
from typing import Protocol

from .schema import Schema
from .tuples import HiddenTuple


class RankingPolicy(Protocol):
    """Assigns the static ranking score of a tuple at insert time."""

    def score(self, t: HiddenTuple, schema: Schema) -> float:
        """Higher scores rank earlier in search results."""
        ...


class RandomScore:
    """I.i.d. random scores — an arbitrary, stable, opaque ranking."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def score(self, t: HiddenTuple, schema: Schema) -> float:
        return self._rng.random()


class MeasureScore:
    """Rank by a measure (e.g. price-ascending like a shopping site)."""

    def __init__(self, measure: str, descending: bool = True):
        self.measure = measure
        self.descending = descending
        self._measure_index: int | None = None

    def score(self, t: HiddenTuple, schema: Schema) -> float:
        if self._measure_index is None:
            self._measure_index = schema.measure_index(self.measure)
        value = t.measure(self._measure_index)
        return value if self.descending else -value


class RecencyScore:
    """Rank newest-first (higher tid = inserted later = ranked earlier)."""

    def score(self, t: HiddenTuple, schema: Schema) -> float:
        return float(t.tid)
