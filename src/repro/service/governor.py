"""Per-tenant budget governor: admission control with graceful degradation.

The paper's estimators are clients of a *rate-limited* hidden database;
run as a service, the reproduction must itself be one.  The governor
layers query-budget **policy** on top of the engine's per-task accounting
(``Engine.budget_ledger()``): per-tenant and service-wide ceilings over a
rolling window of rounds, and a documented degradation ladder that is
always observable (telemetry + per-round outcome records), never silent.

The design follows the ``LLMBudgetConfig`` / ``UsageSnapshot`` pattern of
the budget-policy reference in SNIPPETS.md: a frozen policy config with
fractional fallback steps, and mutable usage snapshots per tenant.

**Degradation ladder** (strictly in this order as a tenant's window
allowance depletes):

1. ``allow`` — remaining allowance covers the full per-round budget.
2. ``shrink_k`` — the tenant's per-round query allowance (the number of
   top-k drill-down queries it may spend) is scaled down by the largest
   fitting step of :attr:`GovernorConfig.shrink_steps`.
3. ``widen_rounds`` — no step fits: the tenant's cadence stretches; the
   round is deferred (up to :attr:`GovernorConfig.max_deferrals`
   consecutive times) so the remaining allowance spreads over wider
   round spacing.
4. **refuse** — deferrals exhausted: :class:`~repro.errors.AdmissionError`
   (wire code ``ADMISSION_REJECTED``, HTTP 429) with
   ``retry_after_rounds`` pointing at the next window.

Windows are aligned to the engine's round clock: round ``r`` belongs to
window ``r // window_rounds``, and every counter resets when the window
rolls over.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Mapping

from ..core.wire import stamp
from ..errors import AdmissionError, ExperimentError
from ..obs import OBS

#: Ladder action names, in degradation order.
ACTION_ALLOW = "allow"
ACTION_SHRINK = "shrink_k"
ACTION_WIDEN = "widen_rounds"
ACTION_REFUSE = "refuse"

#: Import-time observability handles, one per ladder outcome.
_ACTION_COUNTERS = {
    action: OBS.counter("repro_governor_actions_total", {"action": action})
    for action in (ACTION_ALLOW, ACTION_SHRINK, ACTION_WIDEN, ACTION_REFUSE)
}


@dataclasses.dataclass(frozen=True)
class GovernorConfig:
    """Budget policy for the service plane (all knobs in one object).

    Parameters
    ----------
    queries_per_window:
        Per-tenant query ceiling within one window (``None`` = unlimited;
        the governor then only keeps telemetry).
    window_rounds:
        Window length in engine rounds; counters reset at every multiple.
    shrink_steps:
        Fractions of the nominal per-round budget tried (largest first)
        when the full budget no longer fits the remaining allowance.
    max_deferrals:
        Consecutive ``widen_rounds`` deferrals granted before refusing.
    total_queries_per_window:
        Service-wide ceiling across all tenants per window (``None`` =
        unlimited).
    max_tenants:
        Admission control at submit time: the maximum number of concurrent
        tenants the service accepts (``None`` = unlimited).
    """

    queries_per_window: int | None = None
    window_rounds: int = 16
    shrink_steps: tuple[float, ...] = (0.85, 0.7, 0.55, 0.4)
    max_deferrals: int = 2
    total_queries_per_window: int | None = None
    max_tenants: int | None = None

    def __post_init__(self) -> None:
        if self.queries_per_window is not None and self.queries_per_window < 1:
            raise ExperimentError("queries_per_window must be positive")
        if self.window_rounds < 1:
            raise ExperimentError("window_rounds must be positive")
        if not self.shrink_steps:
            raise ExperimentError("shrink_steps must be non-empty")
        if any(not 0.0 < step < 1.0 for step in self.shrink_steps):
            raise ExperimentError("shrink_steps must be fractions in (0, 1)")
        object.__setattr__(
            self,
            "shrink_steps",
            tuple(sorted((float(s) for s in self.shrink_steps), reverse=True)),
        )
        if self.max_deferrals < 0:
            raise ExperimentError("max_deferrals must be non-negative")
        if (
            self.total_queries_per_window is not None
            and self.total_queries_per_window < 1
        ):
            raise ExperimentError("total_queries_per_window must be positive")
        if self.max_tenants is not None and self.max_tenants < 1:
            raise ExperimentError("max_tenants must be positive")

    def to_wire(self) -> dict:
        return stamp(dataclasses.asdict(self))

    @classmethod
    def from_wire(cls, payload: Mapping) -> "GovernorConfig":
        known = {field.name for field in dataclasses.fields(cls)}
        cleaned = {
            key: value for key, value in payload.items() if key in known
        }
        if "shrink_steps" in cleaned and cleaned["shrink_steps"] is not None:
            cleaned["shrink_steps"] = tuple(cleaned["shrink_steps"])
        return cls(**cleaned)


@dataclasses.dataclass
class TenantUsage:
    """Mutable usage snapshot of one tenant (one per governor entry)."""

    window_index: int = -1
    window_queries: int = 0
    queries_total: int = 0
    rounds_run: int = 0
    degraded_rounds: int = 0
    deferred_rounds: int = 0
    refused_rounds: int = 0
    consecutive_deferrals: int = 0
    last_action: str = "none"

    def snapshot(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Admission:
    """One admit decision (refusals raise instead — the typed 429)."""

    action: str
    granted: int
    requested: int
    remaining: int | None
    factor: float | None = None

    @property
    def runs(self) -> bool:
        """Whether the tenant's round executes at all."""
        return self.granted > 0

    def record(self) -> dict | None:
        """The wire-visible governor record of a non-trivial decision."""
        if self.action == ACTION_ALLOW:
            return None
        return {
            "action": self.action,
            "granted": self.granted,
            "requested": self.requested,
            "factor": self.factor,
            "remaining": self.remaining,
        }


class BudgetGovernor:
    """Thread-safe admission control + usage telemetry over tenants.

    The protocol is two-phase per tenant per round: :meth:`admit` decides
    (and records the decision), the caller runs the round with the granted
    budget, then :meth:`commit` books the queries actually spent.  Both
    sides take one short lock, so hundreds of concurrent tenants account
    exactly (see ``tests/test_governor.py``).
    """

    def __init__(self, config: GovernorConfig | None = None):
        self.config = config if config is not None else GovernorConfig()
        self._lock = threading.Lock()
        self._tenants: dict[str, TenantUsage] = {}
        self._window_index = -1
        self._window_queries = 0
        self._queries_total = 0

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------
    def window_of(self, round_index: int) -> int:
        return round_index // self.config.window_rounds

    def _roll(self, usage: TenantUsage, round_index: int) -> None:
        window = self.window_of(round_index)
        # Forward-only: a late admit/commit for a round in an
        # already-closed window must not re-open it.  Rolling on *any*
        # window change meant a round landing exactly on a window_rounds
        # boundary could bounce the counters back to the old window and
        # wipe the new window's bookings — charging the old window twice.
        if window > self._window_index:
            self._window_index = window
            self._window_queries = 0
        if window > usage.window_index:
            usage.window_index = window
            usage.window_queries = 0
            usage.consecutive_deferrals = 0

    def _usage(self, tenant: str) -> TenantUsage:
        usage = self._tenants.get(tenant)
        if usage is None:
            usage = self._tenants[tenant] = TenantUsage()
        return usage

    # ------------------------------------------------------------------
    # Submission-time admission
    # ------------------------------------------------------------------
    def admit_tenant(self, tenant: str, active_tenants: int) -> None:
        """Admission control for ``POST /v1/tasks`` (``max_tenants``)."""
        limit = self.config.max_tenants
        if limit is not None and active_tenants >= limit:
            raise AdmissionError(
                f"tenant capacity {limit} reached",
                tenant=tenant,
                remaining=0,
            )

    # ------------------------------------------------------------------
    # Round-time admission (the degradation ladder)
    # ------------------------------------------------------------------
    def admit(
        self, tenant: str, requested: int, round_index: int
    ) -> Admission:
        """Decide this tenant's round under the current window allowance.

        Returns an :class:`Admission` for ``allow`` / ``shrink_k`` /
        ``widen_rounds``; raises :class:`~repro.errors.AdmissionError`
        when the ladder is exhausted.
        """
        if requested < 1:
            raise ExperimentError("requested budget must be positive")
        with self._lock:
            usage = self._usage(tenant)
            self._roll(usage, round_index)
            remaining = self._remaining(usage)
            if remaining is None or remaining >= requested:
                usage.consecutive_deferrals = 0
                usage.last_action = ACTION_ALLOW
                if OBS.enabled:
                    _ACTION_COUNTERS[ACTION_ALLOW].inc()
                return Admission(
                    ACTION_ALLOW, requested, requested, remaining
                )
            for factor in self.config.shrink_steps:
                granted = max(1, int(requested * factor))
                if granted <= remaining and granted < requested:
                    usage.consecutive_deferrals = 0
                    usage.degraded_rounds += 1
                    usage.last_action = ACTION_SHRINK
                    if OBS.enabled:
                        _ACTION_COUNTERS[ACTION_SHRINK].inc()
                    return Admission(
                        ACTION_SHRINK, granted, requested, remaining, factor
                    )
            if usage.consecutive_deferrals < self.config.max_deferrals:
                usage.consecutive_deferrals += 1
                usage.deferred_rounds += 1
                usage.last_action = ACTION_WIDEN
                if OBS.enabled:
                    _ACTION_COUNTERS[ACTION_WIDEN].inc()
                return Admission(ACTION_WIDEN, 0, requested, remaining)
            usage.refused_rounds += 1
            usage.last_action = ACTION_REFUSE
            if OBS.enabled:
                _ACTION_COUNTERS[ACTION_REFUSE].inc()
            # The allowance resets when the *currently open* window ends
            # (which may be ahead of this round's window for a late
            # request); clamp to at least one round so a refusal at the
            # exact window boundary never advertises an immediate retry.
            next_window_round = (
                (max(self._window_index, self.window_of(round_index)) + 1)
                * self.config.window_rounds
            )
            raise AdmissionError(
                f"tenant {tenant!r} exhausted its window budget "
                f"({remaining} of its allowance left, nominal round "
                f"budget {requested})",
                tenant=tenant,
                retry_after_rounds=max(1, next_window_round - round_index),
                remaining=remaining,
            )

    def _remaining(self, usage: TenantUsage) -> int | None:
        """Window allowance still grantable (``None`` = unlimited)."""
        remaining = None
        if self.config.queries_per_window is not None:
            remaining = max(
                0, self.config.queries_per_window - usage.window_queries
            )
        if self.config.total_queries_per_window is not None:
            service_remaining = max(
                0,
                self.config.total_queries_per_window - self._window_queries,
            )
            remaining = (
                service_remaining if remaining is None
                else min(remaining, service_remaining)
            )
        return remaining

    def commit(self, tenant: str, used: int, round_index: int) -> None:
        """Book the queries a tenant's round actually spent.

        Lifetime totals always book; *window* counters book only when the
        round belongs to the window that is currently open — a straggler
        commit from a closed window must not charge the new window's
        allowance (nor, with the forward-only roll, re-open the old one).
        """
        if used < 0:
            raise ExperimentError("used queries must be non-negative")
        with self._lock:
            usage = self._usage(tenant)
            self._roll(usage, round_index)
            window = self.window_of(round_index)
            if window == usage.window_index:
                usage.window_queries += used
            usage.queries_total += used
            usage.rounds_run += 1
            if window == self._window_index:
                self._window_queries += used
            self._queries_total += used

    # ------------------------------------------------------------------
    # Persistence (see repro.api.persistence / docs/format.md)
    # ------------------------------------------------------------------
    def state_to_wire(self) -> dict:
        """Full governor state as a strict-JSON payload: the policy plus
        every counter :meth:`restore_state` needs to continue admission
        decisions exactly where a killed service left off (window
        alignment, per-tenant deferral streaks, service totals)."""
        with self._lock:
            return stamp({
                "config": dataclasses.asdict(self.config),
                "window_index": self._window_index,
                "window_queries": self._window_queries,
                "queries_total": self._queries_total,
                "tenants": {
                    name: usage.snapshot()
                    for name, usage in self._tenants.items()
                },
            })

    def restore_state(self, payload: Mapping) -> None:
        """Adopt a :meth:`state_to_wire` payload (exact round trip).

        The policy config is *not* replaced — the restored service runs
        under whatever policy it was constructed with (operators may
        legitimately tighten limits across a restart); only the usage
        counters are restored.
        """
        known = {field.name for field in dataclasses.fields(TenantUsage)}
        with self._lock:
            self._window_index = int(payload["window_index"])
            self._window_queries = int(payload["window_queries"])
            self._queries_total = int(payload["queries_total"])
            self._tenants = {
                str(name): TenantUsage(**{
                    key: value for key, value in usage.items()
                    if key in known
                })
                for name, usage in payload["tenants"].items()
            }

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Stamped usage telemetry: per-tenant snapshots + service totals."""
        with self._lock:
            return stamp({
                "policy": dataclasses.asdict(self.config),
                "window_index": self._window_index,
                "window_queries": self._window_queries,
                "queries_total": self._queries_total,
                "tenants": {
                    name: usage.snapshot()
                    for name, usage in self._tenants.items()
                },
            })
