"""The service application: governed Engine lifecycle over typed forms.

:class:`ServiceApp` is the whole service minus the transport.  Every
handler consumes/produces the dataclasses of
:mod:`repro.service.protocol`, so the asyncio HTTP server
(:mod:`repro.service.http`) is a pure codec — and tests/benchmarks can
call the same handlers in-process and expect byte-identical payloads.

Execution model (mirrors the engine's own lock split from PR 5):

* **Mutating handlers** — :meth:`submit`, :meth:`run_rounds` — serialize
  on an app-level round lock (the HTTP layer additionally runs them on a
  single worker thread, keeping the event loop free during long rounds).
* **Observers** — :meth:`reports`, :meth:`ledger`, :meth:`telemetry`,
  :meth:`health` — only touch the engine's *session* lock and respond
  during a long round (the PR 5 lock-narrowing contract).  With
  ``EngineConfig(overlap=True)`` the engine's own round lock narrows
  too: writers take only the write lock, and :meth:`health` reports the
  *published epoch* (a stable round index + tuple count) rather than
  racing the live store mid-churn.
* Every completed ``(task, report)`` is published to subscribers through
  a bounded replay buffer, which the SSE endpoint streams.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import ExitStack
from typing import Callable

from ..api.engine import Engine
from ..core.estimators.base import RoundReport
from ..errors import AdmissionError, ExperimentError, wire_error
from ..obs import OBS
from .governor import ACTION_SHRINK, Admission, BudgetGovernor
from .protocol import (
    STATUS_DEFERRED,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_REFUSED,
    HealthResponse,
    LedgerResponse,
    ReportsResponse,
    RoundOutcome,
    RoundRequest,
    RoundResult,
    RoundsResponse,
    TaskAccepted,
    TaskRequest,
    TelemetryResponse,
)

#: Retained published report events for SSE replay (independent of the
#: engine's own ``report_log_limit``).
DEFAULT_REPLAY_LIMIT = 1024

#: A report event listener (called under the publish lock — keep it fast;
#: the HTTP layer just enqueues into per-connection asyncio queues).
EventListener = Callable[[dict], None]

#: Import-time observability handle (see repro.obs).
_SSE_BACKLOG = OBS.gauge("repro_sse_backlog_events")


class ServiceApp:
    """Governed multi-tenant estimation service around one engine."""

    def __init__(
        self,
        engine: Engine,
        governor: BudgetGovernor | None = None,
        replay_limit: int = DEFAULT_REPLAY_LIMIT,
        store_dir: str | None = None,
        snapshot_every: int | None = None,
    ):
        """``store_dir`` makes the service durable: :meth:`snapshot`
        writes atomic epoch snapshots there (engine + governor state, see
        :mod:`repro.api.persistence`), and ``snapshot_every=N`` takes one
        automatically after every ``N`` completed rounds.  ``store_dir``
        defaults to the engine config's ``store_dir``; ``snapshot_every``
        without a resolvable store directory raises."""
        self.engine = engine
        self.governor = governor if governor is not None else BudgetGovernor()
        self.store_dir = (
            store_dir if store_dir is not None
            else engine.config.store_dir
        )
        if snapshot_every is not None and snapshot_every < 1:
            raise ExperimentError("snapshot_every must be positive")
        if snapshot_every is not None and self.store_dir is None:
            raise ExperimentError(
                "snapshot_every needs a store_dir (on the app or on the "
                "engine config)"
            )
        self.snapshot_every = snapshot_every
        self._rounds_since_snapshot = 0
        self._round_lock = threading.Lock()
        self._publish_lock = threading.Lock()
        self._listeners: set[EventListener] = set()
        self._events: deque[dict] = deque(maxlen=replay_limit)
        self._seq = 0

    @classmethod
    def restore(
        cls,
        store_dir: str,
        governor: BudgetGovernor | None = None,
        replay_limit: int = DEFAULT_REPLAY_LIMIT,
        snapshot_every: int | None = None,
    ) -> "ServiceApp":
        """Rebuild a service from the committed snapshot in ``store_dir``.

        The engine resumes bit-identically (tasks, RNG streams, ledgers);
        the governor's usage counters are restored into ``governor`` (or
        a fresh default one), while its *policy* stays whatever the caller
        constructed — operators may retune limits across a restart.
        """
        from ..api.persistence import load_engine

        engine, extra = load_engine(store_dir)
        app = cls(
            engine,
            governor=governor,
            replay_limit=replay_limit,
            store_dir=store_dir,
            snapshot_every=snapshot_every,
        )
        if isinstance(extra, dict) and extra.get("governor") is not None:
            app.governor.restore_state(extra["governor"])
        return app

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def snapshot(self, path: str | None = None) -> dict:
        """Take one atomic snapshot (engine + governor); returns the
        manifest.  Serialized with the mutating handlers, so it always
        observes a between-rounds quiescent point.  In overlap mode that
        point is exactly a publish flip — the snapshot captures the same
        version the published epoch serves (estimator state and store
        must agree, so snapshots quiesce writers rather than racing
        them)."""
        target = path if path is not None else self.store_dir
        if target is None:
            raise ExperimentError(
                "snapshot needs a path (or an app built with store_dir)"
            )
        with self._round_lock:
            return self._snapshot_locked(target)

    def _snapshot_locked(self, target: str) -> dict:
        manifest = self.engine.save(
            target, extra={"governor": self.governor.state_to_wire()}
        )
        self._rounds_since_snapshot = 0
        return manifest

    # ------------------------------------------------------------------
    # Mutating handlers (serialized)
    # ------------------------------------------------------------------
    def submit(self, request: TaskRequest) -> TaskAccepted:
        """Admit and register one tenant's estimation task."""
        with self._round_lock:
            active = len(self.engine.tasks())
            self.governor.admit_tenant(request.name, active)
            task = request.to_task(self.engine.db.schema)
            handle = self.engine.submit(task)
            return TaskAccepted(
                name=handle.name,
                estimator=str(request.estimator),
                budget_per_round=handle.budget_per_round,
                round_index=self.engine.current_round,
                tenants=active + 1,
            )

    def run_rounds(self, request: RoundRequest) -> RoundsResponse:
        """Run one or more governed rounds; per-task outcomes per round.

        A refused tenant never fails the other tenants' round: its typed
        429 payload lands in *its* outcome (a single-tenant request still
        surfaces the raise through the transport as a real 429 — see the
        HTTP layer).  Estimates of admitted-at-full-budget tenants are
        bit-identical to driving ``Engine.run_round`` directly.
        """
        if not isinstance(request.rounds, int) or request.rounds < 1:
            raise ExperimentError("rounds must be a positive integer")
        results = []
        for position in range(request.rounds):
            with self._round_lock:
                if position and request.advance:
                    self.engine.advance_round()
                results.append(self._run_one_round(request))
                if self.snapshot_every is not None:
                    self._rounds_since_snapshot += 1
                    if self._rounds_since_snapshot >= self.snapshot_every:
                        self._snapshot_locked(self.store_dir)
        return RoundsResponse(results)

    def _run_one_round(self, request: RoundRequest) -> RoundResult:
        if request.tasks is not None:
            names = list(dict.fromkeys(request.tasks))
        else:
            names = list(self.engine.tasks())
        round_index = self.engine.current_round
        admissions: dict[str, Admission] = {}
        outcomes: dict[str, RoundOutcome] = {}
        run_names: list[str] = []
        for name in names:
            handle = self.engine[name]  # raises UnknownTaskError (404)
            try:
                admission = self.governor.admit(
                    name, handle.budget_per_round, round_index
                )
            except AdmissionError as exc:
                if len(names) == 1:
                    # One tenant asked, one tenant refused: surface the
                    # typed 429 itself rather than wrapping it.
                    raise
                outcomes[name] = RoundOutcome(
                    name, STATUS_REFUSED, error=wire_error(exc)
                )
                continue
            admissions[name] = admission
            if admission.runs:
                run_names.append(name)
            else:
                outcomes[name] = RoundOutcome(
                    name, STATUS_DEFERRED, governor=admission.record()
                )
        reports: dict[str, RoundReport] = {}
        if run_names:
            with ExitStack() as stack:
                for name in run_names:
                    admission = admissions[name]
                    if admission.action == ACTION_SHRINK:
                        stack.enter_context(
                            self.engine[name].throttled(admission.granted)
                        )
                reports = self.engine.run_round(
                    run_names, parallel=request.parallel
                )
        for name in run_names:
            report = reports[name]
            self.governor.commit(name, report.queries_used, round_index)
            admission = admissions[name]
            status = (
                STATUS_DEGRADED if admission.action == ACTION_SHRINK
                else STATUS_OK
            )
            outcomes[name] = RoundOutcome(
                name,
                status,
                report=report.to_dict(),
                governor=admission.record(),
            )
            self._publish(name, report, round_index)
        return RoundResult(round_index, [outcomes[name] for name in names])

    # ------------------------------------------------------------------
    # Observers (session-lock only; respond during a long round)
    # ------------------------------------------------------------------
    def reports(self, task: str) -> ReportsResponse:
        handle = self.engine[task]
        return ReportsResponse(
            task=handle.name,
            rounds_run=handle.rounds_run,
            queries_total=handle.queries_total,
            reports=[report.to_dict() for report in handle.reports],
        )

    def ledger(self) -> LedgerResponse:
        return LedgerResponse(
            round_index=self.engine.current_round,
            ledger=self.engine.budget_ledger(),
        )

    def telemetry(self) -> TelemetryResponse:
        return TelemetryResponse(
            round_index=self.engine.current_round,
            governor=self.governor.snapshot(),
            metrics=self.engine.metrics(),
            tuning=self.engine.tuning_report(),
        )

    def health(self) -> HealthResponse:
        # In overlap mode, report the published epoch: one atomic
        # (round, size) pair — the version estimators are actually
        # reading — instead of sampling the live store mid-churn.
        epoch = (
            self.engine.db.published if self.engine.config.overlap else None
        )
        if epoch is not None:
            round_index, tuples = epoch.round_index, len(epoch)
        else:
            round_index, tuples = (
                self.engine.current_round, len(self.engine.db),
            )
        return HealthResponse(
            status="ok",
            round_index=round_index,
            backend=self.engine.backend,
            tuples=tuples,
            tasks=list(self.engine.tasks()),
        )

    # ------------------------------------------------------------------
    # Report event stream
    # ------------------------------------------------------------------
    def _publish(
        self, name: str, report: RoundReport, round_index: int
    ) -> None:
        with self._publish_lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "task": name,
                "round_index": round_index,
                "report": report.to_dict(),
            }
            self._events.append(event)
            if OBS.enabled:
                _SSE_BACKLOG.set(len(self._events))
            for listener in tuple(self._listeners):
                listener(event)

    def subscribe(
        self, listener: EventListener, replay_from: int = 0
    ) -> list[dict]:
        """Register a live listener; returns the retained events after
        ``replay_from`` (atomically, so no event is missed or doubled)."""
        with self._publish_lock:
            self._listeners.add(listener)
            return [e for e in self._events if e["seq"] > replay_from]

    def unsubscribe(self, listener: EventListener) -> None:
        with self._publish_lock:
            self._listeners.discard(listener)
