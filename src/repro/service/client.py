"""Blocking HTTP client for the service plane (stdlib ``http.client``).

:class:`ServiceClient` speaks the versioned wire API of
:mod:`repro.service.http` and rehydrates typed errors: a non-2xx response
whose body carries the wire error envelope is raised as the original
exception class via :func:`repro.errors.error_from_wire` — so
``except QueryBudgetExhausted`` works identically against the in-process
facade and over HTTP.

The client is deliberately thin (tests, benchmarks, smoke jobs): one
connection per request, blocking SSE iteration via :meth:`stream`.
"""

from __future__ import annotations

import http.client
import json
from typing import Iterator, Mapping

from ..errors import ReproError, error_from_wire


class ServiceClient:
    """A synchronous client for one ``repro-serve`` endpoint."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def request(self, method: str, path: str, payload: Mapping | None = None):
        """One request/response cycle; raises the rehydrated typed error
        on a non-2xx status carrying a wire error envelope."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
        finally:
            connection.close()
        decoded = json.loads(data.decode("utf-8")) if data else {}
        if response.status >= 400:
            error = decoded.get("error") if isinstance(decoded, dict) else None
            if error:
                raise error_from_wire(error)
            raise ReproError(
                f"{method} {path} failed with HTTP {response.status}"
            )
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/v1/healthz")

    def ledger(self) -> dict:
        return self.request("GET", "/v1/ledger")

    def telemetry(self) -> dict:
        return self.request("GET", "/v1/telemetry")

    def reports(self, task: str) -> dict:
        return self.request("GET", f"/v1/tasks/{task}/reports")

    def metrics_text(self) -> str:
        """``GET /v1/metrics`` — the raw Prometheus text exposition
        (not JSON; scrape-format lines, see ``docs/observability.md``)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            data = response.read()
        finally:
            connection.close()
        if response.status >= 400:
            raise ReproError(
                f"GET /v1/metrics failed with HTTP {response.status}"
            )
        return data.decode("utf-8")

    def submit(self, **task_request) -> dict:
        """``POST /v1/tasks`` — keyword form of ``TaskRequest``."""
        return self.request("POST", "/v1/tasks", task_request)

    def run_rounds(self, **round_request) -> dict:
        """``POST /v1/rounds`` — keyword form of ``RoundRequest``."""
        return self.request("POST", "/v1/rounds", round_request)

    def shutdown(self) -> dict:
        return self.request("POST", "/v1/shutdown")

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------
    def stream(
        self,
        task: str | None = None,
        replay: bool = True,
        timeout: float | None = None,
    ) -> Iterator[dict]:
        """Iterate report events from ``GET /v1/stream``.

        Yields the decoded ``data:`` payloads (``{"seq", "task",
        "round_index", "report", ...}``); heartbeat comments are skipped.
        The iterator ends when the connection closes or (if ``timeout``)
        the socket read times out.  Close the generator to drop the
        connection early.
        """
        query = []
        if task is not None:
            query.append(f"task={task}")
        if not replay:
            query.append("replay=0")
        path = "/v1/stream" + ("?" + "&".join(query) if query else "")
        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            if response.status != 200:
                raise ReproError(
                    f"stream failed with HTTP {response.status}"
                )
            data_lines: list[str] = []
            while True:
                try:
                    raw = response.fp.readline()
                except (TimeoutError, OSError):
                    return
                if not raw:
                    return
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line:
                    if data_lines:
                        yield json.loads("\n".join(data_lines))
                        data_lines = []
                    continue
                if line.startswith(":"):
                    continue  # heartbeat comment
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
        finally:
            connection.close()
