"""``repro-serve``: run the estimation engine as an HTTP/JSON service.

Builds a synthetic dynamic hidden database (the same
:func:`repro.data.synthetic.skewed_source` family the experiments use),
wraps it in an :class:`~repro.api.Engine` + governed
:class:`~repro.service.app.ServiceApp`, and serves the versioned wire API
of :mod:`repro.service.http` until SIGINT/SIGTERM or ``POST
/v1/shutdown``.

Example::

    repro-serve --port 8080 --rows 50000 --backend sharded --shards 4 \\
        --budget-per-round 200 --queries-per-window 2000 --window-rounds 8
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from ..api import Engine, EngineConfig, has_snapshot
from ..data.synthetic import skewed_source
from ..hiddendb.database import HiddenDatabase
from ..obs import OBS
from .app import ServiceApp
from .governor import BudgetGovernor, GovernorConfig
from .http import ServiceServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the aggregate-estimation engine over HTTP/JSON.",
    )
    net = parser.add_argument_group("network")
    net.add_argument("--host", default="127.0.0.1")
    net.add_argument("--port", type=int, default=8080,
                     help="listen port (0 = ephemeral, printed on start)")

    data = parser.add_argument_group("database")
    data.add_argument(
        "--domain-sizes", default="8,10,12,6,4",
        help="comma-separated categorical domain sizes (default %(default)s)",
    )
    data.add_argument("--exponent", type=float, default=0.4,
                      help="zipf skew of the synthetic source")
    data.add_argument(
        "--measures", default="price",
        help="comma-separated measure names ('' for none)",
    )
    data.add_argument("--rows", type=int, default=20_000,
                      help="initial tuple count")
    data.add_argument("--seed", type=int, default=0)

    engine = parser.add_argument_group("engine")
    engine.add_argument("--backend", default=None,
                        help="storage backend (blocked/packed/sharded/mapped)")
    engine.add_argument("--shards", type=int, default=None,
                        help="shard count (sharded backend only)")
    engine.add_argument("--parallelism", type=int, default=None,
                        help="round worker threads")
    engine.add_argument(
        "--overlap", action="store_true",
        help="HTAP epoch split: estimators read the published immutable "
             "epoch while round-boundary churn lands concurrently "
             "(bit-identical estimates; mutations become visible at the "
             "next round flip)",
    )
    engine.add_argument(
        "--auto", action="store_true",
        help="cost-based self-tuning (repro.tuning): pick backend/shards/"
             "parallelism from the observed workload and re-shard online "
             "at round flips; explicit --backend/--shards/--parallelism "
             "act as pins the tuner never overrides (see docs/tuning.md)",
    )
    engine.add_argument("--k", type=int, default=100,
                        help="top-k interface page size")
    engine.add_argument("--budget-per-round", type=int, default=300,
                        help="default per-task round budget G")
    engine.add_argument("--report-log-limit", type=int, default=4096,
                        help="retained reports per task / engine log")
    engine.add_argument(
        "--observability", choices=("on", "off"), default="on",
        help="repro.obs metrics/tracing plane (default %(default)s; "
             "estimates are bit-identical either way) — serves "
             "Prometheus text at GET /v1/metrics",
    )

    durability = parser.add_argument_group("durability")
    durability.add_argument(
        "--store-dir", default=None,
        help="durable store directory: restore the committed snapshot on "
             "start when one exists, write snapshots there (and home the "
             "mapped backend's run files under it)",
    )
    durability.add_argument(
        "--snapshot-every", type=int, default=None,
        help="auto-snapshot after every N completed rounds "
             "(requires --store-dir; default: manual snapshots only)",
    )

    governor = parser.add_argument_group("governor")
    governor.add_argument(
        "--queries-per-window", type=int, default=None,
        help="per-tenant query ceiling per window (default unlimited)",
    )
    governor.add_argument(
        "--total-queries-per-window", type=int, default=None,
        help="service-wide query ceiling per window (default unlimited)",
    )
    governor.add_argument("--window-rounds", type=int, default=16,
                          help="governor window length in rounds")
    governor.add_argument(
        "--shrink-steps", default="0.85,0.7,0.55,0.4",
        help="comma-separated shrink_k fractions tried largest-first",
    )
    governor.add_argument("--max-deferrals", type=int, default=2,
                          help="consecutive widen_rounds deferrals allowed")
    governor.add_argument("--max-tenants", type=int, default=None,
                          help="concurrent tenant cap at submit time")
    return parser


def _csv_ints(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _csv_floats(text: str) -> tuple[float, ...]:
    return tuple(float(part) for part in text.split(",") if part.strip())


def _csv_names(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def build_app(args: argparse.Namespace) -> ServiceApp:
    """The governed service app ``repro-serve`` exposes (test seam).

    With ``--store-dir`` pointing at a committed snapshot, the service
    *restores* instead of rebuilding: the synthetic-source flags are
    ignored in favor of the saved database, tasks, and RNG streams, so a
    killed ``repro-serve`` restarts bit-identical to its last snapshot
    (governor policy flags still apply — only usage counters restore).
    """
    governor = BudgetGovernor(GovernorConfig(
        queries_per_window=args.queries_per_window,
        window_rounds=args.window_rounds,
        shrink_steps=_csv_floats(args.shrink_steps),
        max_deferrals=args.max_deferrals,
        total_queries_per_window=args.total_queries_per_window,
        max_tenants=args.max_tenants,
    ))
    observability = args.observability == "on"
    if args.store_dir is not None and has_snapshot(args.store_dir):
        if observability:
            # The restored engine's saved config decides nothing here:
            # the flag is this process's explicit choice.
            OBS.enable()
        return ServiceApp.restore(
            args.store_dir,
            governor=governor,
            snapshot_every=args.snapshot_every,
        )
    measures = _csv_names(args.measures)
    source = skewed_source(
        _csv_ints(args.domain_sizes),
        exponent=args.exponent,
        measures=measures,
        measure_sampler=(
            (lambda rng: tuple(
                rng.uniform(1.0, 100.0) for _ in measures
            )) if measures else None
        ),
        seed=args.seed,
    )
    config = EngineConfig(
        backend=args.backend,
        k=args.k,
        budget_per_round=args.budget_per_round,
        seed=args.seed,
        shards=args.shards,
        parallelism=args.parallelism,
        overlap=args.overlap,
        report_log_limit=args.report_log_limit,
        store_dir=args.store_dir,
        observability=observability,
        auto=args.auto,
    )
    if config.auto:
        # Let the engine build its own database so the tuner's initial
        # (priors-only) decision picks the construction-time backend.
        engine = Engine(config, schema=source.schema)
        engine.load(source.batch_columns(args.rows))
    else:
        db = HiddenDatabase(
            source.schema,
            backend=config.backend,
            block_size=config.block_size,
            backend_options=config.backend_factory_options(),
        )
        db.insert_many(source.batch_columns(args.rows))
        engine = Engine(config, db=db)
    return ServiceApp(engine, governor, snapshot_every=args.snapshot_every)


async def _serve(app: ServiceApp, host: str, port: int) -> None:
    server = ServiceServer(app, host=host, port=port)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, server.request_shutdown)
    print(
        f"repro-serve: listening on http://{server.host}:{server.port} "
        f"(backend={app.engine.backend}, n={len(app.engine.db)}, "
        f"k={app.engine.config.k}, G={app.engine.config.budget_per_round})",
        flush=True,
    )
    await server.serve_forever()
    print("repro-serve: shut down cleanly", flush=True)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.rows < 0:
        parser.error("--rows must be non-negative")
    try:
        app = build_app(args)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        parser.error(str(exc))
    try:
        asyncio.run(_serve(app, args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
